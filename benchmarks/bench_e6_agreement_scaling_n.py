"""Theorem 5.1 — agreement messages vs n.

Regenerates the measured table for experiment E6 (see DESIGN.md §4 and
EXPERIMENTS.md) and asserts its shape checks.
"""

import pytest

pytestmark = pytest.mark.slow


def test_e6_agreement_scaling_n(run_experiment):
    run_experiment("E6")
