"""Table I — agreement protocol comparison.

Regenerates the measured table for experiment E9 (see DESIGN.md §4 and
EXPERIMENTS.md) and asserts its shape checks.
"""

import pytest

pytestmark = pytest.mark.slow


def test_e9_table1(run_experiment):
    run_experiment("E9")
