"""Byzantine stress — the paper's open problem 3, measured.

Regenerates the measured table for experiment E15 (see DESIGN.md §4 and
EXPERIMENTS.md) and asserts its shape checks.
"""

import pytest

pytestmark = pytest.mark.slow


def test_e15_byzantine(run_experiment):
    run_experiment("E15")
