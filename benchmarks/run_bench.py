#!/usr/bin/env python
"""Tracked simulator benchmark: writes ``BENCH_sim.json``.

Standalone (no pytest needed) so CI and developers produce comparable
numbers with one command::

    PYTHONPATH=src python benchmarks/run_bench.py [--quick] [--jobs N] [--out F]

Schema 2 sections (every schema-1 key is still written unchanged, so
older tooling keeps reading the file):

* ``engine`` — the raw round-loop: a 1024-node flood pushing ~12k
  messages through the per-edge FIFO/wake-heap machinery with tracing
  off (the no-trace fast path), reported as wall-clock and messages/sec.
* ``single_trial`` — one full leader-election run (protocol + schedule +
  adversary on top of the engine).
* ``engine_ref`` / ``engine_vec`` — the same full election (n=1024,
  paper constants, fault-free so the engine hot path dominates) on the
  reference and the vectorized backend, plus the headline ``speedup``
  ratio (vec msgs/s over ref msgs/s).  ``engine_vec_faulty`` records
  the random-crash variant, whose crash bookkeeping deliberately
  replays the reference adversary in Python and therefore speeds up
  less.  ``--check-vec-speedup`` turns the ratio into a CI gate.
* ``large_n`` — one vectorized election at n=100,000 (the scale the
  object engine cannot reach in reasonable time); skipped in
  ``--quick`` mode.
* ``sweep`` — the same Monte-Carlo campaign at ``jobs=1`` and
  ``jobs=N``, with the observed speedup.  The speedup is
  hardware-honest: the file records the machine's core count, and on a
  single-core box the parallel run is expected to be ~1x (or slightly
  below, from pool overhead).
* ``obs_overhead`` — the ``engine`` workload re-timed with (a) the
  disabled no-op :class:`repro.obs.PhaseTimers` threaded through (the
  default every un-profiled run takes) and (b) profiling enabled.
  ``--check-obs-overhead`` turns the no-op ratio into a CI gate: the
  disabled observability path must stay within 5% of the
  uninstrumented engine.

Timings are best-of-``repeats`` (minimum wall-clock), the standard way
to suppress scheduler noise without a benchmark framework.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from typing import Any, Callable, Dict

if __package__ in (None, ""):
    # Allow running from a checkout without PYTHONPATH.
    _src = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
    if _src not in sys.path:
        sys.path.insert(0, _src)

from repro.analysis.sweeps import sweep  # noqa: E402
from repro.core import elect_leader  # noqa: E402
from repro.obs import PhaseTimers  # noqa: E402
from repro.parallel import election_trial, resolve_jobs  # noqa: E402
from repro.sim import Message, Network, Protocol  # noqa: E402


class Flood(Protocol):
    """Every node fans out to 4 random peers each of the first 3 rounds.

    Mirrors ``bench_sim_engine.py`` so the two benchmarks track the same
    quantity.
    """

    def __init__(self, node_id: int) -> None:
        self.node_id = node_id

    def on_round(self, ctx, inbox) -> None:
        if ctx.round <= 3:
            for dst in ctx.sample_nodes(4):
                ctx.send(dst, Message("X", (ctx.round,)))
        else:
            ctx.idle()


def best_of(fn: Callable[[], Any], repeats: int) -> float:
    """Minimum wall-clock over ``repeats`` calls of ``fn``."""
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def bench_engine(quick: bool) -> Dict[str, Any]:
    n, horizon = (256, 8) if quick else (1024, 10)
    repeats = 3 if quick else 5

    def run() -> int:
        return Network(n, Flood, seed=1).run(horizon).metrics.messages_sent

    messages = run()  # warm-up + message count
    seconds = best_of(run, repeats)
    return {
        "n": n,
        "horizon": horizon,
        "messages": messages,
        "seconds": round(seconds, 6),
        "messages_per_second": round(messages / seconds, 1),
        "repeats": repeats,
    }


def bench_obs_overhead(quick: bool) -> Dict[str, Any]:
    """The engine workload against the three observability modes.

    ``seconds_base`` runs the uninstrumented default (shared NULL_TIMERS),
    ``seconds_noop`` threads an explicitly disabled PhaseTimers through the
    same run, and ``seconds_profiled`` enables profiling.  The headline
    number is ``noop_ratio = seconds_noop / seconds_base`` — the cost every
    *un-profiled* run pays for the instrumentation hooks.
    """
    n, horizon = (256, 8) if quick else (1024, 10)
    repeats = 3 if quick else 5

    def run(timers) -> int:
        return (
            Network(n, Flood, seed=1, timers=timers)
            .run(horizon)
            .metrics.messages_sent
        )

    run(None)  # warm-up
    seconds_base = best_of(lambda: run(None), repeats)
    seconds_noop = best_of(lambda: run(PhaseTimers(enabled=False)), repeats)
    seconds_profiled = best_of(lambda: run(PhaseTimers()), repeats)
    return {
        "n": n,
        "horizon": horizon,
        "repeats": repeats,
        "seconds_base": round(seconds_base, 6),
        "seconds_noop": round(seconds_noop, 6),
        "seconds_profiled": round(seconds_profiled, 6),
        "noop_ratio": round(seconds_noop / seconds_base, 4),
        "profiled_ratio": round(seconds_profiled / seconds_base, 4),
    }


def check_obs_overhead(row: Dict[str, Any], max_ratio: float = 1.05) -> bool:
    """True when the no-op observability path is within the budget.

    A small absolute slack (1 ms) keeps the gate meaningful on quick/CI
    sizes where the base time is tiny and timer jitter dominates the
    ratio.
    """
    budget = row["seconds_base"] * max_ratio + 0.001
    return row["seconds_noop"] <= budget


def bench_single_trial(quick: bool) -> Dict[str, Any]:
    n = 128 if quick else 256
    repeats = 2 if quick else 3

    def run():
        return elect_leader(n=n, alpha=0.5, seed=2, adversary="random")

    result = run()
    seconds = best_of(run, repeats)
    return {
        "n": n,
        "alpha": 0.5,
        "adversary": "random",
        "messages": result.messages,
        "seconds": round(seconds, 6),
        "messages_per_second": round(result.messages / seconds, 1),
        "repeats": repeats,
    }


def _timed_election(
    n: int, adversary: str, backend: str, repeats: int, seed: int = 2
) -> Dict[str, Any]:
    """One full election, best-of-``repeats``, on the given backend."""

    def run():
        return elect_leader(n=n, alpha=0.5, seed=seed, adversary=adversary, backend=backend)

    result = run()  # warm-up (vec: first call pays the numpy import)
    seconds = best_of(run, repeats)
    return {
        "n": n,
        "alpha": 0.5,
        "adversary": adversary,
        "backend": backend,
        "messages": result.messages,
        "seconds": round(seconds, 6),
        "messages_per_second": round(result.messages / seconds, 1),
        "repeats": repeats,
    }


def bench_backends(quick: bool) -> Dict[str, Any]:
    """The cross-backend comparison: ``engine_ref``/``engine_vec``/``speedup``.

    Fault-free election so the round-loop dominates; the faulty variant
    is recorded separately because its crash phase replays the reference
    adversary in Python (exact-parity requirement) and gains less.
    Returns an empty-availability stanza when numpy is missing so the
    file stays well-formed on stdlib-only machines.
    """
    from repro.optdeps import have_numpy

    n = 256 if quick else 1024
    repeats = 2 if quick else 3
    ref = _timed_election(n, "none", "ref", repeats)
    if not have_numpy():
        return {
            "engine_ref": ref,
            "engine_vec": {"available": False},
            "engine_vec_faulty": {"available": False},
            "speedup": None,
        }
    vec = _timed_election(n, "none", "vec", repeats)
    assert vec["messages"] == ref["messages"], "cross-backend parity violated"
    vec_faulty = _timed_election(n, "random", "vec", repeats)
    ref_faulty = _timed_election(n, "random", "ref", repeats)
    assert vec_faulty["messages"] == ref_faulty["messages"]
    vec_faulty["speedup_vs_ref"] = round(
        vec_faulty["messages_per_second"] / ref_faulty["messages_per_second"], 3
    )
    return {
        "engine_ref": ref,
        "engine_vec": vec,
        "engine_vec_faulty": vec_faulty,
        "speedup": round(
            vec["messages_per_second"] / ref["messages_per_second"], 3
        ),
    }


def bench_large_n(quick: bool) -> Dict[str, Any]:
    """One vectorized election at n=100,000 (skipped in quick mode)."""
    from repro.optdeps import have_numpy

    if quick or not have_numpy():
        return {"skipped": True, "reason": "quick mode" if quick else "no numpy"}
    row = _timed_election(100_000, "none", "vec", repeats=1)
    row["skipped"] = False
    return row


def bench_sweep(quick: bool, jobs: int) -> Dict[str, Any]:
    grid = {"n": [32, 64], "alpha": [0.75]} if quick else {"n": [64, 128], "alpha": [0.5]}
    trials = 2 if quick else 4

    def run(j: int) -> float:
        started = time.perf_counter()
        sweep(election_trial, grid, trials=trials, master_seed=11, jobs=j)
        return time.perf_counter() - started

    run(1)  # warm-up (also pre-imports everything the workers fork)
    serial = run(1)
    parallel = run(jobs)
    return {
        "grid": {k: list(v) for k, v in grid.items()},
        "trials_per_point": trials,
        "jobs": jobs,
        "seconds_jobs1": round(serial, 6),
        "seconds_jobsN": round(parallel, 6),
        "speedup": round(serial / parallel, 3) if parallel > 0 else None,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="CI smoke sizes")
    parser.add_argument(
        "--jobs", type=int, default=0, help="parallel sweep width (0 = cores)"
    )
    parser.add_argument("--out", default="BENCH_sim.json", help="output path")
    parser.add_argument(
        "--check-obs-overhead",
        action="store_true",
        help="exit 1 when the disabled observability path exceeds 5% "
        "over the uninstrumented engine",
    )
    parser.add_argument(
        "--check-vec-speedup",
        type=float,
        default=None,
        metavar="RATIO",
        help="exit 1 when the vec/ref msgs-per-second ratio falls below "
        "RATIO (skipped when numpy is unavailable or in --quick mode, "
        "where sizes are too small for the ratio to be meaningful)",
    )
    args = parser.parse_args(argv)

    jobs = resolve_jobs(args.jobs)
    payload: Dict[str, Any] = {
        "schema": 2,
        "quick": args.quick,
        "machine": {
            "cpu_count": os.cpu_count(),
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "engine": bench_engine(args.quick),
        "single_trial": bench_single_trial(args.quick),
        "sweep": bench_sweep(args.quick, jobs),
        "obs_overhead": bench_obs_overhead(args.quick),
        "large_n": bench_large_n(args.quick),
    }
    payload.update(bench_backends(args.quick))
    with open(args.out, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")

    engine = payload["engine"]
    sweep_row = payload["sweep"]
    print(
        f"engine: {engine['messages']} msgs in {engine['seconds']:.4f}s"
        f" ({engine['messages_per_second']:,.0f} msg/s)"
    )
    print(
        f"single trial: n={payload['single_trial']['n']}"
        f" {payload['single_trial']['seconds']:.4f}s"
    )
    vec = payload["engine_vec"]
    if vec.get("available") is False:
        print("backends: vec unavailable (numpy not installed)")
    else:
        ref = payload["engine_ref"]
        print(
            f"backends: n={ref['n']} ref {ref['seconds']:.4f}s"
            f" ({ref['messages_per_second']:,.0f} msg/s),"
            f" vec {vec['seconds']:.4f}s"
            f" ({vec['messages_per_second']:,.0f} msg/s)"
            f" — speedup {payload['speedup']}x"
            f" (faulty variant {payload['engine_vec_faulty']['speedup_vs_ref']}x)"
        )
    large = payload["large_n"]
    if large.get("skipped"):
        print(f"large-n: skipped ({large['reason']})")
    else:
        print(
            f"large-n: n={large['n']} vec {large['seconds']:.3f}s"
            f" ({large['messages_per_second']:,.0f} msg/s)"
        )
    print(
        f"sweep: jobs=1 {sweep_row['seconds_jobs1']:.3f}s,"
        f" jobs={jobs} {sweep_row['seconds_jobsN']:.3f}s"
        f" (speedup {sweep_row['speedup']}x on {os.cpu_count()} core(s))"
    )
    obs = payload["obs_overhead"]
    print(
        f"obs overhead: noop {obs['noop_ratio']}x, profiled"
        f" {obs['profiled_ratio']}x of base {obs['seconds_base']:.4f}s"
    )
    print(f"wrote {args.out}")
    if args.check_obs_overhead and not check_obs_overhead(obs):
        print(
            "FAIL: disabled observability path exceeds the 5% overhead "
            f"budget (noop {obs['seconds_noop']:.6f}s vs base "
            f"{obs['seconds_base']:.6f}s)",
            file=sys.stderr,
        )
        return 1
    if (
        args.check_vec_speedup is not None
        and not args.quick
        and payload["speedup"] is not None
        and payload["speedup"] < args.check_vec_speedup
    ):
        print(
            f"FAIL: vec/ref speedup {payload['speedup']}x is below the "
            f"required {args.check_vec_speedup}x",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
