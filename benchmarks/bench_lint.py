#!/usr/bin/env python
"""Tracked lint-engine benchmark: writes ``BENCH_lint.json``.

Standalone (no pytest needed) so CI and developers produce comparable
numbers with one command::

    PYTHONPATH=src python benchmarks/bench_lint.py [--out F] [--check-seconds S]

The interprocedural pass (symbol table -> call graph -> taint
reachability, ``docs/LINT.md``) turned the linter from a per-file scan
into a whole-project analysis, so its wall-clock now scales with the
tree and deserves the same tracking as the simulator.  Sections:

* ``full`` — one complete ``repro lint src`` pipeline (collect + parse +
  file rules + project rules + suppression/baseline filtering), the
  number every CI run and pre-commit hook pays.  Reported as wall-clock,
  files/sec, and lines/sec.
* ``parse`` — ``collect_files`` alone: directory walk, source read,
  ``ast.parse``, pragma tokenization.
* ``interprocedural`` — building the :class:`ProjectContext` (symbol
  table + call graph) over the parsed files, i.e. the marginal cost the
  project-level rules added on top of the old per-file engine.
* ``sarif`` — rendering the report to SARIF 2.1.0.

Timings are best-of-``repeats`` (minimum wall-clock), matching
``run_bench.py``.  ``--check-seconds`` turns the ``full`` time into a CI
gate: the whole-project analysis must stay interactive (default budget
10 s — roughly 6x the current time, so the gate catches accidental
quadratic blowups in graph construction, not machine jitter).
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from typing import Any, Callable, Dict

if __package__ in (None, ""):
    # Allow running from a checkout without PYTHONPATH.
    _src = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
    if _src not in sys.path:
        sys.path.insert(0, _src)

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

from repro.lint import collect_files, lint_paths, load_config, render_sarif  # noqa: E402
from repro.lint.callgraph import ProjectContext  # noqa: E402


def best_of(fn: Callable[[], Any], repeats: int) -> float:
    """Minimum wall-clock over ``repeats`` calls of ``fn``."""
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def bench_lint(repeats: int) -> Dict[str, Any]:
    from pathlib import Path

    config = load_config(Path(REPO_ROOT) / ".reprolint.toml")
    src = Path(REPO_ROOT) / "src"

    # Warm-up doubles as the correctness anchor: the benchmark is only
    # meaningful while the tree it measures is lint-clean.
    report = lint_paths([src], config)
    files = collect_files([src], config)
    lines = sum(f.source.count("\n") + 1 for f in files.values())

    def build_context() -> None:
        context = ProjectContext(files, config)
        context.symbols  # noqa: B018 — force the lazy builds
        context.graph  # noqa: B018

    seconds_full = best_of(lambda: lint_paths([src], config), repeats)
    seconds_parse = best_of(lambda: collect_files([src], config), repeats)
    seconds_graph = best_of(build_context, repeats)
    seconds_sarif = best_of(lambda: render_sarif(report), repeats)

    return {
        "files": len(files),
        "lines": lines,
        "findings": len(report.findings),
        "clean": report.clean,
        "repeats": repeats,
        "full": {
            "seconds": round(seconds_full, 6),
            "files_per_second": round(len(files) / seconds_full, 1),
            "lines_per_second": round(lines / seconds_full, 1),
        },
        "parse": {"seconds": round(seconds_parse, 6)},
        "interprocedural": {"seconds": round(seconds_graph, 6)},
        "sarif": {"seconds": round(seconds_sarif, 6)},
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="BENCH_lint.json", help="output path")
    parser.add_argument(
        "--repeats", type=int, default=3, help="best-of repeats (default 3)"
    )
    parser.add_argument(
        "--check-seconds",
        type=float,
        default=None,
        metavar="S",
        help="exit 1 when the full-project lint exceeds S seconds "
        "wall-clock (the CI gate uses 10)",
    )
    args = parser.parse_args(argv)

    row = bench_lint(max(1, args.repeats))
    payload: Dict[str, Any] = {
        "schema": 1,
        "machine": {
            "cpu_count": os.cpu_count(),
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "lint": row,
    }
    with open(args.out, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")

    full = row["full"]
    print(
        f"lint: {row['files']} files / {row['lines']} lines in"
        f" {full['seconds']:.3f}s ({full['files_per_second']:,.0f} files/s,"
        f" {full['lines_per_second']:,.0f} lines/s)"
    )
    print(
        f"  parse {row['parse']['seconds']:.3f}s,"
        f" interprocedural {row['interprocedural']['seconds']:.3f}s,"
        f" sarif {row['sarif']['seconds']:.4f}s"
    )
    print(f"wrote {args.out}")
    if not row["clean"]:
        print(
            f"FAIL: the measured tree has {row['findings']} lint finding(s);"
            " the benchmark only tracks clean runs",
            file=sys.stderr,
        )
        return 1
    if args.check_seconds is not None and full["seconds"] > args.check_seconds:
        print(
            f"FAIL: full-project lint took {full['seconds']:.3f}s, over the"
            f" {args.check_seconds:.1f}s budget",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
