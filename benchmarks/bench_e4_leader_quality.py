"""Theorem 4.1 — elected leader non-faulty w.p. >= alpha.

Regenerates the measured table for experiment E4 (see DESIGN.md §4 and
EXPERIMENTS.md) and asserts its shape checks.
"""

import pytest

pytestmark = pytest.mark.slow


def test_e4_leader_quality(run_experiment):
    run_experiment("E4")
