"""Theorem 4.1 — leader-election round complexity.

Regenerates the measured table for experiment E3 (see DESIGN.md §4 and
EXPERIMENTS.md) and asserts its shape checks.
"""

import pytest

pytestmark = pytest.mark.slow


def test_e3_le_rounds(run_experiment):
    run_experiment("E3")
