"""Section I-A — sublinearity thresholds.

Regenerates the measured table for experiment E11 (see DESIGN.md §4 and
EXPERIMENTS.md) and asserts its shape checks.
"""

import pytest

pytestmark = pytest.mark.slow


def test_e11_sublinear_threshold(run_experiment):
    run_experiment("E11")
