"""Theorems 4.2/5.2 — message lower bounds.

Regenerates the measured table for experiment E10 (see DESIGN.md §4 and
EXPERIMENTS.md) and asserts its shape checks.
"""

import pytest

pytestmark = pytest.mark.slow


def test_e10_lower_bounds(run_experiment):
    run_experiment("E10")
