"""Theorem 5.1 — agreement messages vs alpha.

Regenerates the measured table for experiment E7 (see DESIGN.md §4 and
EXPERIMENTS.md) and asserts its shape checks.
"""

import pytest

pytestmark = pytest.mark.slow


def test_e7_agreement_scaling_alpha(run_experiment):
    run_experiment("E7")
