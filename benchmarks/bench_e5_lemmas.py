"""Lemmas 1-3 — committee and referee sampling guarantees.

Regenerates the measured table for experiment E5 (see DESIGN.md §4 and
EXPERIMENTS.md) and asserts its shape checks.
"""

import pytest

pytestmark = pytest.mark.slow


def test_e5_lemmas(run_experiment):
    run_experiment("E5")
