"""Simulator micro-benchmarks (engine throughput, not paper artifacts).

These are conventional pytest-benchmark timings: they quantify how much a
single protocol run costs, so regressions in the engine's hot paths
(per-edge FIFOs, wake heap, bit accounting) show up as timing changes.
"""

import pytest

from repro.core import agree, elect_leader
from repro.optdeps import have_numpy
from repro.params import Params
from repro.sim import Message, Network, Protocol

needs_numpy = pytest.mark.skipif(not have_numpy(), reason="numpy not installed")


class Flood(Protocol):
    """Every node fans out to k random peers each of the first 3 rounds."""

    def __init__(self, node_id, fanout=4):
        self.node_id = node_id
        self.fanout = fanout

    def on_round(self, ctx, inbox):
        if ctx.round <= 3:
            for dst in ctx.sample_nodes(self.fanout):
                ctx.send(dst, Message("X", (ctx.round,)))
        else:
            ctx.idle()


def test_engine_round_loop(benchmark):
    """Raw engine throughput: ~12k messages through the round machinery."""

    def run():
        network = Network(1024, Flood, seed=1)
        return network.run(10).metrics.messages_sent

    sent = benchmark(run)
    assert sent == 1024 * 4 * 3


def test_leader_election_run(benchmark):
    """One full Section IV-A election at n=512, paper constants."""
    result = benchmark.pedantic(
        lambda: elect_leader(n=512, alpha=0.5, seed=2, adversary="random"),
        rounds=1,
        iterations=1,
    )
    assert result.success


@needs_numpy
def test_leader_election_run_vec(benchmark):
    """The n=512 election on the vectorized backend (same seed, same totals)."""
    result = benchmark.pedantic(
        lambda: elect_leader(n=512, alpha=0.5, seed=2, adversary="random", backend="vec"),
        rounds=1,
        iterations=1,
    )
    assert result.success
    assert result.messages == 411687  # cross-backend canary (matches ref)


@needs_numpy
def test_leader_election_large_n_vec(benchmark):
    """An n=4096 election — out of comfortable reach for the object engine."""
    result = benchmark.pedantic(
        lambda: elect_leader(n=4096, alpha=0.5, seed=2, adversary="none", backend="vec"),
        rounds=1,
        iterations=1,
    )
    assert result.success


def test_agreement_run(benchmark):
    """One full Section V-A agreement at n=2048, paper constants."""
    result = benchmark.pedantic(
        lambda: agree(n=2048, alpha=0.5, inputs="mixed", seed=3, adversary="random"),
        rounds=1,
        iterations=1,
    )
    assert result.success


@needs_numpy
def test_agreement_run_vec(benchmark):
    """The n=2048 agreement on the vectorized backend."""
    result = benchmark.pedantic(
        lambda: agree(
            n=2048, alpha=0.5, inputs="mixed", seed=3, adversary="random", backend="vec"
        ),
        rounds=1,
        iterations=1,
    )
    assert result.success


def test_message_bit_accounting(benchmark):
    """Message construction + bit sizing (the hot allocation path)."""

    def build():
        total = 0
        for i in range(5000):
            total += Message("LE_PROP", (i, i * 17 + 1)).bits
        return total

    assert benchmark(build) > 0
