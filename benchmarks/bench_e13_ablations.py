"""Design-choice ablations.

Regenerates the measured table for experiment E13 (see DESIGN.md §4 and
EXPERIMENTS.md) and asserts its shape checks.
"""

import pytest

pytestmark = pytest.mark.slow


def test_e13_ablations(run_experiment):
    run_experiment("E13")
