"""Theorem 4.1 — leader-election messages vs alpha.

Regenerates the measured table for experiment E2 (see DESIGN.md §4 and
EXPERIMENTS.md) and asserts its shape checks.
"""

import pytest

pytestmark = pytest.mark.slow


def test_e2_le_scaling_alpha(run_experiment):
    run_experiment("E2")
