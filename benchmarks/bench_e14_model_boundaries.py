"""Model boundaries — adaptive fault selection & the LE-based reduction.

Regenerates the measured table for experiment E14 (see DESIGN.md §4 and
EXPERIMENTS.md) and asserts its shape checks.
"""

import pytest

pytestmark = pytest.mark.slow


def test_e14_model_boundaries(run_experiment):
    run_experiment("E14")
