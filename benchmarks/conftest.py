"""Benchmark harness glue.

Each benchmark runs one experiment from the registry exactly once (the
experiments are Monte-Carlo sweeps — repetition happens *inside* them),
prints the measured table the paper artifact corresponds to, and asserts
the shape checks.

Run with::

    pytest benchmarks/ --benchmark-only

Set ``REPRO_BENCH_QUICK=1`` to shrink sizes/trials (CI smoke mode).
"""

from __future__ import annotations

import os

import pytest

from repro.experiments import ExperimentReport, get_experiment

QUICK = bool(int(os.environ.get("REPRO_BENCH_QUICK", "0")))


def run_experiment_benchmark(benchmark, experiment_id: str) -> ExperimentReport:
    """Run one registered experiment under pytest-benchmark and report."""
    experiment = get_experiment(experiment_id)
    report = benchmark.pedantic(
        lambda: experiment.run(quick=QUICK), rounds=1, iterations=1
    )
    print()
    print(report.render())
    assert report.passed, f"{experiment_id} shape checks failed:\n{report.render()}"
    return report


@pytest.fixture
def run_experiment(benchmark):
    """Fixture wrapping :func:`run_experiment_benchmark`."""

    def runner(experiment_id: str) -> ExperimentReport:
        return run_experiment_benchmark(benchmark, experiment_id)

    return runner
