"""Corollaries 1/3 — fault-free parity.

Regenerates the measured table for experiment E12 (see DESIGN.md §4 and
EXPERIMENTS.md) and asserts its shape checks.
"""

import pytest

pytestmark = pytest.mark.slow


def test_e12_faultfree_parity(run_experiment):
    run_experiment("E12")
