"""General graphs — the paper's open problem 2, measured.

Regenerates the measured table for experiment E16 (see DESIGN.md §4 and
EXPERIMENTS.md) and asserts its shape checks.
"""

import pytest

pytestmark = pytest.mark.slow


def test_e16_general_graphs(run_experiment):
    run_experiment("E16")
