"""Sections IV-A/V-A — explicit extensions.

Regenerates the measured table for experiment E8 (see DESIGN.md §4 and
EXPERIMENTS.md) and asserts its shape checks.
"""

import pytest

pytestmark = pytest.mark.slow


def test_e8_explicit(run_experiment):
    run_experiment("E8")
