"""Theorem 4.1 — leader-election messages vs n.

Regenerates the measured table for experiment E1 (see DESIGN.md §4 and
EXPERIMENTS.md) and asserts its shape checks.
"""

import pytest

pytestmark = pytest.mark.slow


def test_e1_le_scaling_n(run_experiment):
    run_experiment("E1")
