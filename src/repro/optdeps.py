"""Optional heavy dependencies, gated behind lazy imports.

The core package is dependency-free by design (ROADMAP: "stdlib-only
core").  Performance features — the vectorized engine backend and the
general-graph extensions — use numpy when it is present.  Everything
routes through :func:`require_numpy` so the failure mode is a single,
actionable :class:`~repro.errors.BackendUnavailable` instead of a bare
``ImportError`` deep inside a hot loop.

Install the extra with ``pip install repro[perf]``.
"""

from __future__ import annotations

from typing import Any, Optional

from .errors import BackendUnavailable

_NUMPY: Optional[Any] = None
_NUMPY_ERROR: Optional[str] = None


def have_numpy() -> bool:
    """Return True iff numpy can be imported (cached)."""
    try:
        return require_numpy() is not None
    except BackendUnavailable:
        return False


def require_numpy(feature: str = "the vectorized backend") -> Any:
    """Import and return numpy, or raise :class:`BackendUnavailable`.

    The import is attempted once per process; subsequent calls return the
    cached module (or re-raise the cached failure) without touching the
    import machinery again.
    """
    global _NUMPY, _NUMPY_ERROR
    if _NUMPY is not None:
        return _NUMPY
    if _NUMPY_ERROR is None:
        try:
            import numpy  # noqa: PLC0415 - deliberate lazy optional import

            _NUMPY = numpy
            return _NUMPY
        except ImportError as exc:
            _NUMPY_ERROR = str(exc)
    raise BackendUnavailable(
        f"numpy is required for {feature} but is not installed; "
        f'install the perf extra ("pip install repro[perf]") '
        f"[import error: {_NUMPY_ERROR}]"
    )
