"""High-level entry points: build a network, run a protocol, evaluate.

These are the functions most users call:

>>> from repro.core import elect_leader, agree
>>> elect_leader(n=512, alpha=0.5, seed=1, adversary="staggered").success
True
>>> agree(n=512, alpha=0.5, inputs="single0", seed=1).decision
0
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, List, Optional, Sequence, Union

from ..errors import ConfigurationError, VecUnsupported
from ..faults.adversary import Adversary
from ..faults.strategies import named_adversary
from ..obs.timing import PhaseTimers
from ..params import CongestBudget, Params
from ..rng import derive_seed
from ..sim.delivery import DeliverySchedule
from ..sim.network import Network, RunResult

if TYPE_CHECKING:  # pragma: no cover - lazy import (faults.byzantine
    # depends on this package; see repro.faults.__init__)
    from ..faults.byzantine import ByzantinePlan
from ..types import NodeState
from .agreement import AgreementProtocol
from .explicit import ExplicitAgreementProtocol, ExplicitLeaderElectionProtocol
from .leader_election import LeaderElectionProtocol
from .results import (
    AgreementResult,
    ExplicitAgreementResult,
    ExplicitLeaderElectionResult,
    LeaderElectionResult,
)
from .schedule import AgreementSchedule, LeaderElectionSchedule

#: Rounds appended after the nominal schedule to fit the explicit
#: broadcast wave (broadcast + delivery).
EXPLICIT_TAIL_ROUNDS = 3

AdversarySpec = Union[str, Adversary]

#: Named input patterns for the agreement problem.
INPUT_PATTERNS = ("all0", "all1", "mixed", "single0", "single1")

#: Engine backends: the reference per-node engine, and the numpy
#: struct-of-arrays engine (exact same results, see ``docs/VEC.md``).
BACKENDS = ("ref", "vec")


def _check_backend(backend: str) -> None:
    if backend not in BACKENDS:
        raise ConfigurationError(
            f"unknown backend {backend!r}; choose from {BACKENDS}"
        )


def _resolve_adversary(spec: AdversarySpec, horizon: int) -> Adversary:
    if isinstance(spec, Adversary):
        return spec
    return named_adversary(spec, horizon)


def make_inputs(
    n: int, pattern: Union[str, Sequence[int]], seed: int = 0
) -> List[int]:
    """Materialise an input-bit vector for the agreement problem.

    ``pattern`` is either an explicit bit sequence or one of
    :data:`INPUT_PATTERNS`:

    * ``all0`` / ``all1`` — unanimous inputs;
    * ``mixed`` — independent fair coin per node;
    * ``single0`` / ``single1`` — one random node holds the minority bit
      (the hardest validity cases: the lone value must either spread or
      die with its holder).
    """
    if not isinstance(pattern, str):
        inputs = [int(b) for b in pattern]
        if len(inputs) != n:
            raise ConfigurationError(
                f"got {len(inputs)} input bits for n={n} nodes"
            )
        if any(b not in (0, 1) for b in inputs):
            raise ConfigurationError("inputs must be bits")
        return inputs
    rng = random.Random(derive_seed(seed, "inputs", pattern))
    if pattern == "all0":
        return [0] * n
    if pattern == "all1":
        return [1] * n
    if pattern == "mixed":
        return [rng.randint(0, 1) for _ in range(n)]
    if pattern == "single0":
        inputs = [1] * n
        inputs[rng.randrange(n)] = 0
        return inputs
    if pattern == "single1":
        inputs = [0] * n
        inputs[rng.randrange(n)] = 1
        return inputs
    raise ConfigurationError(
        f"unknown input pattern {pattern!r}; choose from {INPUT_PATTERNS}"
    )


# ----------------------------------------------------------------------
# Leader election
# ----------------------------------------------------------------------


def elect_leader(
    n: int,
    alpha: float,
    seed: int = 0,
    adversary: AdversarySpec = "random",
    faulty_count: Optional[int] = None,
    params: Optional[Params] = None,
    collect_trace: bool = False,
    message_budget: Optional[int] = None,
    extra_rounds: int = 0,
    timers: Optional[PhaseTimers] = None,
    delivery: Optional[DeliverySchedule] = None,
    byzantine: Optional["ByzantinePlan"] = None,
    backend: str = "ref",
) -> LeaderElectionResult:
    """Run the Section IV-A fault-tolerant implicit leader election.

    Parameters
    ----------
    n, alpha:
        Network size and non-faulty fraction (``alpha in [log^2 n/n, 1]``).
    seed:
        Master seed; runs are exactly reproducible from ``(args, seed)``.
    adversary:
        An :class:`~repro.faults.Adversary` or a short name
        (``none/eager/lazy/random/staggered/split/adaptive``).
    faulty_count:
        Size of the static faulty set; defaults to the maximum the
        parameters tolerate.
    message_budget:
        Optional global cap on sent messages (lower-bound experiments).
    extra_rounds:
        Extra rounds appended after the nominal schedule (robustness
        experiments).
    timers:
        Optional :class:`~repro.obs.PhaseTimers` profiling the engine's
        round phases; totals surface as ``result.metrics.phase_seconds``.
    delivery:
        Optional :class:`~repro.sim.DeliverySchedule` (bounded-delay
        partial synchrony); default is the synchronous model.
    byzantine:
        Optional :class:`~repro.faults.byzantine.ByzantinePlan` turning
        designated nodes into attackers/omitters; the plan's nodes join
        the faulty set and charge ``faulty_count``.
    backend:
        ``"ref"`` (default) runs the per-node reference engine; ``"vec"``
        runs the numpy struct-of-arrays engine, which produces identical
        results and falls back to ``"ref"`` for configurations it cannot
        mirror exactly (see ``docs/VEC.md``).
    """
    _check_backend(backend)
    params = params or Params(n=n, alpha=alpha)
    schedule = LeaderElectionSchedule.from_params(params)
    total_rounds = schedule.last_round + extra_rounds
    adversary = _resolve_adversary(adversary, total_rounds)
    if faulty_count is None:
        faulty_count = params.max_faulty
    if backend == "vec":
        from ..sim.vec import ensure_vec_supported, run_election_vec

        try:
            ensure_vec_supported(
                adversary,
                collect_trace=collect_trace,
                message_budget=message_budget,
                timers=timers,
                delivery=delivery,
                byzantine=byzantine,
            )
            run = run_election_vec(
                params, schedule, seed, adversary, faulty_count, total_rounds
            )
            return _evaluate_leader_election(run, params, seed, adversary)
        except VecUnsupported:
            # Unsupported configs replay on the reference engine; the
            # adversary's selection state is rebuilt from the same seed,
            # so the fallback run is byte-identical to a ref-only run.
            pass
    factory = lambda u: LeaderElectionProtocol(u, params, schedule)  # noqa: E731
    if byzantine is not None and byzantine.modes:
        from ..faults.byzantine import (
            ByzantineAdversary,
            election_attackers,
            plan_factory,
        )

        adversary = ByzantineAdversary(byzantine, adversary)
        factory = plan_factory(
            byzantine, factory, election_attackers(params, schedule)
        )

    network = Network(
        n,
        factory,
        seed=seed,
        adversary=adversary,
        max_faulty=faulty_count,
        congest=CongestBudget(n),
        collect_trace=collect_trace,
        message_budget=message_budget,
        timers=timers,
        delivery=delivery,
    )
    run = network.run(total_rounds)
    return _evaluate_leader_election(run, params, seed, adversary)


def _evaluate_leader_election(
    run: RunResult, params: Params, seed: int, adversary: Adversary
) -> LeaderElectionResult:
    result = LeaderElectionResult(
        n=run.n,
        alpha=params.alpha,
        seed=seed,
        adversary=adversary.name(),
        faulty=run.faulty,
        crashed=run.crashed,
        metrics=run.metrics,
        trace=run.trace,
        max_delay=run.max_delay,
    )
    for u in range(run.n):
        protocol: LeaderElectionProtocol = run.protocol(u)  # type: ignore[assignment]
        if protocol.rank is not None:
            result.ranks[u] = protocol.rank
        if not protocol.is_candidate:
            continue
        result.candidates_all.append(u)
        if u in run.crashed:
            if protocol.state is NodeState.ELECTED:
                result.elected_crashed.append(u)
            continue
        result.candidates_alive.append(u)
        result.beliefs[u] = protocol.leader_rank
        if protocol.state is NodeState.ELECTED:
            result.elected_alive.append(u)
    return result


def elect_leader_explicit(
    n: int,
    alpha: float,
    seed: int = 0,
    adversary: AdversarySpec = "random",
    faulty_count: Optional[int] = None,
    params: Optional[Params] = None,
) -> ExplicitLeaderElectionResult:
    """Run explicit leader election (implicit + one broadcast round).

    On top of the implicit outcome, the result records which nodes learnt
    the winner's rank (``explicit_ranks`` / ``explicit_success``).
    """
    params = params or Params(n=n, alpha=alpha)
    schedule = LeaderElectionSchedule.from_params(params)
    total_rounds = schedule.last_round + EXPLICIT_TAIL_ROUNDS
    adversary = _resolve_adversary(adversary, total_rounds)
    if faulty_count is None:
        faulty_count = params.max_faulty

    network = Network(
        n,
        lambda u: ExplicitLeaderElectionProtocol(u, params, schedule),
        seed=seed,
        adversary=adversary,
        max_faulty=faulty_count,
        congest=CongestBudget(n),
    )
    run = network.run(total_rounds)
    base = _evaluate_leader_election(run, params, seed, adversary)
    result = ExplicitLeaderElectionResult(**vars(base))
    for u in range(run.n):
        if u in run.crashed:
            continue
        protocol: ExplicitLeaderElectionProtocol = run.protocol(u)  # type: ignore[assignment]
        result.explicit_ranks[u] = protocol.explicit_leader_rank
    return result


# ----------------------------------------------------------------------
# Agreement
# ----------------------------------------------------------------------


def agree(
    n: int,
    alpha: float,
    inputs: Union[str, Sequence[int]] = "mixed",
    seed: int = 0,
    adversary: AdversarySpec = "random",
    faulty_count: Optional[int] = None,
    params: Optional[Params] = None,
    collect_trace: bool = False,
    message_budget: Optional[int] = None,
    extra_rounds: int = 0,
    timers: Optional[PhaseTimers] = None,
    delivery: Optional[DeliverySchedule] = None,
    byzantine: Optional["ByzantinePlan"] = None,
    backend: str = "ref",
) -> AgreementResult:
    """Run the Section V-A fault-tolerant implicit agreement.

    ``inputs`` is an explicit bit vector or a named pattern
    (see :func:`make_inputs`).  Other parameters as in
    :func:`elect_leader`.
    """
    _check_backend(backend)
    params = params or Params(n=n, alpha=alpha)
    schedule = AgreementSchedule.from_params(params)
    total_rounds = schedule.last_round + extra_rounds
    adversary = _resolve_adversary(adversary, total_rounds)
    if faulty_count is None:
        faulty_count = params.max_faulty
    input_bits = make_inputs(n, inputs, seed)
    if backend == "vec":
        from ..sim.vec import ensure_vec_supported, run_agreement_vec

        try:
            ensure_vec_supported(
                adversary,
                collect_trace=collect_trace,
                message_budget=message_budget,
                timers=timers,
                delivery=delivery,
                byzantine=byzantine,
            )
            run = run_agreement_vec(
                params,
                schedule,
                seed,
                adversary,
                faulty_count,
                input_bits,
                total_rounds,
            )
            return _evaluate_agreement(run, params, seed, adversary, input_bits)
        except VecUnsupported:
            pass  # fall back to the reference engine (same results)
    factory = lambda u: AgreementProtocol(  # noqa: E731
        u, params, schedule, input_bits[u]
    )
    if byzantine is not None and byzantine.modes:
        from ..faults.byzantine import (
            ByzantineAdversary,
            agreement_attackers,
            plan_factory,
        )

        adversary = ByzantineAdversary(byzantine, adversary)
        factory = plan_factory(
            byzantine, factory, agreement_attackers(params, schedule, input_bits)
        )

    network = Network(
        n,
        factory,
        seed=seed,
        adversary=adversary,
        max_faulty=faulty_count,
        inputs=input_bits,
        congest=CongestBudget(n),
        collect_trace=collect_trace,
        message_budget=message_budget,
        timers=timers,
        delivery=delivery,
    )
    run = network.run(total_rounds)
    return _evaluate_agreement(run, params, seed, adversary, input_bits)


def agree_explicit(
    n: int,
    alpha: float,
    inputs: Union[str, Sequence[int]] = "mixed",
    seed: int = 0,
    adversary: AdversarySpec = "random",
    faulty_count: Optional[int] = None,
    params: Optional[Params] = None,
) -> ExplicitAgreementResult:
    """Run explicit agreement (implicit + one broadcast round).

    On top of the implicit outcome, the result records which nodes learnt
    the agreed bit (``explicit_bits`` / ``explicit_success``).
    """
    params = params or Params(n=n, alpha=alpha)
    schedule = AgreementSchedule.from_params(params)
    total_rounds = schedule.last_round + EXPLICIT_TAIL_ROUNDS
    adversary = _resolve_adversary(adversary, total_rounds)
    if faulty_count is None:
        faulty_count = params.max_faulty
    input_bits = make_inputs(n, inputs, seed)

    network = Network(
        n,
        lambda u: ExplicitAgreementProtocol(u, params, schedule, input_bits[u]),
        seed=seed,
        adversary=adversary,
        max_faulty=faulty_count,
        inputs=input_bits,
        congest=CongestBudget(n),
    )
    run = network.run(total_rounds)
    base = _evaluate_agreement(run, params, seed, adversary, input_bits)
    result = ExplicitAgreementResult(**vars(base))
    for u in range(run.n):
        if u in run.crashed:
            continue
        protocol: ExplicitAgreementProtocol = run.protocol(u)  # type: ignore[assignment]
        result.explicit_bits[u] = protocol.explicit_decision
    return result


def agree_via_election(
    n: int,
    alpha: float,
    inputs: Union[str, Sequence[int]] = "mixed",
    seed: int = 0,
    adversary: AdversarySpec = "random",
    faulty_count: Optional[int] = None,
    params: Optional[Params] = None,
) -> AgreementResult:
    """Solve implicit agreement by the Section V reduction through leader
    election (agree on the elected leader's input bit).

    Costs the election's ``O(n^1/2 log^{5/2} n/alpha^{5/2})`` messages —
    a ``log n/alpha`` factor more than :func:`agree`; exists to measure
    that remark (experiment E13's table).
    """
    from .leader_based_agreement import LeaderBasedAgreementProtocol

    params = params or Params(n=n, alpha=alpha)
    schedule = LeaderElectionSchedule.from_params(params)
    total_rounds = schedule.last_round
    adversary = _resolve_adversary(adversary, total_rounds)
    if faulty_count is None:
        faulty_count = params.max_faulty
    input_bits = make_inputs(n, inputs, seed)

    network = Network(
        n,
        lambda u: LeaderBasedAgreementProtocol(u, params, schedule, input_bits[u]),
        seed=seed,
        adversary=adversary,
        max_faulty=faulty_count,
        inputs=input_bits,
        congest=CongestBudget(n),
    )
    run = network.run(total_rounds)
    return _evaluate_agreement(run, params, seed, adversary, input_bits)


def _evaluate_agreement(
    run: RunResult,
    params: Params,
    seed: int,
    adversary: Adversary,
    inputs: Sequence[int],
) -> AgreementResult:
    result = AgreementResult(
        n=run.n,
        alpha=params.alpha,
        seed=seed,
        adversary=adversary.name(),
        inputs=list(inputs),
        faulty=run.faulty,
        crashed=run.crashed,
        metrics=run.metrics,
        trace=run.trace,
        max_delay=run.max_delay,
    )
    for u in range(run.n):
        protocol: AgreementProtocol = run.protocol(u)  # type: ignore[assignment]
        if protocol.is_candidate:
            result.candidates_all.append(u)
        if u in run.crashed:
            continue
        if protocol.is_candidate:
            result.candidates_alive.append(u)
        result.decisions[u] = protocol.decision
    return result
