"""Random ranks (Section IV-A).

Each node draws an integer rank uniformly from ``[1, n^4]``; the rank
doubles as the node's ID in the anonymous network.  The range is chosen so
that all ``n`` ranks are distinct with high probability (a union bound
gives collision probability at most ``n^2 / (2 n^4) <= 1/(2 n^2)``).
"""

from __future__ import annotations

import random


def draw_rank(rng: random.Random, n: int, exponent: int = 4) -> int:
    """Draw a rank uniformly from ``[1, n**exponent]``."""
    if n < 2:
        raise ValueError(f"need n >= 2, got {n}")
    if exponent < 1:
        raise ValueError(f"need exponent >= 1, got {exponent}")
    return rng.randint(1, n**exponent)


def rank_collision_probability(n: int, exponent: int = 4) -> float:
    """Union-bound estimate of the probability that two ranks collide.

    ``P[collision] <= C(n, 2) / n**exponent``.
    """
    if n < 2:
        return 0.0
    return min(1.0, (n * (n - 1) / 2.0) / float(n**exponent))
