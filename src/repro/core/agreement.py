"""Fault-tolerant implicit binary agreement (paper, Section V-A).

The algorithm is a zero-biased propagation over the same candidate/referee
committee structure as the leader election:

* **Step 0** (round 1): every candidate sends its input bit to its sampled
  referees (which also registers it with them); a candidate holding ``0``
  decides 0 immediately.
* **Step 1** (odd iteration rounds): a candidate that learns ``0`` from a
  referee and has not decided 0 yet decides 0 and forwards ``0`` to its
  referees — once, ever.
* **Step 2** (even iteration rounds): a referee holding ``0`` forwards it
  to all its registered candidates — once, ever.

After ``Theta(log n/alpha)`` iterations every alive candidate that can be
reached by a surviving zero has decided 0; candidates that never saw a
zero decide 1 (their own input — so validity is automatic).  Non-candidate
nodes stay undecided (this is the *implicit* problem; see
:mod:`repro.core.explicit` for the explicit extension).

Every message carries a single bit, so the message-bit complexity is the
message count times O(1) — Theorem 5.1's ``O(n^1/2 log^{3/2} n/alpha^{3/2})``.
"""

from __future__ import annotations

from typing import List, Optional

from ..params import Params
from ..sim.message import Delivery, Message
from ..sim.node import Context, Protocol
from ..types import Decision
from .schedule import AgreementSchedule

MSG_VALUE = "AG_VAL"  # candidate -> referee: (bit,)   registration + input
MSG_ZERO_TO_REFEREE = "AG_Z2R"  # candidate -> referee: ()
MSG_ZERO_TO_CANDIDATE = "AG_Z2C"  # referee -> candidate: ()


class AgreementProtocol(Protocol):
    """One node's view of the Section V-A protocol.

    Outputs: :attr:`decision` (ZERO / ONE / UNDECIDED) and
    :attr:`is_candidate`.
    """

    def __init__(
        self,
        node_id: int,
        params: Params,
        schedule: AgreementSchedule,
        input_bit: int,
    ) -> None:
        if input_bit not in (0, 1):
            raise ValueError(f"input bit must be 0 or 1, got {input_bit}")
        self.node_id = node_id
        self.params = params
        self.schedule = schedule
        self.input_bit = input_bit

        self.is_candidate = False
        self.decision = Decision.UNDECIDED

        # Candidate state.
        self._referees: List[int] = []
        self._sent_zero = False

        # Referee state.
        self._registered: List[int] = []
        self._has_zero = False
        self._forwarded_zero = False

    # ------------------------------------------------------------------

    def on_start(self, ctx: Context) -> None:
        self.is_candidate = ctx.rng.random() < self.params.candidate_probability
        if not self.is_candidate:
            ctx.idle()
            return
        # Step 0: register with the referees, carrying the input bit.
        self._referees = ctx.sample_nodes(self.params.referee_count)
        announce = Message(MSG_VALUE, (self.input_bit,))
        for referee in self._referees:
            ctx.send(referee, announce)
        if self.input_bit == 0:
            self.decision = Decision.ZERO
            self._sent_zero = True  # the registration itself carried the 0
        ctx.idle()

    def on_round(self, ctx: Context, inbox: List[Delivery]) -> None:
        saw_zero_as_candidate = False
        saw_zero_as_referee = False
        for delivery in inbox:
            kind = delivery.kind
            if kind == MSG_VALUE:
                self._registered.append(delivery.sender)
                if delivery.fields[0] == 0:
                    saw_zero_as_referee = True
            elif kind == MSG_ZERO_TO_REFEREE:
                saw_zero_as_referee = True
            elif kind == MSG_ZERO_TO_CANDIDATE:
                saw_zero_as_candidate = True

        if saw_zero_as_referee:
            self._has_zero = True
        if self._has_zero and not self._forwarded_zero and self._registered:
            # Step 2: forward the zero to every registered candidate, once.
            self._forwarded_zero = True
            zero = Message(MSG_ZERO_TO_CANDIDATE, ())
            for candidate in self._registered:
                ctx.send(candidate, zero)

        if saw_zero_as_candidate and self.is_candidate:
            # Step 1: decide 0 and forward it, once.
            if self.decision is not Decision.ZERO:
                self.decision = Decision.ZERO
            if not self._sent_zero:
                self._sent_zero = True
                zero = Message(MSG_ZERO_TO_REFEREE, ())
                for referee in self._referees:
                    ctx.send(referee, zero)

        ctx.idle()

    def on_stop(self, ctx: Context) -> None:
        if self.is_candidate and self.decision is Decision.UNDECIDED:
            # Never saw a zero: decide our own input (which must be 1 for
            # the decision to still be undecided, except in budget-capped
            # runs where the registration itself may have been suppressed).
            self.decision = Decision.of(self.input_bit)

    # ------------------------------------------------------------------

    @property
    def decided_bit(self) -> Optional[int]:
        """The decided bit, or None while undecided."""
        if self.decision is Decision.UNDECIDED:
            return None
        return self.decision.bit
