"""Result objects with the paper's correctness conditions evaluated.

Correctness is judged over nodes that are *alive at the end of the run*
(standard for crash faults), with one paper-specific refinement for leader
election: Definition 1's footnote allows the elected leader to crash
*after* the election, so :attr:`LeaderElectionResult.success` also accepts
runs in which the unique node that reached the ELECTED state crashed
later, provided every alive candidate still agrees on that node's rank.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set

from ..sim.metrics import Metrics
from ..sim.trace import Trace
from ..types import Decision


@dataclass
class LeaderElectionResult:
    """Outcome of one leader-election run."""

    n: int
    alpha: float
    seed: int
    adversary: str
    faulty: Set[int]
    crashed: Dict[int, int]
    metrics: Metrics
    trace: Optional[Trace]
    #: Delivery-delay bound of the run (0 = fully synchronous delivery).
    max_delay: int = 0

    #: Alive nodes in the ELECTED state at the end of the run.
    elected_alive: List[int] = field(default_factory=list)
    #: Crashed nodes that were in the ELECTED state when they crashed.
    elected_crashed: List[int] = field(default_factory=list)
    #: node -> final leader-rank belief, for every alive candidate.
    beliefs: Dict[int, Optional[int]] = field(default_factory=dict)
    #: node -> own rank, for every node (candidates and passives alike).
    ranks: Dict[int, int] = field(default_factory=dict)
    #: Alive candidate nodes.
    candidates_alive: List[int] = field(default_factory=list)
    #: All candidate nodes (including crashed ones).
    candidates_all: List[int] = field(default_factory=list)

    # ------------------------------------------------------------------

    @property
    def committee_size(self) -> int:
        """Number of nodes that self-selected as candidates."""
        return len(self.candidates_all)

    @property
    def agreed_rank(self) -> Optional[int]:
        """The common leader-rank belief of alive candidates, if unanimous."""
        values = {self.beliefs[u] for u in self.candidates_alive}
        if len(values) == 1:
            value = values.pop()
            return value
        return None

    @property
    def beliefs_agree(self) -> bool:
        """True iff all alive candidates share one non-null leader belief."""
        return bool(self.candidates_alive) and self.agreed_rank is not None

    @property
    def strict_success(self) -> bool:
        """Exactly one *alive* ELECTED node, and every alive candidate
        believes that node's rank."""
        if len(self.elected_alive) != 1:
            return False
        leader = self.elected_alive[0]
        return self.beliefs_agree and self.agreed_rank == self.ranks[leader]

    @property
    def success(self) -> bool:
        """The paper's success condition (Definition 1 + footnote 3).

        Either a unique alive leader that everyone believes in, or — when
        the elected node crashed after electing itself — a unique crashed
        ELECTED node whose rank every alive candidate still believes.
        """
        if self.strict_success:
            return True
        if not self.elected_alive and len(self.elected_crashed) == 1:
            leader = self.elected_crashed[0]
            return self.beliefs_agree and self.agreed_rank == self.ranks[leader]
        return False

    @property
    def leader_node(self) -> Optional[int]:
        """The winning node, under the paper's success condition."""
        if self.strict_success:
            return self.elected_alive[0]
        if self.success:
            return self.elected_crashed[0]
        return None

    @property
    def leader_is_faulty(self) -> Optional[bool]:
        """Whether the elected leader belongs to the static faulty set."""
        leader = self.leader_node
        if leader is None:
            return None
        return leader in self.faulty

    @property
    def messages(self) -> int:
        """Total messages sent (the paper's message complexity)."""
        return self.metrics.messages_sent

    @property
    def rounds(self) -> int:
        """Last round the engine actually executed."""
        return self.metrics.rounds

    @property
    def horizon(self) -> int:
        """Requested round count (the nominal schedule length)."""
        return self.metrics.horizon

    def summary(self) -> Dict[str, object]:
        """Headline facts as a plain dict (tables/logging)."""
        return {
            "n": self.n,
            "alpha": self.alpha,
            "adversary": self.adversary,
            "success": self.success,
            "strict_success": self.strict_success,
            "leader_node": self.leader_node,
            "leader_is_faulty": self.leader_is_faulty,
            "committee_size": self.committee_size,
            "messages": self.messages,
            "bits": self.metrics.bits_sent,
            "rounds": self.rounds,
            "horizon": self.horizon,
            "rounds_executed": self.metrics.rounds_executed,
            "crashes": self.metrics.crashes,
        }


@dataclass
class ExplicitLeaderElectionResult(LeaderElectionResult):
    """Outcome of an explicit leader-election run.

    Adds the per-node knowledge of the winner: the explicit problem
    requires *every* node to know the leader's identity (rank).
    """

    #: node -> leader rank known after the broadcast, for alive nodes.
    explicit_ranks: Dict[int, Optional[int]] = field(default_factory=dict)

    @property
    def explicit_success(self) -> bool:
        """Implicit success plus: every alive node knows the winner's rank."""
        if not self.success:
            return False
        leader = self.leader_node
        assert leader is not None
        expected = self.ranks[leader]
        return all(
            rank == expected for rank in self.explicit_ranks.values()
        ) and len(self.explicit_ranks) > 0

    @property
    def knowledge_fraction(self) -> float:
        """Fraction of alive nodes that know the agreed leader rank."""
        if not self.explicit_ranks:
            return 0.0
        expected = self.agreed_rank
        known = sum(1 for rank in self.explicit_ranks.values() if rank == expected)
        return known / len(self.explicit_ranks)


@dataclass
class AgreementResult:
    """Outcome of one implicit-agreement run."""

    n: int
    alpha: float
    seed: int
    adversary: str
    inputs: Sequence[int]
    faulty: Set[int]
    crashed: Dict[int, int]
    metrics: Metrics
    trace: Optional[Trace]
    #: Delivery-delay bound of the run (0 = fully synchronous delivery).
    max_delay: int = 0

    #: node -> Decision, for every alive node.
    decisions: Dict[int, Decision] = field(default_factory=dict)
    #: Alive candidate nodes.
    candidates_alive: List[int] = field(default_factory=list)
    #: All candidate nodes (including crashed ones).
    candidates_all: List[int] = field(default_factory=list)

    # ------------------------------------------------------------------

    @property
    def decided_bits(self) -> List[int]:
        """Bits decided by alive nodes."""
        return [
            d.bit for d in self.decisions.values() if d is not Decision.UNDECIDED
        ]

    @property
    def decision(self) -> Optional[int]:
        """The common decided bit, or None if no/contradictory decisions."""
        bits = set(self.decided_bits)
        if len(bits) == 1:
            return bits.pop()
        return None

    @property
    def agreement_holds(self) -> bool:
        """Definition 2, condition 1: some node decided, all decisions equal."""
        bits = self.decided_bits
        return bool(bits) and len(set(bits)) == 1

    @property
    def validity_holds(self) -> bool:
        """Definition 2, condition 2: the decided value is some node's input.

        Vacuously true while nothing is decided.
        """
        inputs = set(self.inputs)
        return all(bit in inputs for bit in self.decided_bits)

    @property
    def success(self) -> bool:
        """Implicit agreement as per Definition 2."""
        return self.agreement_holds and self.validity_holds

    @property
    def committee_size(self) -> int:
        """Number of nodes that self-selected as candidates."""
        return len(self.candidates_all)

    @property
    def messages(self) -> int:
        """Total messages sent."""
        return self.metrics.messages_sent

    @property
    def rounds(self) -> int:
        """Last round the engine actually executed."""
        return self.metrics.rounds

    @property
    def horizon(self) -> int:
        """Requested round count (the nominal schedule length)."""
        return self.metrics.horizon

    def summary(self) -> Dict[str, object]:
        """Headline facts as a plain dict (tables/logging)."""
        return {
            "n": self.n,
            "alpha": self.alpha,
            "adversary": self.adversary,
            "success": self.success,
            "decision": self.decision,
            "committee_size": self.committee_size,
            "messages": self.messages,
            "bits": self.metrics.bits_sent,
            "rounds": self.rounds,
            "horizon": self.horizon,
            "rounds_executed": self.metrics.rounds_executed,
            "crashes": self.metrics.crashes,
        }


@dataclass
class ExplicitAgreementResult(AgreementResult):
    """Outcome of an explicit agreement run.

    Adds the per-node knowledge of the agreed bit: the explicit problem
    requires *every* node to decide.
    """

    #: node -> bit known after the broadcast, for alive nodes.
    explicit_bits: Dict[int, Optional[int]] = field(default_factory=dict)

    @property
    def explicit_success(self) -> bool:
        """Implicit success plus: every alive node knows the agreed bit."""
        if not self.success:
            return False
        expected = self.decision
        return (
            bool(self.explicit_bits)
            and all(bit == expected for bit in self.explicit_bits.values())
        )

    @property
    def knowledge_fraction(self) -> float:
        """Fraction of alive nodes that know the agreed bit."""
        if not self.explicit_bits:
            return 0.0
        expected = self.decision
        known = sum(1 for bit in self.explicit_bits.values() if bit == expected)
        return known / len(self.explicit_bits)
