"""The paper's contribution: fault-tolerant implicit leader election
(Section IV-A) and implicit agreement (Section V-A), plus their explicit
extensions.

High-level entry points
-----------------------

:func:`elect_leader` and :func:`agree` build the network, run the protocol
against a chosen adversary, and return a result object with the outcome,
the correctness verdicts, and the message/round metrics.

>>> from repro.core import elect_leader
>>> result = elect_leader(n=256, alpha=0.5, seed=3, adversary="staggered")
>>> result.success, result.messages
(True, ...)
"""

from .agreement import AgreementProtocol
from .explicit import ExplicitAgreementProtocol, ExplicitLeaderElectionProtocol
from .leader_based_agreement import (
    LeaderBasedAgreementProtocol,
    decode_input_from_rank,
    encode_input_in_rank,
)
from .leader_election import LeaderElectionProtocol
from .ranks import draw_rank, rank_collision_probability
from .results import (
    AgreementResult,
    ExplicitAgreementResult,
    ExplicitLeaderElectionResult,
    LeaderElectionResult,
)
from .runner import (
    INPUT_PATTERNS,
    agree,
    agree_explicit,
    agree_via_election,
    elect_leader,
    elect_leader_explicit,
    make_inputs,
)
from .schedule import AgreementSchedule, LeaderElectionSchedule

__all__ = [
    "AgreementProtocol",
    "AgreementResult",
    "AgreementSchedule",
    "ExplicitAgreementProtocol",
    "ExplicitAgreementResult",
    "ExplicitLeaderElectionProtocol",
    "ExplicitLeaderElectionResult",
    "INPUT_PATTERNS",
    "LeaderBasedAgreementProtocol",
    "LeaderElectionProtocol",
    "LeaderElectionResult",
    "LeaderElectionSchedule",
    "agree",
    "agree_explicit",
    "agree_via_election",
    "decode_input_from_rank",
    "draw_rank",
    "encode_input_in_rank",
    "elect_leader",
    "elect_leader_explicit",
    "make_inputs",
    "rank_collision_probability",
]
