"""Agreement via leader election (paper, Section V opening remark).

"Note that a leader election algorithm immediately gives a solution to
the agreement problem: simply by agreeing on the leader's input value.
Hence, our leader election algorithm also solves agreement, but then the
message complexity would be O(n^1/2 log^{5/2} n / alpha^{5/2})."

This module implements that reduction: run the Section IV-A election with
each candidate's input bit piggybacked on its proposals, and let every
candidate decide the bit of the rank it ends up believing in.  It exists
to measure the remark — the dedicated Section V-A protocol beats the
reduction by a ``log n/alpha`` factor, which experiment E13's table makes
visible.

Mechanically, a candidate's rank encodes its input bit in the lowest bit:
ranks are drawn from [1, n^4] and then forced to parity ``input_bit``.
This keeps every message identical to the pure election (no extra fields,
no CONGEST impact) while letting any node recover the winner's input from
the winning rank alone.  Rank uniformity within each parity class is
preserved, so all Section IV-A arguments go through unchanged.
"""

from __future__ import annotations

from ..params import Params
from ..sim.node import Context
from ..types import Decision
from .leader_election import LeaderElectionProtocol
from .schedule import LeaderElectionSchedule


def encode_input_in_rank(rank: int, input_bit: int) -> int:
    """Force the rank's parity to equal ``input_bit`` (stays in range)."""
    if rank % 2 == input_bit:
        return rank
    if rank > 1:
        return rank - 1
    return rank + 1


def decode_input_from_rank(rank: int) -> int:
    """Recover the owner's input bit from a parity-encoded rank."""
    return rank % 2


class LeaderBasedAgreementProtocol(LeaderElectionProtocol):
    """Implicit agreement by electing a leader and adopting its input."""

    def __init__(
        self,
        node_id: int,
        params: Params,
        schedule: LeaderElectionSchedule,
        input_bit: int,
    ) -> None:
        super().__init__(node_id, params, schedule)
        if input_bit not in (0, 1):
            raise ValueError(f"input bit must be 0 or 1, got {input_bit}")
        self.input_bit = input_bit
        self.decision = Decision.UNDECIDED

    def _draw_rank(self, ctx: Context) -> int:
        rank = super()._draw_rank(ctx)
        return encode_input_in_rank(rank, self.input_bit)

    def on_stop(self, ctx: Context) -> None:
        super().on_stop(ctx)
        if self.is_candidate and self.leader_rank is not None:
            self.decision = Decision.of(decode_input_from_rank(self.leader_rank))
