"""Fault-tolerant implicit leader election (paper, Section IV-A).

Protocol sketch (all sampling quantities from :class:`repro.params.Params`):

1. Every node draws a random *rank* in ``[1, n^4]`` (its ID) and becomes a
   **candidate** with probability ``6 log n / (alpha n)`` (Lemma 1).
2. Each candidate samples ``2 (n log n / alpha)^(1/2)`` **referees** and
   registers its rank with them; referees forward the rank lists back, so
   every candidate learns (w.h.p.) the ranks of all other candidates
   (Lemma 3: every candidate pair shares a non-faulty referee).
3. Iteratively (``Theta(log n/alpha)`` iterations of 4 rounds each):

   * each unresolved candidate *proposes* the minimum rank of its
     ``rankList`` (Step 1); a candidate proposing its own rank marks
     itself leader;
   * referees aggregate and forward the **maximum** proposed rank, with a
     flag saying whether that rank was proposed by its owner (Step 2);
   * candidates adopt an owner-confirmed maximum, echo it, or — when the
     maximum is unknown to them — prune their ``rankList`` and propose a
     higher rank next (Step 3);
   * a candidate whose proposal sees no progress for a full iteration
     concludes the proposed node crashed, removes the rank, and advances
     to the next minimum (Step 4).

The protocol converges on the largest rank that is ever self-proposed by a
node that stays alive long enough for one referee round-trip; each crash
can stall at most one iteration, and the committee has at most
``O(log n/alpha)`` members, hence the iteration budget.

Interpretation decisions beyond the paper's prose (see DESIGN.md §5):

* **Live-leader re-confirmation.**  A marked leader that observes an
  unflagged aggregate of its own rank (someone probing it) re-sends its
  confirmation.  Without this, a candidate that missed the original
  confirmation would time the leader's rank out and the network could
  elect two leaders.  The paper's "u doesn't respond" line refers to
  flagged (already-confirmed) aggregates, which we likewise do not answer.
* **Echo throttling.**  Candidates support/echo a given rank at most once
  (the paper sends each such message "in the next round" once); this keeps
  the message complexity at the Theorem 4.1 bound.
* **Empty-rankList fallback.**  If every known rank has been disproved, a
  candidate falls back to ``{own rank}``; this is unreachable in the
  w.h.p. regime but guarantees liveness in pathological executions.
"""

from __future__ import annotations

from typing import List, Optional, Set

from ..params import Params
from ..sim.message import Delivery, Message
from ..sim.node import Context, Protocol
from ..types import NodeState
from .ranks import draw_rank
from .schedule import LeaderElectionSchedule

MSG_RANK = "LE_RANK"  # candidate -> referee: (rank,)                 registration
MSG_LIST = "LE_LIST"  # referee -> candidate: (rank,)                 one known rank
MSG_PROPOSE = "LE_PROP"  # candidate -> referee: (sender_rank, rank)  Step 1
MSG_AGG = "LE_AGG"  # referee -> candidate: (owner_flag, rank)        Steps 2/4
MSG_CONFIRM = "LE_CONF"  # candidate -> referee: (sender_rank, rank)  Step 3


class LeaderElectionProtocol(Protocol):
    """One node's view of the Section IV-A protocol.

    Every node runs the same code; the candidate and referee roles are
    sub-states (a node can hold both).  Outputs:

    * :attr:`state` — ELECTED / NON_ELECTED / UNDECIDED (implicit LE);
    * :attr:`leader_rank` — the rank this node believes won (candidates
      only; ``None`` for passive nodes);
    * :attr:`rank` — the node's own rank.
    """

    def __init__(self, node_id: int, params: Params, schedule: LeaderElectionSchedule) -> None:
        self.node_id = node_id
        self.params = params
        self.schedule = schedule

        self.rank: Optional[int] = None
        self.is_candidate = False
        self.state = NodeState.UNDECIDED
        self.leader_rank: Optional[int] = None

        # Candidate state.
        self._referees: List[int] = []
        self._rank_list: Set[int] = set()
        self._proposed: Set[int] = set()
        self._supported: Set[int] = set()
        self._outstanding: Optional[int] = None
        self._deadline: Optional[int] = None
        self._marked = False
        self._confirmed = False

        # Referee state.
        self._registered: dict = {}  # sender node -> announced rank

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def on_start(self, ctx: Context) -> None:
        self.rank = self._draw_rank(ctx)
        self.is_candidate = ctx.rng.random() < self.params.candidate_probability
        if not self.is_candidate:
            ctx.idle()
            return
        self._rank_list = {self.rank}
        self._referees = ctx.sample_nodes(self.params.referee_count)
        announce = Message(MSG_RANK, (self.rank,))
        for referee in self._referees:
            ctx.send(referee, announce)
        ctx.wake_at(self.schedule.iteration_start)

    def on_round(self, ctx: Context, inbox: List[Delivery]) -> None:
        proposals = []  # (sender_rank, rank) seen as referee this round
        agg_best: Optional[int] = None
        agg_owner = False
        new_registrations = []

        for delivery in inbox:
            kind = delivery.kind
            if kind == MSG_RANK:
                new_registrations.append((delivery.sender, delivery.fields[0]))
            elif kind == MSG_LIST:
                self._rank_list.add(delivery.fields[0])
            elif kind in (MSG_PROPOSE, MSG_CONFIRM):
                proposals.append(delivery.fields)
            elif kind == MSG_AGG:
                flag, rank = delivery.fields
                if agg_best is None or rank > agg_best:
                    agg_best, agg_owner = rank, bool(flag)
                elif rank == agg_best and flag:
                    agg_owner = True

        if new_registrations:
            self._referee_register(ctx, new_registrations)
        if proposals:
            self._referee_aggregate(ctx, proposals)
        if self.is_candidate:
            if agg_best is not None:
                self._candidate_handle_aggregate(ctx, agg_best, agg_owner)
            self._candidate_act(ctx)
        elif not self._registered:
            ctx.idle()
        # A pure referee with registrations stays reactive: it idles unless
        # messages arrive, which the engine handles via the default wake —
        # so put it back to sleep explicitly.
        if not self.is_candidate and self._registered:
            ctx.idle()

    def on_stop(self, ctx: Context) -> None:
        if not self.is_candidate:
            self.state = NodeState.NON_ELECTED
            return
        if self.leader_rank is None:
            # Paper: candidates agree on the minimum rank left in their
            # rankList at termination.
            self.leader_rank = min(self._rank_list) if self._rank_list else self.rank
        self.state = NodeState.ELECTED if self._marked else NodeState.NON_ELECTED

    def _draw_rank(self, ctx: Context) -> int:
        """Draw this node's rank (subclass hook — e.g. the leader-based
        agreement reduction encodes the input bit in the rank)."""
        return draw_rank(ctx.rng, self.params.n, self.params.rank_exponent)

    # ------------------------------------------------------------------
    # Referee role
    # ------------------------------------------------------------------

    def _referee_register(self, ctx: Context, arrivals: List[tuple]) -> None:
        """Record new candidates and exchange rank lists (pre-processing).

        Sends each existing candidate the new ranks, and each new candidate
        every other known rank, one rank per message (the engine's per-edge
        FIFO spreads them over rounds — CONGEST).
        """
        known_before = dict(self._registered)
        for sender, rank in arrivals:
            self._registered[sender] = rank
        cache: dict = {}

        def list_message(rank: int) -> Message:
            message = cache.get(rank)
            if message is None:
                message = cache[rank] = Message(MSG_LIST, (rank,))
            return message

        for sender, rank in arrivals:
            for other, other_rank in known_before.items():
                ctx.send(other, list_message(rank))
                ctx.send(sender, list_message(other_rank))
        # Ranks among the new arrivals themselves.
        for i, (sender, rank) in enumerate(arrivals):
            for other, other_rank in arrivals[i + 1 :]:
                ctx.send(other, list_message(rank))
                ctx.send(sender, list_message(other_rank))

    def _referee_aggregate(self, ctx: Context, proposals: List[tuple]) -> None:
        """Steps 2/4: forward the maximum proposed rank to all registered
        candidates, flagging whether its owner proposed it."""
        best = max(rank for _, rank in proposals)
        owner = any(
            sender_rank == rank == best for sender_rank, rank in proposals
        )
        reply = Message(MSG_AGG, (int(owner), best))
        for candidate in self._registered:
            ctx.send(candidate, reply)

    # ------------------------------------------------------------------
    # Candidate role
    # ------------------------------------------------------------------

    def _candidate_handle_aggregate(self, ctx: Context, pmax: int, owner: bool) -> None:
        """Step 3: react to the maximum aggregated rank of this round."""
        assert self.rank is not None
        # Prune every rank strictly below the observed maximum (they can
        # no longer win); the paper prunes on every higher-rank receipt.
        if any(r < pmax for r in self._rank_list):
            self._rank_list = {r for r in self._rank_list if r >= pmax}
        if self._marked and pmax > self.rank:
            # A higher rank displaced us; unmark.
            self._marked = False
            self._confirmed = False
            self.state = NodeState.UNDECIDED
            self.leader_rank = None

        if pmax == self.rank:
            if owner:
                # Our own confirmation came back: leadership established.
                self._marked = True
                self._confirmed = True
                self.state = NodeState.ELECTED
                self.leader_rank = self.rank
                self._outstanding = None
                self._deadline = None
            else:
                # Someone is probing our rank (their referees never saw our
                # confirmation): re-confirm so they can adopt instead of
                # timing us out.  [DESIGN.md §5: live-leader re-confirmation]
                self._marked = True
                self.state = NodeState.ELECTED
                self.leader_rank = self.rank
                self._send_confirmation(ctx)
            return

        if self.leader_rank is not None and self._confirmed and pmax < self.leader_rank:
            return  # stale echo of an already-beaten rank

        if owner:
            # The rank's owner itself proposed/confirmed it: adopt.
            previously_confirmed = self._confirmed and self.leader_rank == pmax
            self.leader_rank = pmax
            self._confirmed = True
            self._marked = False
            self.state = NodeState.UNDECIDED
            self._outstanding = None
            self._deadline = None
            if pmax not in self._supported and not previously_confirmed:
                # Paper: the adopter echoes the winner once, spreading it to
                # candidates whose referees missed the confirmation.
                self._supported.add(pmax)
                self._send_support(ctx, pmax)
            return

        if pmax in self._rank_list:
            # Unconfirmed maximum we know about: support it (echo), then
            # await its owner's confirmation (Step 4 timeout otherwise).
            if self._confirmed and self.leader_rank == pmax:
                return
            self._confirmed = False
            self.leader_rank = pmax
            if self._outstanding != pmax:
                self._outstanding = pmax
                self._deadline = self.schedule.confirmation_deadline(ctx.round)
                self._wake_for_deadline(ctx)
            if pmax not in self._supported:
                self._supported.add(pmax)
                self._send_support(ctx, pmax)
            return

        # Unknown maximum: distrust it; propose a higher rank of our own
        # list at the next opportunity (rankList is already pruned, and
        # ``_candidate_act`` runs right after this handler).
        if self._outstanding is not None and self._outstanding < pmax:
            self._outstanding = None
            self._deadline = None

    def _candidate_act(self, ctx: Context) -> None:
        """Step 1/Step 4 driver: timeouts and new proposals."""
        assert self.rank is not None
        round_ = ctx.round
        if round_ < self.schedule.iteration_start:
            # Pre-processing phase: just collect rank lists.
            ctx.wake_at(self.schedule.iteration_start)
            return

        if self._outstanding is not None and self._deadline is not None:
            if round_ >= self._deadline:
                # Step 4: the proposed/supported rank never got confirmed —
                # its owner is presumed crashed.  Drop it and move on.
                timed_out = self._outstanding
                self._outstanding = None
                self._deadline = None
                if timed_out == self.rank:
                    # Our own confirmation went unanswered; retry rather
                    # than disown our rank.
                    self._send_confirmation(ctx)
                else:
                    self._rank_list.discard(timed_out)
                    self._supported.discard(timed_out)
                    if self.leader_rank == timed_out and not self._confirmed:
                        self.leader_rank = None

        if self._confirmed:
            ctx.idle()
            return

        if self._outstanding is None:
            self._propose_next(ctx)

        self._wake_for_deadline(ctx)

    def _propose_next(self, ctx: Context) -> None:
        """Step 1: propose the minimum unproposed rank of the rankList."""
        assert self.rank is not None
        if not self._rank_list:
            # Liveness fallback (DESIGN.md §5): every known rank has been
            # disproved; fall back to our own.
            self._rank_list = {self.rank}
            self._proposed.clear()
        unproposed = [r for r in self._rank_list if r not in self._proposed]
        if not unproposed:
            # Everything was proposed already and nothing confirmed: probe
            # the smallest remaining rank again.
            self._proposed -= self._rank_list
            unproposed = sorted(self._rank_list)
        proposal = min(unproposed)
        self._proposed.add(proposal)
        self._outstanding = proposal
        self._deadline = self.schedule.confirmation_deadline(ctx.round)
        if proposal == self.rank:
            # Step 1: proposing our own rank marks us leader (tentatively,
            # until the confirmation echo arrives).
            self._marked = True
            self.state = NodeState.ELECTED
            self.leader_rank = self.rank
        message = Message(MSG_PROPOSE, (self.rank, proposal))
        for referee in self._referees:
            ctx.send(referee, message)

    def _send_confirmation(self, ctx: Context) -> None:
        """Send CONF(own, own): the owner (re-)asserts its leadership."""
        assert self.rank is not None
        self._outstanding = self.rank
        self._deadline = self.schedule.confirmation_deadline(ctx.round)
        message = Message(MSG_CONFIRM, (self.rank, self.rank))
        for referee in self._referees:
            ctx.send(referee, message)
        self._wake_for_deadline(ctx)

    def _send_support(self, ctx: Context, rank: int) -> None:
        """Echo a maximum rank to our referees (Step 3 support message)."""
        assert self.rank is not None
        message = Message(MSG_CONFIRM, (self.rank, rank))
        for referee in self._referees:
            ctx.send(referee, message)

    def _wake_for_deadline(self, ctx: Context) -> None:
        """Sleep until the confirmation deadline (or for good if none)."""
        if self._deadline is not None and self._deadline > ctx.round:
            ctx.wake_at(self._deadline)
        elif self._confirmed:
            ctx.idle()
