"""Explicit extensions of the two implicit protocols.

Both Section IV-A and Section V-A note that the implicit solutions extend
to the explicit problems with one extra broadcast round and
``O(n log n / alpha)`` extra messages: every candidate that reached an
agreement broadcasts the outcome through all of its ports in parallel, and
every node adopts what it hears.  Broadcasting from *all* candidates (not
just the leader) keeps the extension fault-tolerant — it succeeds as long
as one alive candidate holds the agreed outcome.
"""

from __future__ import annotations

from typing import List, Optional

from ..params import Params
from ..sim.message import Delivery, Message
from ..sim.node import NEVER, Context, Protocol
from ..types import Decision
from .agreement import AgreementProtocol
from .leader_election import LeaderElectionProtocol
from .schedule import AgreementSchedule, LeaderElectionSchedule

MSG_LEADER = "LE_XPL"  # candidate -> everyone: (leader_rank,)
MSG_DECISION = "AG_XPL"  # candidate -> everyone: (bit,)


def _keep_wake(ctx: Context, round_: int) -> None:
    """Ensure the node wakes by ``round_`` without cancelling earlier wakes."""
    if ctx.round >= round_:
        return
    if ctx._next_wake == NEVER or ctx._next_wake > round_:
        ctx.wake_at(round_)


class ExplicitLeaderElectionProtocol(LeaderElectionProtocol):
    """Implicit leader election + a final all-ports broadcast round.

    Extra output: :attr:`explicit_leader_rank` — the leader's rank as known
    by *every* node (the explicit problem's requirement).
    """

    def __init__(self, node_id: int, params: Params, schedule: LeaderElectionSchedule) -> None:
        super().__init__(node_id, params, schedule)
        self.explicit_leader_rank: Optional[int] = None
        self._broadcast_done = False

    @property
    def broadcast_round(self) -> int:
        """The round in which candidates broadcast the winner."""
        return self.schedule.last_round + 1

    def on_round(self, ctx: Context, inbox: List[Delivery]) -> None:
        announcements = [
            delivery.fields[0]
            for delivery in inbox
            if delivery.kind == MSG_LEADER
        ]
        rest = [d for d in inbox if d.kind != MSG_LEADER]
        super().on_round(ctx, rest)
        if announcements:
            # Conflicting announcements are resolved towards the maximum,
            # consistent with the implicit protocol's max-convergence.
            best = max(announcements)
            if self.explicit_leader_rank is None or best > self.explicit_leader_rank:
                self.explicit_leader_rank = best
        if self.is_candidate and not self._broadcast_done:
            if ctx.round >= self.broadcast_round:
                self._broadcast(ctx)
            else:
                _keep_wake(ctx, self.broadcast_round)

    def _broadcast(self, ctx: Context) -> None:
        self._broadcast_done = True
        belief = self.leader_rank
        if belief is None:
            belief = min(self._rank_list) if self._rank_list else self.rank
        if belief is None:
            return
        if self.explicit_leader_rank is None or belief > self.explicit_leader_rank:
            self.explicit_leader_rank = belief
        message = Message(MSG_LEADER, (belief,))
        for port in ctx.all_ports():
            ctx.send(port, message)


class ExplicitAgreementProtocol(AgreementProtocol):
    """Implicit agreement + a final all-ports broadcast round.

    Extra output: :attr:`explicit_decision` — the agreed bit as known by
    *every* node.
    """

    def __init__(
        self,
        node_id: int,
        params: Params,
        schedule: AgreementSchedule,
        input_bit: int,
    ) -> None:
        super().__init__(node_id, params, schedule, input_bit)
        self.explicit_decision: Optional[int] = None
        self._broadcast_done = False

    @property
    def broadcast_round(self) -> int:
        """The round in which candidates broadcast the agreed bit."""
        return self.schedule.last_round + 1

    def on_round(self, ctx: Context, inbox: List[Delivery]) -> None:
        announcements = [
            delivery.fields[0]
            for delivery in inbox
            if delivery.kind == MSG_DECISION
        ]
        rest = [d for d in inbox if d.kind != MSG_DECISION]
        super().on_round(ctx, rest)
        if announcements:
            # The protocol is zero-biased; resolve conflicts towards 0.
            best = min(announcements)
            if self.explicit_decision is None or best < self.explicit_decision:
                self.explicit_decision = best
        if self.is_candidate and not self._broadcast_done:
            if ctx.round >= self.broadcast_round:
                self._broadcast(ctx)
            else:
                _keep_wake(ctx, self.broadcast_round)

    def _broadcast(self, ctx: Context) -> None:
        self._broadcast_done = True
        if self.decision is Decision.UNDECIDED:
            bit = self.input_bit  # same rule as on_stop
        else:
            bit = self.decision.bit
        if self.explicit_decision is None or bit < self.explicit_decision:
            self.explicit_decision = bit
        message = Message(MSG_DECISION, (bit,))
        for port in ctx.all_ports():
            ctx.send(port, message)

    def on_stop(self, ctx: Context) -> None:
        super().on_stop(ctx)
        if self.explicit_decision is None and self.decision is not Decision.UNDECIDED:
            self.explicit_decision = self.decision.bit
