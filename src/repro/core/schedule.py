"""Round schedules for the two protocols.

Both protocols are driven by fixed, globally known phase boundaries
(every node knows ``n`` and ``alpha``, hence the whole schedule — paper,
Section II).  All quantities are ``Theta(log n / alpha)`` as in the
paper's round-complexity accounting (Theorem 4.1 / 5.1); the explicit
constants are derived from the w.h.p. bounds of Lemma 1.

Leader election (iteration length 4, Section IV-A)::

    round 1                       candidates sample referees, send RANK
    rounds 2 .. 1+F               referees forward rank lists (CONGEST
                                  FIFO: one rank per edge per round)
    round S = 2+F                 first iteration starts
    S + 4k                        iteration k: PROPOSE round
    S + 4k + 1                    referees aggregate (AGG)
    S + 4k + 2                    candidates confirm/adopt (CONF)
    S + 4k + 3                    referees forward confirmations (AGG)

Agreement (iteration length 2, Section V-A)::

    round 1                       candidates send VALUE(b) to referees;
                                  0-holders decide 0
    rounds 2, 4, 6, ...           referees forward ZERO
    rounds 3, 5, 7, ...           candidates adopt 0, forward ZERO

The forwarding budget ``F`` equals the w.h.p. maximum committee size
(Lemma 1: ``|C| <= 12 log n / alpha`` w.h.p.), because a referee serving
``c`` candidates must push ``c - 1`` ranks down one edge.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..params import Params


def max_candidates_whp(params: Params) -> int:
    """W.h.p. upper bound on the committee size (Lemma 1): twice the mean."""
    return max(1, math.ceil(2.0 * params.expected_candidates))


@dataclass(frozen=True)
class LeaderElectionSchedule:
    """Phase boundaries of the Section IV-A protocol."""

    forwarding_rounds: int
    iterations: int
    iteration_length: int = 4

    @classmethod
    def from_params(cls, params: Params) -> "LeaderElectionSchedule":
        return cls(
            forwarding_rounds=max_candidates_whp(params) + 2,
            iterations=params.iterations,
        )

    @property
    def iteration_start(self) -> int:
        """First PROPOSE round."""
        return 2 + self.forwarding_rounds

    def iteration_round(self, k: int) -> int:
        """PROPOSE round of iteration ``k`` (0-based)."""
        if not 0 <= k < self.iterations:
            raise ValueError(f"iteration {k} out of range [0, {self.iterations})")
        return self.iteration_start + self.iteration_length * k

    @property
    def last_round(self) -> int:
        """Nominal length of a run (with a small tail for in-flight AGGs)."""
        return (
            self.iteration_start
            + self.iteration_length * self.iterations
            + self.iteration_length
        )

    def confirmation_deadline(self, proposed_in: int) -> int:
        """Round by which a proposal made in ``proposed_in`` must have been
        resolved (Step 4's "didn't receive any updates in the next 4
        rounds")."""
        return proposed_in + self.iteration_length + 1


@dataclass(frozen=True)
class AgreementSchedule:
    """Phase boundaries of the Section V-A protocol."""

    iterations: int
    iteration_length: int = 2

    @classmethod
    def from_params(cls, params: Params) -> "AgreementSchedule":
        return cls(iterations=params.iterations)

    @property
    def last_round(self) -> int:
        """Nominal length of a run."""
        return 1 + self.iteration_length * self.iterations + self.iteration_length
