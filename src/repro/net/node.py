"""Per-node process entrypoint: ``python -m repro.net.node``.

One OS process per model node.  The process rebuilds its protocol runtime
from ``(spec, node_id)`` alone (hash-derived RNG streams make that
deterministic across machines), serves a TCP listener for inbound data
frames, and obeys the coordinator's control frames:

``peers``
    The port map.  After this the node can dial any peer lazily.
``round`` (``r``, ``expect``, optional ``crash``)
    Wait until exactly ``expect`` data frames for arrival round ``r`` are
    buffered, deliver them to the protocol in ascending sender order (the
    engine's inbox order), transmit this round's envelopes to peers, and
    report back.  A ``crash`` filter marks this node a scripted victim:
    it physically sends only the filter-kept envelopes and its report
    carries a final output snapshot — the coordinator SIGKILLs it right
    after the report, so the snapshot is the node's last word.
``stop`` (``last_round``, ``expect_total``)
    Wait for the run's full delivered-frame count (late final-round
    frames are still in flight when the control frame arrives), run
    ``on_stop``, and answer with outputs and frame counters.

The node never sleeps its way around races: every wait is a bounded
condition wait (``round_timeout``), every failure path raises, and the
traceback lands on stderr — which the driver redirects into the per-node
journal file.  Coordinator EOF means the trial is over (success or not);
the node simply exits.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
import traceback
from typing import Any, Dict, List, Optional, Tuple

from ..chaos.script import DeliveryFilter
from ..errors import WireError
from ..sim.adapter import NodeRuntime
from ..sim.message import Delivery, Message
from .comm import FrameStream, PeerBook, connect_with_backoff, split_host_port
from .heartbeat import HeartbeatSender
from .spec import WireSpec, snapshot_outputs


class InboxBuffer:
    """Buffered inbound data frames, keyed by arrival round.

    Peers send ahead: a fast sender's round-``r`` frames can arrive while
    this node still works on round ``r - 1`` (or has not even received
    the round frame yet).  The buffer absorbs them; :meth:`take` blocks
    until the coordinator-announced count for a round is present.
    """

    def __init__(self) -> None:
        self._by_round: Dict[int, List[Tuple[int, Message]]] = {}
        self.total_received = 0
        self._cond = asyncio.Condition()

    async def serve(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Connection handler for the node's peer listener."""
        stream = FrameStream(reader, writer)
        while True:
            try:
                frame = await stream.recv()
            except WireError:
                return  # malformed peer stream; drop the connection
            if frame is None:
                return
            if frame.get("t") != "m":
                continue
            arrival = int(frame["ar"])  # type: ignore[arg-type]
            src = int(frame["src"])  # type: ignore[arg-type]
            fields = tuple(frame.get("f", ()))  # type: ignore[arg-type]
            message = Message(str(frame["k"]), fields)
            async with self._cond:
                self._by_round.setdefault(arrival, []).append((src, message))
                self.total_received += 1
                self._cond.notify_all()

    async def take(
        self, round_: int, count: int, timeout: float
    ) -> List[Tuple[int, Message]]:
        """Pop round ``round_``'s frames once ``count`` have arrived,
        sorted ascending by sender (the engine's delivery order)."""
        loop = asyncio.get_running_loop()
        deadline = loop.time() + timeout
        async with self._cond:
            while len(self._by_round.get(round_, ())) < count:
                remaining = deadline - loop.time()
                if remaining <= 0:
                    have = len(self._by_round.get(round_, ()))
                    raise WireError(
                        f"round {round_}: expected {count} data frames, "
                        f"only {have} arrived within {timeout:.1f}s"
                    )
                try:
                    await asyncio.wait_for(self._cond.wait(), remaining)
                except asyncio.TimeoutError:
                    continue
            entries = self._by_round.pop(round_, [])
        entries.sort(key=lambda entry: entry[0])
        return entries

    async def wait_total(self, count: int, timeout: float) -> None:
        """Block until the lifetime received count reaches ``count``
        (the coordinator's delivered-to-us total)."""
        loop = asyncio.get_running_loop()
        deadline = loop.time() + timeout
        async with self._cond:
            while self.total_received < count:
                remaining = deadline - loop.time()
                if remaining <= 0:
                    raise WireError(
                        f"expected {count} delivered frames in total, got "
                        f"{self.total_received} within {timeout:.1f}s"
                    )
                try:
                    await asyncio.wait_for(self._cond.wait(), remaining)
                except asyncio.TimeoutError:
                    continue


class WireNode:
    """The round loop of one node process."""

    def __init__(self, node_id: int, spec: WireSpec) -> None:
        self.node_id = node_id
        self.spec = spec
        self.runtime: NodeRuntime = spec.make_runtime(node_id)
        self.inbox = InboxBuffer()
        self._peers: Optional[PeerBook] = None

    async def run(self, coord_host: str, coord_port: int) -> None:
        spec = self.spec
        server = await asyncio.start_server(
            self.inbox.serve, host=spec.host, port=0
        )
        listen_port = server.sockets[0].getsockname()[1]
        control = await connect_with_backoff(coord_host, coord_port)
        heartbeat = HeartbeatSender(
            control, self.node_id, spec.heartbeat_interval
        )
        heartbeat_task = asyncio.create_task(heartbeat.run())
        try:
            await control.send(
                {"t": "hello", "node": self.node_id, "port": listen_port}
            )
            await self._control_loop(control)
        finally:
            heartbeat.stop()
            heartbeat_task.cancel()
            try:
                await heartbeat_task
            except asyncio.CancelledError:
                pass
            if self._peers is not None:
                self._peers.close()
            control.close()
            server.close()
            await server.wait_closed()

    async def _control_loop(self, control: FrameStream) -> None:
        spec = self.spec
        frame = await control.recv()
        if frame is None:
            return  # trial torn down before it started
        if frame.get("t") != "peers":
            raise WireError(f"expected peers frame, got {frame!r}")
        ports = {
            int(u): int(p)
            for u, p in frame["ports"].items()  # type: ignore[union-attr]
        }
        self._peers = PeerBook(spec.host, ports)
        while True:
            frame = await control.recv()
            if frame is None:
                return  # coordinator gone; nothing more to do
            tag = frame.get("t")
            if tag == "round":
                await self._run_round(control, frame)
            elif tag == "stop":
                await self._finish(control, frame)
                return
            else:
                raise WireError(f"unexpected control frame {frame!r}")

    async def _run_round(
        self, control: FrameStream, frame: Dict[str, Any]
    ) -> None:
        spec = self.spec
        runtime = self.runtime
        peers = self._peers
        assert peers is not None
        round_ = int(frame["r"])
        expect = int(frame["expect"])
        entries = await self.inbox.take(round_, expect, spec.round_timeout)
        deliveries = [
            Delivery(src, message, round_) for src, message in entries
        ]
        if runtime.should_step(round_, bool(deliveries)):
            runtime.step(round_, deliveries)
        envelopes = runtime.transmit(round_)
        crash_raw = frame.get("crash")
        filter_: Optional[DeliveryFilter] = (
            DeliveryFilter.from_dict(crash_raw)  # type: ignore[arg-type]
            if crash_raw is not None
            else None
        )
        sent: List[List[Any]] = []
        for envelope in envelopes:
            kept = True if filter_ is None else filter_.keep(envelope)
            if kept:
                # Best effort: a dead destination still counts as a model
                # send (the accountant classifies it expired).
                await peers.send(
                    envelope.dst,
                    {
                        "t": "m",
                        "ar": round_ + 1,
                        "src": envelope.src,
                        "k": envelope.message.kind,
                        "f": list(envelope.message.fields),
                    },
                )
            sent.append(
                [envelope.dst, envelope.message.kind, envelope.message.bits, kept]
            )
        report: Dict[str, Any] = {
            "t": "report",
            "r": round_,
            "sent": sent,
            "next_wake": runtime.next_wake,
            "backlog": runtime.backlog,
            "halted": runtime.halted,
        }
        if filter_ is not None:
            # Scripted victim: freeze the final outputs into the report —
            # SIGKILL lands right after the coordinator reads it.
            report["outputs"] = snapshot_outputs(spec, runtime.protocol)
            runtime.discard_backlog()
        await control.send(report)

    async def _finish(
        self, control: FrameStream, frame: Dict[str, Any]
    ) -> None:
        spec = self.spec
        last_round = int(frame["last_round"])
        expect_total = int(frame["expect_total"])
        await self.inbox.wait_total(expect_total, spec.round_timeout)
        self.runtime.stop(last_round)
        peers = self._peers
        await control.send(
            {
                "t": "bye",
                "outputs": snapshot_outputs(spec, self.runtime.protocol),
                "received": self.inbox.total_received,
                "frames_sent": peers.frames_sent if peers is not None else 0,
            }
        )


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.net.node",
        description="one wire-trial node process (spawned by the driver)",
    )
    parser.add_argument("--node-id", type=int, required=True)
    parser.add_argument(
        "--coord", required=True, help="coordinator address, HOST:PORT"
    )
    parser.add_argument(
        "--spec", required=True, help="WireSpec as a JSON object"
    )
    args = parser.parse_args(argv)
    spec = WireSpec.from_dict(json.loads(args.spec))
    host, port = split_host_port(args.coord)
    node = WireNode(args.node_id, spec)
    try:
        asyncio.run(node.run(host, port))
    except Exception:  # journaled: stderr is the per-node journal
        traceback.print_exc(file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
