"""Trial drivers: real node processes over TCP, and an in-process twin.

:func:`run_wire_trial` is the headline entry point.  It binds the
coordinator's listening socket, spawns one ``python -m repro.net.node``
process per model node (stderr redirected into a per-node journal file),
runs the :class:`~repro.net.rounds.WireCoordinator` under the spec's
overall ``trial_timeout``, and **always** tears the fleet down — a wire
trial ends in a result or a journalled failure, never a hang or an
orphaned process.  The result carries the same :class:`Metrics` object
and canonical outcome dict the sim runners produce, which is what the
parity oracle diffs.

:func:`run_loopback_trial` is the transport-free twin: the same
:class:`~repro.sim.adapter.NodeRuntime` per node and the same
:class:`~repro.net.rounds.RoundAccountant`, with message passing done by
plain dict shuffling in one process.  It exercises every accounting and
canonicalisation path of the wire backend at sim speed, so the tier-1
test suite can sweep the full parity grid without paying for sockets and
process spawns; the socket tests then only need to cover the transport
itself.

Journal layout (``journal_dir``)::

    node-<u>.log        per-node stderr (tracebacks, interpreter noise)
    coordinator.jsonl   one JSON object per control-plane event
    result.json         the trial verdict, metrics, and outcome
"""

from __future__ import annotations

import asyncio
import json
import os
import socket
import subprocess
import sys
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import IO, Any, Dict, List, Optional, Tuple

from ..errors import WireError
from ..sim.message import Delivery
from ..sim.metrics import Metrics
from .faults import WireFaultPlan, kill_node
from .rounds import RoundAccountant, WireCoordinator
from .spec import WireSpec, metrics_dict, snapshot_outputs, wire_outcome


@dataclass
class WireTrialResult:
    """Outcome of one wire (or loopback) trial.

    ``ok`` is the *system* verdict — the trial ran to completion and all
    cross-checks held.  The *protocol* verdict lives in
    ``outcome["success"]``, same as in the sim: a scripted run where the
    protocol loses is still a successful trial.
    """

    ok: bool
    reason: str
    spec: WireSpec
    backend: str
    metrics: Optional[Metrics] = None
    outcome: Optional[Dict[str, object]] = None
    crashed: Dict[int, int] = field(default_factory=dict)
    rounds: int = 0
    horizon: int = 0
    journal_dir: Optional[str] = None
    frames: Dict[int, Dict[str, int]] = field(default_factory=dict)

    def metrics_dict(self) -> Optional[Dict[str, object]]:
        return metrics_dict(self.metrics) if self.metrics is not None else None

    def to_dict(self) -> Dict[str, object]:
        return {
            "ok": self.ok,
            "reason": self.reason,
            "backend": self.backend,
            "spec": self.spec.to_dict(),
            "metrics": self.metrics_dict(),
            "outcome": self.outcome,
            "crashed": dict(self.crashed),
            "rounds": self.rounds,
            "horizon": self.horizon,
            "journal_dir": self.journal_dir,
            "frames": {str(u): f for u, f in sorted(self.frames.items())},
        }


def _source_root() -> Path:
    """The directory to put on the node processes' ``PYTHONPATH``."""
    import repro

    return Path(repro.__file__).resolve().parents[1]


def _spawn_node(
    node_id: int,
    spec_json: str,
    coord: str,
    journal_dir: Path,
) -> "Tuple[subprocess.Popen[bytes], IO[bytes]]":
    log = open(journal_dir / f"node-{node_id}.log", "wb")
    env = dict(os.environ)
    env["PYTHONPATH"] = str(_source_root()) + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.net.node",
            "--node-id",
            str(node_id),
            "--coord",
            coord,
            "--spec",
            spec_json,
        ],
        stdout=log,
        stderr=subprocess.STDOUT,
        env=env,
    )
    return proc, log


def run_wire_trial(
    spec: WireSpec,
    *,
    journal_dir: Optional[str] = None,
    kill_after: Optional[Tuple[int, int]] = None,
) -> WireTrialResult:
    """Run one real-network trial: ``n`` OS processes, TCP, SIGKILLs.

    Never raises for trial-level faults and never hangs: system failures
    (including an exhausted ``trial_timeout``) come back as a
    ``WireTrialResult`` with ``ok=False`` and the journals intact.
    """
    spec.validate()
    journal_path = Path(
        journal_dir
        if journal_dir is not None
        else tempfile.mkdtemp(prefix="repro-wire-")
    )
    journal_path.mkdir(parents=True, exist_ok=True)

    server_socket = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    server_socket.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    server_socket.bind((spec.host, 0))
    server_socket.listen(spec.n)
    coord = f"{spec.host}:{server_socket.getsockname()[1]}"

    events: List[Dict[str, Any]] = []
    procs: "Dict[int, subprocess.Popen[bytes]]" = {}
    logs: List[IO[bytes]] = []
    spec_json = json.dumps(spec.to_dict(), separators=(",", ":"))
    coordinator = WireCoordinator(
        spec,
        kill=lambda u: kill_node(procs[u]),
        journal=events.append,
        kill_after=kill_after,
    )
    result = WireTrialResult(
        ok=False,
        reason="trial did not start",
        spec=spec,
        backend="wire",
        journal_dir=str(journal_path),
    )
    try:
        for u in range(spec.n):
            proc, log = _spawn_node(u, spec_json, coord, journal_path)
            procs[u] = proc
            logs.append(log)
        try:
            summary = asyncio.run(
                asyncio.wait_for(
                    coordinator.run(server_socket), timeout=spec.trial_timeout
                )
            )
        except WireError as exc:
            result.reason = str(exc)
        except asyncio.TimeoutError:
            result.reason = (
                f"trial timed out after {spec.trial_timeout:.1f}s "
                "(coordinator deadline)"
            )
        except Exception as exc:  # noqa: BLE001 — journalled, not hidden
            result.reason = f"{type(exc).__name__}: {exc}"
        else:
            result.ok = True
            result.reason = ""
            result.metrics = summary.metrics
            result.outcome = summary.outcome
            result.crashed = summary.crashed
            result.rounds = summary.rounds
            result.horizon = summary.horizon
            result.frames = summary.frames
        if not result.ok:
            result.crashed = dict(coordinator.accountant.crashed)
            result.rounds = coordinator.accountant.metrics.rounds_executed
    finally:
        for proc in procs.values():
            kill_node(proc)
        for proc in procs.values():
            try:
                proc.wait(timeout=10)
            except subprocess.TimeoutExpired:
                pass  # kernel will reap it with us; journals already flushed
        for log in logs:
            log.close()
        try:
            server_socket.close()
        except OSError:
            pass
        _write_journals(journal_path, events, result)
    return result


def _write_journals(
    journal_path: Path, events: List[Dict[str, Any]], result: WireTrialResult
) -> None:
    with open(journal_path / "coordinator.jsonl", "w", encoding="utf-8") as fh:
        for event in events:
            fh.write(json.dumps(event, separators=(",", ":")) + "\n")
    with open(journal_path / "result.json", "w", encoding="utf-8") as fh:
        json.dump(result.to_dict(), fh, indent=2, sort_keys=True)
        fh.write("\n")


# ----------------------------------------------------------------------
# The in-process twin
# ----------------------------------------------------------------------


def run_loopback_trial(spec: WireSpec) -> WireTrialResult:
    """The wire backend minus the wires: same runtimes, same accountant,
    message passing by dict.  Raises ``WireError`` on internal
    inconsistencies (there is no journal to fail into)."""
    spec.validate()
    plan = WireFaultPlan.from_script(spec.script)
    accountant = RoundAccountant(spec.n, plan)
    runtimes = {u: spec.make_runtime(u) for u in range(spec.n)}
    outputs: Dict[int, Dict[str, Any]] = {}
    # mail[u]: data frames deposited for u's next round, as (src, Message).
    mail: Dict[int, List[Any]] = {u: [] for u in range(spec.n)}
    horizon = spec.horizon()
    for round_ in range(1, horizon + 1):
        if accountant.quiescent_at(round_):
            break
        expects, crashers = accountant.begin_round(round_)
        next_mail: Dict[int, List[Any]] = {u: [] for u in range(spec.n)}
        reports: Dict[int, Dict[str, Any]] = {}
        for u in accountant.alive():
            runtime = runtimes[u]
            entries = mail[u]
            mail[u] = []
            if len(entries) != expects[u]:
                raise WireError(
                    f"loopback: node {u} holds {len(entries)} frames for "
                    f"round {round_}, accountant expected {expects[u]}"
                )
            entries.sort(key=lambda entry: entry[0])
            deliveries = [
                Delivery(src, message, round_) for src, message in entries
            ]
            if runtime.should_step(round_, bool(deliveries)):
                runtime.step(round_, deliveries)
            envelopes = runtime.transmit(round_)
            filter_ = crashers.get(u)
            sent: List[List[Any]] = []
            for envelope in envelopes:
                kept = True if filter_ is None else filter_.keep(envelope)
                if kept:
                    next_mail[envelope.dst].append(
                        (envelope.src, envelope.message)
                    )
                sent.append(
                    [
                        envelope.dst,
                        envelope.message.kind,
                        envelope.message.bits,
                        kept,
                    ]
                )
            reports[u] = {
                "r": round_,
                "sent": sent,
                "next_wake": runtime.next_wake,
                "backlog": runtime.backlog,
                "halted": runtime.halted,
            }
            if filter_ is not None:
                outputs[u] = snapshot_outputs(spec, runtime.protocol)
                runtime.discard_backlog()
        accountant.finish_round(round_, reports)
        # Frames addressed to a receiver that just crashed vanish on the
        # wire too (the corpse's listener is gone).
        for u in accountant.crashed:
            next_mail[u] = []
        mail = next_mail
    metrics = accountant.finalize(horizon)
    for u in accountant.alive():
        runtimes[u].stop(metrics.rounds_executed)
        outputs[u] = snapshot_outputs(spec, runtimes[u].protocol)
    outcome = wire_outcome(spec, outputs, accountant.crashed, metrics)
    return WireTrialResult(
        ok=True,
        reason="",
        spec=spec,
        backend="loopback",
        metrics=metrics,
        outcome=outcome,
        crashed=dict(accountant.crashed),
        rounds=metrics.rounds_executed,
        horizon=horizon,
    )
