"""Real-network execution backend: the model, on actual sockets.

The sim (:mod:`repro.sim`) executes the paper's synchronous crash-fault
model as a discrete-event loop; this package executes the *same protocol
objects* as one OS process per node over localhost TCP, with heartbeat
failure detection, SIGKILL fault injection driven by chaos
:class:`~repro.chaos.script.CrashScript`\\ s, and a coordinator that
replays the engine's accounting from ground-truth node reports.

The headline artefact is the parity oracle (:mod:`repro.net.parity`):
for the same ``(spec, seed, script)``, wire message counts and outcomes
must equal the sim **exactly** — the real network is a measurement of
the model, not an approximation of it.

Modules:

* :mod:`~repro.net.spec` — :class:`WireSpec` and the shared sim/wire
  vocabulary (canonical outcomes, metrics dicts, the sim reference run);
* :mod:`~repro.net.comm` — length-prefixed JSON frames over asyncio TCP;
* :mod:`~repro.net.heartbeat` — heartbeat sender + timeout failure
  detector (injectable clock);
* :mod:`~repro.net.faults` — CrashScript-driven SIGKILL injection and
  partial final-round delivery;
* :mod:`~repro.net.rounds` — the round-barrier coordinator and the
  engine-exact :class:`RoundAccountant`;
* :mod:`~repro.net.node` — the per-node process entrypoint
  (``python -m repro.net.node``);
* :mod:`~repro.net.driver` — :func:`run_wire_trial` /
  :func:`run_loopback_trial`, journals, teardown guarantees;
* :mod:`~repro.net.parity` — the sim-vs-wire oracle and the parity grid.
"""

from .driver import WireTrialResult, run_loopback_trial, run_wire_trial
from .parity import (
    PARITY_MODES,
    ParityReport,
    default_script,
    parity_grid,
    parity_specs,
    run_parity_trial,
)
from .spec import WIRE_PROTOCOLS, WireSpec

__all__ = [
    "WIRE_PROTOCOLS",
    "PARITY_MODES",
    "WireSpec",
    "WireTrialResult",
    "ParityReport",
    "default_script",
    "parity_grid",
    "parity_specs",
    "run_loopback_trial",
    "run_parity_trial",
    "run_wire_trial",
]
