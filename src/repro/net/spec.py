"""Wire-trial specification and the sim/wire shared vocabulary.

A :class:`WireSpec` pins everything a real-network trial needs — protocol,
size, seed, input pattern, fault script, and the transport tunables — and
is the unit the parity oracle quantifies over: for one ``(spec, seed,
script)`` the simulator and the wire backend must produce identical
message accounting and identical outcomes.

To make "identical" checkable, this module also owns:

* protocol construction (:meth:`WireSpec.make_runtime`) — the *same*
  protocol classes, parameters, schedules, and per-node RNG streams the
  sim backends use, behind the :class:`~repro.sim.adapter.NodeRuntime`
  seam;
* the sim reference run (:func:`sim_reference`) — the discrete-round
  engine driven through the public runners;
* outcome canonicalisation (:func:`canonical_outcome`,
  :func:`wire_outcome`) — both sides reduce to one plain-dict shape, and
  the wire side reuses the *runner's own evaluators* over reconstructed
  protocol outputs, so the success predicate cannot drift between
  backends;
* :func:`metrics_dict` — the full accounting surface that parity
  compares (not just headline totals: per-round, per-kind, and per-node
  attribution too).

The spec (JSON-serialisable via :meth:`to_dict`/:meth:`from_dict`) is
handed verbatim to every node process, which rebuilds its runtime from
``(spec, node_id)`` alone — determinism across process boundaries comes
from :mod:`repro.rng`'s hash-derived streams.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from types import SimpleNamespace
from typing import Any, Dict, List, Mapping, Optional, Tuple

from ..chaos.script import CrashScript
from ..core.runner import (
    _evaluate_agreement,
    _evaluate_leader_election,
    make_inputs,
)
from ..core.schedule import AgreementSchedule, LeaderElectionSchedule
from ..errors import ConfigurationError
from ..faults.strategies import named_adversary
from ..params import CongestBudget, Params
from ..rng import RngFactory
from ..sim.adapter import NodeRuntime
from ..sim.metrics import Metrics
from ..sim.network import RunResult
from ..sim.node import Protocol
from ..types import Decision, Knowledge, NodeState

#: Protocols the wire backend can run (same logic objects as the sim).
WIRE_PROTOCOLS = ("election", "agreement", "flooding")


@dataclass(frozen=True)
class WireSpec:
    """Everything one wire trial needs, JSON-round-trippable."""

    protocol: str
    n: int
    alpha: float = 0.75
    seed: int = 0
    inputs: str = "mixed"
    faulty_count: Optional[int] = None
    extra_rounds: int = 0
    script: Optional[CrashScript] = None
    # -- transport tunables (no effect on accounting or outcomes) -------
    host: str = "127.0.0.1"
    heartbeat_interval: float = 0.1
    suspicion_threshold: int = 30
    round_timeout: float = 30.0
    setup_timeout: float = 20.0
    trial_timeout: float = 180.0

    def __post_init__(self) -> None:
        if self.protocol not in WIRE_PROTOCOLS:
            raise ConfigurationError(
                f"unknown wire protocol {self.protocol!r}; "
                f"choose from {WIRE_PROTOCOLS}"
            )
        if self.heartbeat_interval <= 0 or self.suspicion_threshold < 2:
            raise ConfigurationError(
                "heartbeat_interval must be positive and "
                "suspicion_threshold >= 2"
            )

    # ------------------------------------------------------------------
    # Derived model quantities (must match the sim runners exactly)
    # ------------------------------------------------------------------

    def params(self) -> Params:
        """Paper parameters (election/agreement only)."""
        return Params(n=self.n, alpha=self.alpha)

    def resolved_faulty_count(self) -> int:
        """The fault budget the sim runner would use for this spec."""
        if self.faulty_count is not None:
            return self.faulty_count
        if self.protocol == "flooding":
            return len(self.script.faulty) if self.script else 0
        return self.params().max_faulty

    def horizon(self) -> int:
        """The nominal round count the sim runner would request."""
        if self.protocol == "election":
            schedule = LeaderElectionSchedule.from_params(self.params())
            return schedule.last_round + self.extra_rounds
        if self.protocol == "agreement":
            schedule = AgreementSchedule.from_params(self.params())
            return schedule.last_round + self.extra_rounds
        # flooding: f + 1 protocol rounds, run for two extra delivery rounds
        return self.resolved_faulty_count() + 1 + 2 + self.extra_rounds

    def knowledge(self) -> Knowledge:
        """Knowledge model of the protocol (flooding assumes KT1)."""
        return Knowledge.KT1 if self.protocol == "flooding" else Knowledge.KT0

    def input_bits(self) -> Optional[List[int]]:
        """Agreement/flooding input vector (None for election)."""
        if self.protocol == "election":
            return None
        return make_inputs(self.n, self.inputs, self.seed)

    def adversary(self) -> Any:
        """The adversary object the sim reference run uses."""
        if self.script is not None:
            return self.script
        return named_adversary("none", self.horizon())

    def faulty_set(self) -> Tuple[int, ...]:
        """Static faulty set (scripted runs only; empty otherwise)."""
        return self.script.faulty if self.script else ()

    def validate(self) -> None:
        """Reject specs the wire backend cannot replay round-faithfully."""
        # Params strictness (alpha floor, n >= 8) for the paper protocols.
        if self.protocol != "flooding":
            self.params()
        script = self.script
        if script is None:
            return
        if script.byzantine.modes:
            raise ConfigurationError(
                "wire backend replays crash faults only; the script has a "
                "Byzantine plan"
            )
        if not script.delivery.is_synchronous:
            raise ConfigurationError(
                "wire backend is round-synchronous; the script has a "
                f"delay-{script.delivery.max_delay} delivery schedule"
            )
        faulty = set(script.faulty)
        for node, (round_, _) in script.crashes.items():
            if node not in faulty:
                raise ConfigurationError(
                    f"script crashes node {node} outside its faulty set"
                )
            if not 0 <= node < self.n:
                raise ConfigurationError(
                    f"script crashes node {node}, but n={self.n}"
                )
            if round_ < 1:
                raise ConfigurationError(
                    f"script crashes node {node} in round {round_} (< 1)"
                )
        if len(faulty) > self.resolved_faulty_count():
            raise ConfigurationError(
                f"script has {len(faulty)} faulty nodes; the budget is "
                f"{self.resolved_faulty_count()}"
            )

    # ------------------------------------------------------------------
    # Node-side construction
    # ------------------------------------------------------------------

    def make_protocol(self, node_id: int) -> Protocol:
        """Build node ``node_id``'s protocol exactly as the runner does."""
        if self.protocol == "election":
            from ..core.leader_election import LeaderElectionProtocol

            params = self.params()
            schedule = LeaderElectionSchedule.from_params(params)
            return LeaderElectionProtocol(node_id, params, schedule)
        if self.protocol == "agreement":
            from ..core.agreement import AgreementProtocol

            params = self.params()
            schedule = AgreementSchedule.from_params(params)
            bits = self.input_bits()
            assert bits is not None
            return AgreementProtocol(node_id, params, schedule, bits[node_id])
        from ..baselines.flooding import FloodingConsensusProtocol

        bits = self.input_bits()
        assert bits is not None
        return FloodingConsensusProtocol(
            node_id, self.n, bits[node_id], self.resolved_faulty_count() + 1
        )

    def make_runtime(self, node_id: int) -> NodeRuntime:
        """Build node ``node_id``'s engine-faithful runtime."""
        return NodeRuntime(
            node_id,
            self.n,
            self.make_protocol(node_id),
            RngFactory(self.seed).node_stream(node_id),
            knowledge=self.knowledge(),
            congest=CongestBudget(self.n),
        )

    # ------------------------------------------------------------------
    # JSON round-trip (spec travels to the node processes as argv)
    # ------------------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        data: Dict[str, object] = {
            "protocol": self.protocol,
            "n": self.n,
            "alpha": self.alpha,
            "seed": self.seed,
            "inputs": self.inputs,
            "faulty_count": self.faulty_count,
            "extra_rounds": self.extra_rounds,
            "host": self.host,
            "heartbeat_interval": self.heartbeat_interval,
            "suspicion_threshold": self.suspicion_threshold,
            "round_timeout": self.round_timeout,
            "setup_timeout": self.setup_timeout,
            "trial_timeout": self.trial_timeout,
        }
        if self.script is not None:
            data["script"] = self.script.to_dict()
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "WireSpec":
        raw_script = data.get("script")
        script = (
            CrashScript.from_dict(raw_script)  # type: ignore[arg-type]
            if raw_script is not None
            else None
        )
        faulty_count = data.get("faulty_count")
        return cls(
            protocol=str(data["protocol"]),
            n=int(data["n"]),  # type: ignore[arg-type]
            alpha=float(data.get("alpha", 0.75)),  # type: ignore[arg-type]
            seed=int(data.get("seed", 0)),  # type: ignore[arg-type]
            inputs=str(data.get("inputs", "mixed")),
            faulty_count=(
                int(faulty_count) if faulty_count is not None else None  # type: ignore[arg-type]
            ),
            extra_rounds=int(data.get("extra_rounds", 0)),  # type: ignore[arg-type]
            script=script,
            host=str(data.get("host", "127.0.0.1")),
            heartbeat_interval=float(data.get("heartbeat_interval", 0.1)),  # type: ignore[arg-type]
            suspicion_threshold=int(data.get("suspicion_threshold", 30)),  # type: ignore[arg-type]
            round_timeout=float(data.get("round_timeout", 30.0)),  # type: ignore[arg-type]
            setup_timeout=float(data.get("setup_timeout", 20.0)),  # type: ignore[arg-type]
            trial_timeout=float(data.get("trial_timeout", 180.0)),  # type: ignore[arg-type]
        )

    def with_(self, **changes: object) -> "WireSpec":
        """Copy with fields replaced (mirrors ``Params.with_``)."""
        return replace(self, **changes)  # type: ignore[arg-type]


# ----------------------------------------------------------------------
# Protocol-output snapshots (what a node reports about itself)
# ----------------------------------------------------------------------


def snapshot_outputs(spec: WireSpec, protocol: Protocol) -> Dict[str, object]:
    """A node's protocol outputs as a JSON-safe dict.

    For crashed nodes this is taken in their crash round, *after* the
    step/transmit phases — the protocol object never runs again, so the
    snapshot equals its end-of-run state in the sim.
    """
    if spec.protocol == "election":
        return {
            "rank": protocol.rank,  # type: ignore[attr-defined]
            "is_candidate": protocol.is_candidate,  # type: ignore[attr-defined]
            "state": protocol.state.name,  # type: ignore[attr-defined]
            "leader_rank": protocol.leader_rank,  # type: ignore[attr-defined]
        }
    if spec.protocol == "agreement":
        return {
            "is_candidate": protocol.is_candidate,  # type: ignore[attr-defined]
            "decision": protocol.decision.name,  # type: ignore[attr-defined]
        }
    return {
        "decided": protocol.decided,  # type: ignore[attr-defined]
        "estimate": protocol.estimate,  # type: ignore[attr-defined]
    }


def _fake_protocol(spec: WireSpec, outputs: Mapping[str, object]) -> object:
    """Rehydrate a snapshot into the attribute surface the evaluators read."""
    if spec.protocol == "election":
        rank = outputs["rank"]
        leader_rank = outputs["leader_rank"]
        return SimpleNamespace(
            rank=int(rank) if rank is not None else None,  # type: ignore[arg-type]
            is_candidate=bool(outputs["is_candidate"]),
            state=NodeState[str(outputs["state"])],
            leader_rank=(
                int(leader_rank) if leader_rank is not None else None  # type: ignore[arg-type]
            ),
        )
    if spec.protocol == "agreement":
        return SimpleNamespace(
            is_candidate=bool(outputs["is_candidate"]),
            decision=Decision[str(outputs["decision"])],
        )
    decided = outputs["decided"]
    return SimpleNamespace(
        decided=int(decided) if decided is not None else None,  # type: ignore[arg-type]
        estimate=int(outputs["estimate"]),  # type: ignore[arg-type]
    )


# ----------------------------------------------------------------------
# Canonical outcomes — one dict shape for both backends
# ----------------------------------------------------------------------


def canonical_outcome(spec: WireSpec, result: object) -> Dict[str, object]:
    """Reduce a runner result / baseline outcome to the parity dict."""
    if spec.protocol == "election":
        return {
            "protocol": "election",
            "success": result.success,  # type: ignore[attr-defined]
            "strict_success": result.strict_success,  # type: ignore[attr-defined]
            "leader_node": result.leader_node,  # type: ignore[attr-defined]
            "elected_alive": list(result.elected_alive),  # type: ignore[attr-defined]
            "elected_crashed": list(result.elected_crashed),  # type: ignore[attr-defined]
            "candidates_all": list(result.candidates_all),  # type: ignore[attr-defined]
            "candidates_alive": list(result.candidates_alive),  # type: ignore[attr-defined]
            "beliefs": dict(result.beliefs),  # type: ignore[attr-defined]
            "ranks": dict(result.ranks),  # type: ignore[attr-defined]
            "crashed": dict(result.crashed),  # type: ignore[attr-defined]
            "faulty": sorted(result.faulty),  # type: ignore[attr-defined]
        }
    if spec.protocol == "agreement":
        return {
            "protocol": "agreement",
            "success": result.success,  # type: ignore[attr-defined]
            "decision": result.decision,  # type: ignore[attr-defined]
            "decisions": {
                u: d.name
                for u, d in sorted(result.decisions.items())  # type: ignore[attr-defined]
            },
            "candidates_all": list(result.candidates_all),  # type: ignore[attr-defined]
            "candidates_alive": list(result.candidates_alive),  # type: ignore[attr-defined]
            "crashed": dict(result.crashed),  # type: ignore[attr-defined]
            "faulty": sorted(result.faulty),  # type: ignore[attr-defined]
        }
    return {
        "protocol": "flooding",
        "success": result.success,  # type: ignore[attr-defined]
        "decisions": dict(sorted(result.decisions.items())),  # type: ignore[attr-defined]
        "crashed": dict(result.crashed),  # type: ignore[attr-defined]
        "faulty": sorted(result.faulty),  # type: ignore[attr-defined]
    }


def wire_outcome(
    spec: WireSpec,
    outputs: Mapping[int, Mapping[str, object]],
    crashed: Mapping[int, int],
    metrics: Metrics,
) -> Dict[str, object]:
    """Evaluate wire-gathered protocol outputs with the sim's evaluators.

    Builds a faithful :class:`RunResult` over rehydrated protocol
    snapshots and hands it to the *same* evaluation functions the sim
    runners use, so the success predicates are shared by construction.
    """
    missing = [u for u in range(spec.n) if u not in outputs]
    if missing:
        raise ConfigurationError(
            f"wire outcome needs outputs from every node; missing {missing}"
        )
    protocols = [_fake_protocol(spec, outputs[u]) for u in range(spec.n)]
    run = RunResult(
        n=spec.n,
        protocols=protocols,  # type: ignore[arg-type]
        metrics=metrics,
        trace=None,
        faulty=set(spec.faulty_set()),
        crashed=dict(crashed),
        rounds=metrics.rounds,
        horizon=metrics.horizon,
        max_delay=0,
    )
    if spec.protocol == "election":
        result: object = _evaluate_leader_election(
            run, spec.params(), spec.seed, spec.adversary()
        )
    elif spec.protocol == "agreement":
        bits = spec.input_bits()
        assert bits is not None
        result = _evaluate_agreement(
            run, spec.params(), spec.seed, spec.adversary(), bits
        )
    else:
        result = _flooding_outcome(spec, run)
    return canonical_outcome(spec, result)


def _flooding_outcome(spec: WireSpec, run: RunResult) -> object:
    from ..baselines.base import BaselineOutcome, evaluate_explicit_agreement

    bits = spec.input_bits()
    assert bits is not None
    outcome = BaselineOutcome(
        protocol="flooding",
        n=spec.n,
        faulty=run.faulty,
        crashed=run.crashed,
        metrics=run.metrics,
        inputs=list(bits),
    )
    for u in run.alive:
        decided = run.protocol(u).decided  # type: ignore[attr-defined]
        if decided is not None:
            outcome.decisions[u] = decided
    outcome.success = evaluate_explicit_agreement(outcome, run.alive)
    return outcome


# ----------------------------------------------------------------------
# The sim reference run
# ----------------------------------------------------------------------


def sim_reference(
    spec: WireSpec, backend: str = "ref"
) -> Tuple[Metrics, Dict[str, object]]:
    """Run ``spec`` on the discrete-round simulator (the parity baseline)."""
    if spec.protocol == "election":
        from ..core.runner import elect_leader

        result: object = elect_leader(
            n=spec.n,
            alpha=spec.alpha,
            seed=spec.seed,
            adversary=spec.adversary(),
            faulty_count=spec.resolved_faulty_count(),
            extra_rounds=spec.extra_rounds,
            backend=backend,
        )
    elif spec.protocol == "agreement":
        from ..core.runner import agree

        result = agree(
            n=spec.n,
            alpha=spec.alpha,
            inputs=spec.inputs,
            seed=spec.seed,
            adversary=spec.adversary(),
            faulty_count=spec.resolved_faulty_count(),
            extra_rounds=spec.extra_rounds,
            backend=backend,
        )
    else:
        from ..baselines.flooding import flooding_consensus

        bits = spec.input_bits()
        assert bits is not None
        result = flooding_consensus(
            spec.n,
            bits,
            seed=spec.seed,
            adversary=spec.script,
            faulty_count=spec.resolved_faulty_count(),
            backend=backend,
        )
    return result.metrics, canonical_outcome(spec, result)  # type: ignore[attr-defined]


def metrics_dict(metrics: Metrics) -> Dict[str, object]:
    """The full accounting surface the parity oracle compares."""
    return {
        "messages_sent": metrics.messages_sent,
        "messages_delivered": metrics.messages_delivered,
        "messages_dropped": metrics.messages_dropped,
        "messages_expired": metrics.messages_expired,
        "bits_sent": metrics.bits_sent,
        "rounds": metrics.rounds,
        "horizon": metrics.horizon,
        "rounds_executed": metrics.rounds_executed,
        "crashes": metrics.crashes,
        "per_round_messages": list(metrics.per_round_messages),
        "per_kind_messages": dict(sorted(metrics.per_kind_messages.items())),
        "per_node_sent": dict(sorted(metrics.per_node_sent.items())),
        "delivery_latency": dict(sorted(metrics.delivery_latency.items())),
    }
