"""Round-synchronous coordination and engine-exact accounting over TCP.

Two halves, mirroring the split in :mod:`repro.sim.adapter`:

:class:`RoundAccountant`
    The *global* half of :class:`~repro.sim.network.Network`'s round loop,
    replayed from per-node reports instead of in-process state.  It owns
    the run's :class:`~repro.sim.metrics.Metrics` and reproduces, phase by
    phase, exactly what the engine would have counted for the same
    ``(spec, seed, script)``: send attribution in ascending sender order,
    crash bookkeeping before delivery classification, the drop / expire /
    deliver trichotomy in the engine's precedence (filter drops are
    checked before dead-receiver expiry), and the top-of-round quiescence
    fast-forward.  The parity oracle works because this replay is exact —
    the wire backend does not *approximate* the sim's accounting, it
    recomputes it from ground-truth reports.

:class:`WireCoordinator`
    The asyncio control plane: accepts one control connection per node
    process, hands out the peer port map, drives the round barrier
    (``round`` frame out, ``report`` frame in, per round, per alive
    node), injects scripted SIGKILLs between a victim's crash-round
    report and the next round, and runs the heartbeat
    :class:`~repro.net.heartbeat.FailureDetector` so an *unscripted*
    death turns into a :class:`~repro.errors.WireError` within one
    detection bound instead of a hung barrier.

The round barrier is what makes the wire run round-faithful: no node
receives the round-``r+1`` control frame until every alive node's
round-``r`` report is in, so a wire round can never interleave with its
neighbours even though the transport is fully asynchronous underneath.

Trust model: nodes report what they sent (the coordinator cannot observe
``n^2`` data edges), but every claim that affects accounting is
cross-checked — crash-round kept-flags are replayed against the script's
pure ``(src, dst)`` filter, and end-of-run received totals must equal the
accountant's per-receiver delivered count before a trial passes.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from ..errors import WireError
from ..sim.metrics import Metrics
from ..sim.node import NEVER
from .comm import FrameStream
from .faults import WireFaultPlan, check_report_against_filter
from .heartbeat import HEARTBEAT_FRAME, FailureDetector
from .spec import WireSpec, metrics_dict, wire_outcome

#: Queue-poll granularity while awaiting a frame (also the detector's
#: effective polling resolution); bounded so tiny heartbeat intervals in
#: tests do not busy-poll.
_POLL_FLOOR = 0.02
_POLL_CEIL = 0.25

#: A report's per-message entry: ``[dst, kind, bits, kept]``.
SentEntry = List[Any]


class RoundAccountant:
    """Engine-exact global accounting, replayed from node reports."""

    def __init__(self, n: int, plan: WireFaultPlan) -> None:
        self.n = n
        self.plan = plan
        self.metrics = Metrics()
        self.crashed: Dict[int, int] = {}
        #: Engine wake schedule: every node starts awake in round 1.
        self.next_wake: Dict[int, int] = {u: 1 for u in range(n)}
        #: Untransmitted queue depth, as last reported.
        self.backlog: Dict[int, int] = {u: 0 for u in range(n)}
        #: Deliveries deposited last round, awaiting the next round's
        #: inbox swap (the engine's ``_inboxes`` as counts).
        self.expect: Dict[int, int] = {u: 0 for u in range(n)}
        #: Cumulative deliveries per receiver (the end-of-run frame-count
        #: cross-check compares node-side received totals against this).
        self.delivered_to: Dict[int, int] = {u: 0 for u in range(n)}
        self._crashers: Dict[int, Any] = {}

    # ------------------------------------------------------------------

    def alive(self) -> List[int]:
        return [u for u in range(self.n) if u not in self.crashed]

    def quiescent_at(self, round_: int) -> bool:
        """The engine's top-of-round fast-forward test.

        True when no future activity is possible: no alive backlog, no
        pending deliveries, no live wake entry, and the fault plan has
        nothing left to do (``Network.run`` requires ``adversary.done``
        too — a pending crash is future activity even in a silent net).
        """
        for u in self.alive():
            if self.backlog[u] or self.expect[u]:
                return False
            if self.next_wake[u] != NEVER:
                return False
        return self.plan.done(round_, self.crashed)

    def begin_round(self, round_: int) -> Tuple[Dict[int, int], Dict[int, Any]]:
        """Open round ``round_``; return (deliveries due, scripted crashers).

        Mirrors ``Network._execute_round``'s entry: ``begin_round`` on the
        metrics and the inbox swap (pending deliveries are consumed here —
        they reach their receivers in this round's step phase).
        """
        self.metrics.begin_round()
        expects = self.expect
        self.expect = {u: 0 for u in range(self.n)}
        self._crashers = self.plan.crashers_at(round_, self.crashed)
        return expects, self._crashers

    def finish_round(self, round_: int, reports: Dict[int, Dict[str, Any]]) -> None:
        """Replay the engine's transmit / crash / delivery phases.

        ``reports`` maps each alive node to its round-``round_`` report
        (``sent`` entries, post-round ``next_wake`` and ``backlog``).
        Raises :class:`WireError` on a crash-round filter divergence.
        """
        metrics = self.metrics
        # Phase 2 (transmit): account sends in ascending sender order,
        # exactly as the engine's pending-sender scan does.
        for u in sorted(reports):
            report = reports[u]
            for entry in report.get("sent", ()):
                dst, kind, bits, _kept = entry
                metrics.record_send(u, str(kind), int(bits))
            self.next_wake[u] = int(report.get("next_wake", NEVER))
            self.backlog[u] = int(report.get("backlog", 0))

        # Phase 3 (crash): mark victims before classifying deliveries —
        # the engine's delivery phase sees the *post-crash* crashed map.
        crashers = self._crashers
        for victim in crashers:
            self.crashed[victim] = round_
            metrics.record_crash()
            self.backlog[victim] = 0  # engine discards the victim's queues
            self.next_wake[victim] = NEVER

        # Phase 4 (delivery): drop / expire / deliver per wire message,
        # filter drops checked before dead-receiver expiry (engine order).
        delivered = 0
        for u in sorted(reports):
            filter_ = crashers.get(u)
            entries = reports[u].get("sent", ())
            if filter_ is not None:
                check_report_against_filter(u, round_, filter_, entries)
            for entry in entries:
                dst, _kind, _bits, kept = entry
                dst = int(dst)
                if filter_ is not None and not kept:
                    metrics.record_drop()
                elif dst in self.crashed:
                    metrics.record_expiry()
                else:
                    delivered += 1
                    self.expect[dst] += 1
                    self.delivered_to[dst] += 1
        metrics.messages_delivered += delivered
        if delivered:
            metrics.delivery_latency[1] += delivered

    def finalize(self, horizon: int) -> Metrics:
        """Close the run exactly as ``Network.run`` does."""
        self.metrics.rounds = self.metrics.rounds_executed
        self.metrics.horizon = horizon
        return self.metrics


@dataclass
class WireRunSummary:
    """What the coordinator hands back to the driver on success."""

    metrics: Metrics
    outcome: Dict[str, object]
    crashed: Dict[int, int]
    rounds: int
    horizon: int
    #: per-node frame counters from ``bye`` frames: {node: {sent, received}}.
    frames: Dict[int, Dict[str, int]] = field(default_factory=dict)

    def metrics_dict(self) -> Dict[str, object]:
        return metrics_dict(self.metrics)


class WireCoordinator:
    """Drives one wire trial's control plane over an asyncio server.

    ``kill`` is the fault injector (the driver binds it to SIGKILLing the
    node's OS process); ``journal`` receives one dict per control-plane
    event (the driver buffers them and writes JSONL after the event loop
    exits, keeping file I/O out of async code); ``kill_after`` is a test
    hook — ``(node, round)`` SIGKILLs an *unscripted* node after that
    round's barrier, which must surface via the heartbeat detector.
    """

    def __init__(
        self,
        spec: WireSpec,
        *,
        kill: Optional[Callable[[int], None]] = None,
        journal: Optional[Callable[[Dict[str, Any]], None]] = None,
        kill_after: Optional[Tuple[int, int]] = None,
    ) -> None:
        spec.validate()
        self.spec = spec
        self.plan = WireFaultPlan.from_script(spec.script)
        self.accountant = RoundAccountant(spec.n, self.plan)
        self.detector = FailureDetector(
            spec.heartbeat_interval, spec.suspicion_threshold
        )
        self._kill = kill if kill is not None else lambda node: None
        self._journal = journal if journal is not None else lambda event: None
        self._kill_after = kill_after
        self._streams: Dict[int, FrameStream] = {}
        self._queues: "Dict[int, asyncio.Queue[Dict[str, Any]]]" = {}
        self._ports: Dict[int, int] = {}
        self._eof: Set[int] = set()
        self._all_hello = asyncio.Event()
        self._poll = min(_POLL_CEIL, max(_POLL_FLOOR, spec.heartbeat_interval))
        self.outputs: Dict[int, Dict[str, Any]] = {}
        self.frames: Dict[int, Dict[str, int]] = {}

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        stream = FrameStream(reader, writer)
        try:
            hello = await stream.recv()
        except WireError:
            stream.close()
            return
        if (
            hello is None
            or hello.get("t") != "hello"
            or "node" not in hello
            or "port" not in hello
        ):
            stream.close()
            return
        node = int(hello["node"])  # type: ignore[arg-type]
        if not 0 <= node < self.spec.n or node in self._streams:
            stream.close()
            return
        self._streams[node] = stream
        self._ports[node] = int(hello["port"])  # type: ignore[arg-type]
        self._queues[node] = asyncio.Queue()
        self.detector.register(node)
        self._journal({"event": "hello", "node": node, "port": self._ports[node]})
        if len(self._streams) == self.spec.n:
            self._all_hello.set()
        await self._pump(node, stream)

    async def _pump(self, node: int, stream: FrameStream) -> None:
        """Demultiplex one node's control frames until EOF."""
        queue = self._queues[node]
        while True:
            try:
                frame = await stream.recv()
            except WireError as exc:
                await queue.put({"t": "__error__", "error": str(exc)})
                return
            if frame is None:
                self._eof.add(node)
                return
            if frame.get("t") == HEARTBEAT_FRAME:
                self.detector.beat(node)
                continue
            await queue.put(frame)

    async def _send(self, node: int, frame: Dict[str, Any]) -> bool:
        """Best-effort control send; a dead node just misses the frame
        (the detector, not the send path, decides whether that is fatal)."""
        try:
            await self._streams[node].send(frame)
            return True
        except (ConnectionError, OSError):
            return False

    async def _await_frame(
        self, node: int, kind: str, timeout: float
    ) -> Dict[str, Any]:
        """Wait for ``node``'s next ``kind`` frame, polling the detector.

        The heartbeat detector is the failure authority: a SIGKILLed
        node's EOF alone does not fail the trial — its silence does, one
        detection bound after its last beat.
        """
        loop = asyncio.get_running_loop()
        deadline = loop.time() + timeout
        queue = self._queues[node]
        while True:
            suspects = self.detector.suspects()
            if suspects:
                raise WireError(
                    f"heartbeat detector suspects node(s) {suspects} "
                    f"(silent > {self.detector.bound:.2f}s) while awaiting "
                    f"{kind!r} from node {node}"
                )
            remaining = deadline - loop.time()
            if remaining <= 0:
                closed = " (control channel closed)" if node in self._eof else ""
                raise WireError(
                    f"timed out after {timeout:.1f}s awaiting {kind!r} "
                    f"from node {node}{closed}"
                )
            try:
                frame = await asyncio.wait_for(
                    queue.get(), timeout=min(self._poll, remaining)
                )
            except asyncio.TimeoutError:
                continue
            tag = frame.get("t")
            if tag == "__error__":
                raise WireError(
                    f"node {node} control channel error: {frame.get('error')}"
                )
            if tag != kind:
                raise WireError(
                    f"node {node} sent {tag!r} while coordinator awaited "
                    f"{kind!r}: {frame!r}"
                )
            return frame

    # ------------------------------------------------------------------
    # The trial
    # ------------------------------------------------------------------

    async def run(self, server_socket: Any) -> WireRunSummary:
        """Run one wire trial to completion; raises ``WireError`` on any
        system-layer fault (never hangs past its timeouts)."""
        server = await asyncio.start_server(self._handle, sock=server_socket)
        try:
            return await self._run_trial()
        finally:
            for stream in self._streams.values():
                stream.close()
            server.close()
            await server.wait_closed()

    async def _run_trial(self) -> WireRunSummary:
        spec = self.spec
        acc = self.accountant
        try:
            await asyncio.wait_for(
                self._all_hello.wait(), timeout=spec.setup_timeout
            )
        except asyncio.TimeoutError:
            missing = sorted(set(range(spec.n)) - set(self._streams))
            raise WireError(
                f"setup timed out after {spec.setup_timeout:.1f}s; "
                f"nodes {missing} never connected"
            ) from None

        ports = {str(u): self._ports[u] for u in sorted(self._ports)}
        for u in range(spec.n):
            if not await self._send(u, {"t": "peers", "ports": ports}):
                raise WireError(f"node {u} died before the peer exchange")
        self._journal({"event": "peers", "ports": ports})

        horizon = spec.horizon()
        for round_ in range(1, horizon + 1):
            if acc.quiescent_at(round_):
                self._journal({"event": "quiescent", "round": round_})
                break
            expects, crashers = acc.begin_round(round_)
            alive = acc.alive()
            for u in alive:
                frame: Dict[str, Any] = {
                    "t": "round",
                    "r": round_,
                    "expect": expects[u],
                }
                if u in crashers:
                    frame["crash"] = crashers[u].to_dict()
                await self._send(u, frame)
            reports: Dict[int, Dict[str, Any]] = {}
            for u in alive:
                report = await self._await_frame(
                    u, "report", spec.round_timeout
                )
                if int(report.get("r", -1)) != round_:
                    raise WireError(
                        f"node {u} reported round {report.get('r')} during "
                        f"round {round_}"
                    )
                reports[u] = report
            for victim in sorted(crashers):
                outputs = reports[victim].get("outputs")
                if not isinstance(outputs, dict):
                    raise WireError(
                        f"crash-round report from node {victim} carries no "
                        "output snapshot"
                    )
                self.outputs[victim] = outputs
                # Expected death: stand the detector down first, then kill.
                self.detector.forget(victim)
                self._kill(victim)
                self._journal(
                    {"event": "crash", "node": victim, "round": round_}
                )
            acc.finish_round(round_, reports)
            self._journal(
                {
                    "event": "round",
                    "round": round_,
                    "sent": acc.metrics.per_round_messages[-1],
                    "crashed": sorted(acc.crashed),
                }
            )
            if self._kill_after is not None and self._kill_after[1] == round_:
                # Unscripted death: no forget(), no accounting — only the
                # heartbeat detector may notice.
                self._kill(self._kill_after[0])
                self._journal(
                    {
                        "event": "unscripted_kill",
                        "node": self._kill_after[0],
                        "round": round_,
                    }
                )

        metrics = acc.finalize(horizon)
        last_round = metrics.rounds_executed
        alive = acc.alive()
        for u in alive:
            await self._send(
                u,
                {
                    "t": "stop",
                    "last_round": last_round,
                    "expect_total": acc.delivered_to[u],
                },
            )
        for u in alive:
            bye = await self._await_frame(u, "bye", spec.round_timeout)
            outputs = bye.get("outputs")
            if not isinstance(outputs, dict):
                raise WireError(f"bye from node {u} carries no outputs")
            self.outputs[u] = outputs
            received = int(bye.get("received", -1))
            if received != acc.delivered_to[u]:
                raise WireError(
                    f"frame-count mismatch at node {u}: received {received} "
                    f"data frames, accountant delivered "
                    f"{acc.delivered_to[u]}"
                )
            self.frames[u] = {
                "received": received,
                "sent": int(bye.get("frames_sent", 0)),
            }
        self._journal({"event": "stop", "last_round": last_round})

        outcome = wire_outcome(spec, self.outputs, acc.crashed, metrics)
        return WireRunSummary(
            metrics=metrics,
            outcome=outcome,
            crashed=dict(acc.crashed),
            rounds=last_round,
            horizon=horizon,
            frames=dict(self.frames),
        )
