"""Real fault injection from chaos :class:`~repro.chaos.script.CrashScript`s.

The chaos layer already describes crash faults declaratively: *node v
crashes in round r, and this deterministic filter decides which of its
final-round messages survive*.  The sim replays that inside the engine;
here the same script drives **real SIGKILLs**:

* The coordinator tells the victim its crash order inside the round-``r``
  control frame.  The victim steps and transmits normally, but applies
  the script's :class:`DeliveryFilter` to its own outgoing wire messages
  — it physically sends only the kept ones ("kill-after-k-sends": the
  partial final-round delivery the model demands, realised by sending
  exactly ``k`` frames and then dying).
* The victim's crash-round report carries a snapshot of its protocol
  outputs (its state can never change again), then the coordinator
  delivers ``SIGKILL`` — no cooperative shutdown, the process is gone
  mid-event-loop exactly like a machine loss.
* The coordinator *also* replays the filter per edge (filters are pure
  functions of ``(src, dst)``) and fails the trial on any divergence
  from what the victim claims it sent, so a buggy victim cannot forge
  its own partial delivery.

:class:`WireFaultPlan` is the validated, coordinator-side view of the
script; :func:`kill_node` is the actual injector.
"""

from __future__ import annotations

import signal
import subprocess
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple

from ..chaos.script import CrashScript, DeliveryFilter
from ..errors import WireError
from ..types import NodeId, Round


@dataclass(frozen=True)
class WireFaultPlan:
    """Coordinator-side crash schedule distilled from a ``CrashScript``."""

    faulty: Tuple[NodeId, ...] = ()
    crashes: Mapping[NodeId, Tuple[Round, DeliveryFilter]] = field(
        default_factory=dict
    )

    @classmethod
    def from_script(cls, script: Optional[CrashScript]) -> "WireFaultPlan":
        """Distil ``script`` (already validated by ``WireSpec.validate``)."""
        if script is None:
            return cls()
        return cls(faulty=tuple(script.faulty), crashes=dict(script.crashes))

    def crashers_at(
        self, round_: Round, crashed: Mapping[NodeId, Round]
    ) -> Dict[NodeId, DeliveryFilter]:
        """Victims scheduled for ``round_`` that have not crashed yet.

        Mirrors ``CrashScript.plan_round`` (same round-equality match,
        same already-crashed skip).
        """
        return {
            node: filter_
            for node, (r, filter_) in self.crashes.items()
            if r == round_ and node not in crashed
        }

    def done(self, round_: Round, crashed: Mapping[NodeId, Round]) -> bool:
        """No crash pending at or after ``round_`` — mirrors
        ``CrashScript.done``, which gates the engine's quiescence
        fast-forward."""
        return not any(
            r >= round_ and node not in crashed
            for node, (r, _) in self.crashes.items()
        )

    @property
    def last_crash_round(self) -> Round:
        return max((r for r, _ in self.crashes.values()), default=0)


def kill_node(proc: "subprocess.Popen[bytes]") -> None:
    """Deliver the crash fault: SIGKILL, no warning, no cleanup handler.

    Reaping is the driver's job (its synchronous teardown calls
    ``wait()``); doing it here would block the coordinator's event loop.
    """
    if proc.poll() is None:
        try:
            proc.send_signal(signal.SIGKILL)
        except (ProcessLookupError, OSError):
            pass  # already gone — the fault beat us to it


def check_report_against_filter(
    node: NodeId,
    round_: Round,
    filter_: DeliveryFilter,
    sent: object,
) -> None:
    """Fail the trial if a victim's claimed kept-set diverges from the
    script's filter (the coordinator replays ``keep`` per edge).

    ``sent`` is the report's entry list ``[[dst, kind, bits, kept], ...]``.
    """
    from ..sim.message import Envelope, Message

    for entry in sent:  # type: ignore[attr-defined]
        dst, kind, _bits, kept = entry
        envelope = Envelope(node, int(dst), Message(str(kind), ()), round_)
        expected = filter_.keep(envelope)
        if bool(kept) != expected:
            raise WireError(
                f"node {node} round {round_}: filter divergence on edge "
                f"->{dst} (reported kept={bool(kept)}, script says "
                f"{expected})"
            )
