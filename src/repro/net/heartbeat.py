"""Heartbeat emission and timeout-based failure detection.

The wire backend's liveness story: every node process streams periodic
heartbeat frames to the coordinator over its control channel
(:class:`HeartbeatSender`); the coordinator feeds arrival times into a
:class:`FailureDetector`, which suspects any tracked node silent for
longer than ``interval * suspicion_threshold``.

This is the classic eventually-perfect-detector compromise made concrete:

* **No false suspicion below the threshold** — a node is suspected only
  after a full detection bound of silence, so scheduling jitter shorter
  than the bound never fails a trial (tested under a fake clock).
* **Detection within the bound** — a SIGKILLed node stops beating, so it
  is suspected at most one detection bound after its last heartbeat.
  The coordinator polls the detector while awaiting round reports, which
  turns an unscripted death into a journalled failed trial instead of a
  hung barrier.
* **Quiescence** — scripted crashes are *expected*: the coordinator
  forgets the victim before killing it, so a detector at shutdown tracks
  nothing and raises nothing (also fake-clock tested).

The clock is injectable (defaults to ``time.monotonic``) precisely so the
threshold arithmetic is testable without sleeping through it.
"""

from __future__ import annotations

import asyncio
import time
from typing import Callable, Dict, List

#: Control-frame type tag for heartbeats.
HEARTBEAT_FRAME = "hb"


class FailureDetector:
    """Timeout-based failure detector over explicit beat timestamps."""

    def __init__(
        self,
        interval: float,
        suspicion_threshold: int,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        if suspicion_threshold < 2:
            raise ValueError(
                "suspicion_threshold must be >= 2 (one missed beat is jitter)"
            )
        self.interval = interval
        self.suspicion_threshold = suspicion_threshold
        self._clock = clock
        self._last_beat: Dict[int, float] = {}

    @property
    def bound(self) -> float:
        """Detection bound: silence longer than this means suspicion."""
        return self.interval * self.suspicion_threshold

    def register(self, node: int) -> None:
        """Start tracking ``node``; registration counts as a beat."""
        self._last_beat[node] = self._clock()

    def beat(self, node: int) -> None:
        """Record a heartbeat from ``node`` (ignored when untracked)."""
        if node in self._last_beat:
            self._last_beat[node] = self._clock()

    def forget(self, node: int) -> None:
        """Stop tracking ``node`` (scripted crashes are expected deaths)."""
        self._last_beat.pop(node, None)

    def suspects(self) -> List[int]:
        """Tracked nodes silent for longer than the detection bound."""
        now = self._clock()
        bound = self.bound
        return sorted(
            node
            for node, last in self._last_beat.items()
            if now - last > bound
        )

    def silence(self, node: int) -> float:
        """Seconds since ``node``'s last beat (0.0 when untracked)."""
        last = self._last_beat.get(node)
        if last is None:
            return 0.0
        return max(0.0, self._clock() - last)

    @property
    def tracked(self) -> List[int]:
        """Nodes currently being watched."""
        return sorted(self._last_beat)

    @property
    def quiescent(self) -> bool:
        """True when the detector watches nothing (clean shutdown)."""
        return not self._last_beat


class HeartbeatSender:
    """Node-side task: beat the coordinator every ``interval`` seconds."""

    def __init__(self, stream: object, node_id: int, interval: float) -> None:
        self._stream = stream
        self._node_id = node_id
        self._interval = interval
        self._stopped = asyncio.Event()
        self.beats_sent = 0

    def stop(self) -> None:
        self._stopped.set()

    async def run(self) -> None:
        """Beat until stopped or the control channel dies."""
        frame = {"t": HEARTBEAT_FRAME, "node": self._node_id}
        while not self._stopped.is_set():
            try:
                await self._stream.send(dict(frame))  # type: ignore[attr-defined]
            except (ConnectionError, OSError):
                return  # coordinator is gone; the round loop will notice
            self.beats_sent += 1
            try:
                await asyncio.wait_for(
                    self._stopped.wait(), timeout=self._interval
                )
            except asyncio.TimeoutError:
                continue
