"""Framed JSON transport over asyncio TCP.

Every connection in the wire backend — node ↔ node data edges and the
node ↔ coordinator control channel — speaks the same trivially parseable
protocol: a 4-byte big-endian length prefix followed by a UTF-8 JSON
object.  JSON keeps the frames debuggable (`journal` files quote them
verbatim) and is cheap at wire-trial scale; the CONGEST *accounting*
never looks at frame bytes, it counts model messages.

:class:`FrameStream` wraps an asyncio reader/writer pair with:

* write serialisation (an ``asyncio.Lock``) so concurrent tasks — the
  heartbeat sender and the round loop share the coordinator channel —
  never interleave partial frames;
* send/receive frame counters, which the parity layer cross-checks
  against the coordinator's delivery accounting (a frame the model says
  was delivered must actually have crossed the socket);
* EOF as ``None`` from :meth:`recv`, so peers dying mid-read surface as
  data, not exceptions.

:func:`connect_with_backoff` dials a peer with capped exponential
backoff: node processes race the coordinator/each other at startup, so
the first connect legitimately lands before the listener is up.
"""

from __future__ import annotations

import asyncio
import json
import struct
from typing import Dict, Optional, Tuple

from ..errors import WireError

#: Length-prefix codec: 4-byte unsigned big-endian frame size.
_HEADER = struct.Struct(">I")

#: Upper bound on a single frame; a longer frame is a protocol bug.
MAX_FRAME_BYTES = 4 << 20


def encode_frame(payload: Dict[str, object]) -> bytes:
    """Serialise one frame (length prefix + compact JSON)."""
    body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise WireError(f"frame of {len(body)} bytes exceeds {MAX_FRAME_BYTES}")
    return _HEADER.pack(len(body)) + body


class FrameStream:
    """A counted, write-serialised frame channel over one TCP connection."""

    def __init__(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._reader = reader
        self._writer = writer
        self._write_lock = asyncio.Lock()
        self.frames_sent = 0
        self.frames_received = 0

    async def send(self, payload: Dict[str, object]) -> None:
        """Write one frame and drain (serialised across tasks)."""
        data = encode_frame(payload)
        async with self._write_lock:
            self._writer.write(data)
            await self._writer.drain()
            self.frames_sent += 1

    async def recv(self) -> Optional[Dict[str, object]]:
        """Read one frame; ``None`` on clean or mid-frame EOF."""
        try:
            header = await self._reader.readexactly(_HEADER.size)
        except (asyncio.IncompleteReadError, ConnectionError):
            return None
        (length,) = _HEADER.unpack(header)
        if length > MAX_FRAME_BYTES:
            raise WireError(
                f"peer announced a {length}-byte frame (cap {MAX_FRAME_BYTES})"
            )
        try:
            body = await self._reader.readexactly(length)
        except (asyncio.IncompleteReadError, ConnectionError):
            return None
        try:
            frame = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise WireError(f"undecodable frame: {exc}") from exc
        if not isinstance(frame, dict):
            raise WireError(f"frame is not an object: {frame!r}")
        self.frames_received += 1
        return frame

    def close(self) -> None:
        """Close the underlying transport (best effort)."""
        try:
            self._writer.close()
        except (RuntimeError, OSError):  # loop already torn down
            pass

    async def wait_closed(self) -> None:
        try:
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass


async def connect_with_backoff(
    host: str,
    port: int,
    *,
    attempts: int = 8,
    base_delay: float = 0.05,
    max_delay: float = 1.0,
) -> FrameStream:
    """Dial ``host:port``, retrying with capped exponential backoff.

    Raises :class:`~repro.errors.WireError` once the attempt budget is
    spent — callers decide whether a dead peer is fatal (coordinator) or
    expected (a crashed node's data edge).
    """
    delay = base_delay
    last_error: Optional[Exception] = None
    for attempt in range(attempts):
        try:
            reader, writer = await asyncio.open_connection(host, port)
            return FrameStream(reader, writer)
        except (ConnectionError, OSError) as exc:
            last_error = exc
            if attempt == attempts - 1:
                break
            await asyncio.sleep(delay)
            delay = min(max_delay, delay * 2)
    raise WireError(
        f"could not connect to {host}:{port} after {attempts} attempts: "
        f"{last_error}"
    )


class PeerBook:
    """Lazy outbound connections to peers, with dead-peer memory.

    A sender keeps one connection per destination.  A destination that
    cannot be reached (its process was SIGKILLed) is remembered as dead:
    the model counts such messages as sent-and-expired, so the sender
    must not stall re-dialling a corpse every round.
    """

    def __init__(
        self,
        host: str,
        ports: Dict[int, int],
        *,
        attempts: int = 4,
        base_delay: float = 0.03,
    ) -> None:
        self._host = host
        self._ports = ports
        self._attempts = attempts
        self._base_delay = base_delay
        self._streams: Dict[int, FrameStream] = {}
        self._dead: set = set()
        self.frames_sent = 0

    async def send(self, dst: int, payload: Dict[str, object]) -> bool:
        """Send one frame to ``dst``; False if the peer is unreachable."""
        if dst in self._dead:
            return False
        stream = self._streams.get(dst)
        if stream is None:
            try:
                stream = await connect_with_backoff(
                    self._host,
                    self._ports[dst],
                    attempts=self._attempts,
                    base_delay=self._base_delay,
                )
            except WireError:
                self._dead.add(dst)
                return False
            self._streams[dst] = stream
        try:
            await stream.send(payload)
        except (ConnectionError, OSError):
            self._dead.add(dst)
            stream.close()
            del self._streams[dst]
            return False
        self.frames_sent += 1
        return True

    def close(self) -> None:
        for stream in self._streams.values():
            stream.close()
        self._streams.clear()


def split_host_port(address: str) -> Tuple[str, int]:
    """Parse ``host:port`` (used by the node CLI)."""
    host, _, port = address.rpartition(":")
    if not host or not port.isdigit():
        raise WireError(f"expected HOST:PORT, got {address!r}")
    return host, int(port)
