"""The sim-vs-wire parity oracle.

The wire backend's correctness claim is *exactness*, not plausibility:
for one ``(spec, seed, CrashScript)`` the real-network run must produce

* the same full message accounting (:func:`~repro.net.spec.metrics_dict`
  — headline totals, per-round, per-kind, per-node, latency histogram),
* the same canonical outcome (leader identity, per-node beliefs and
  decisions, success flags),

as the discrete-round simulator.  This module runs both sides and diffs
them key by key.  The argument for why equality is *achievable* (round
barrier = engine round loop; deterministic RNG streams; pure delivery
filters replayed on both sides) lives in ``docs/NET.md`` — this file is
the measurement.

:func:`default_script` builds a deterministic scripted-fault scenario for
any spec (victims, rounds, and filters derived from the seed), so the
parity grid exercises partial final-round delivery and mid-run SIGKILLs,
not just the fault-free path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from ..chaos.script import CrashScript, DeliveryFilter
from ..rng import derive_seed
from .driver import WireTrialResult, run_loopback_trial, run_wire_trial
from .spec import WIRE_PROTOCOLS, WireSpec, metrics_dict, sim_reference

#: The two fault modes the parity grid sweeps.
PARITY_MODES = ("fault-free", "scripted")


@dataclass
class ParityReport:
    """One spec's sim-vs-wire comparison."""

    spec: WireSpec
    backend: str
    trial: WireTrialResult
    sim_metrics: Dict[str, object] = field(default_factory=dict)
    wire_metrics: Optional[Dict[str, object]] = None
    sim_outcome: Dict[str, object] = field(default_factory=dict)
    wire_outcome: Optional[Dict[str, object]] = None
    diffs: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.trial.ok and not self.diffs

    def to_dict(self) -> Dict[str, object]:
        return {
            "ok": self.ok,
            "backend": self.backend,
            "spec": self.spec.to_dict(),
            "trial_ok": self.trial.ok,
            "trial_reason": self.trial.reason,
            "diffs": list(self.diffs),
            "sim_metrics": self.sim_metrics,
            "wire_metrics": self.wire_metrics,
            "sim_outcome": self.sim_outcome,
            "wire_outcome": self.wire_outcome,
            "journal_dir": self.trial.journal_dir,
        }


def _diff_dicts(kind: str, sim: Dict[str, object], wire: Dict[str, object]) -> List[str]:
    diffs: List[str] = []
    for key in sorted(set(sim) | set(wire)):
        sim_value = sim.get(key)
        wire_value = wire.get(key)
        if sim_value != wire_value:
            diffs.append(
                f"{kind}.{key}: sim={sim_value!r} wire={wire_value!r}"
            )
    return diffs


def run_parity_trial(
    spec: WireSpec,
    *,
    backend: str = "wire",
    journal_dir: Optional[str] = None,
) -> ParityReport:
    """Run ``spec`` on the sim and on the wire (or loopback), diff both.

    ``backend="wire"`` spawns real node processes; ``"loopback"`` runs
    the transport-free twin (same accounting code, sim speed).
    """
    if backend == "wire":
        trial = run_wire_trial(spec, journal_dir=journal_dir)
    elif backend == "loopback":
        trial = run_loopback_trial(spec)
    else:
        raise ValueError(f"unknown parity backend {backend!r}")
    sim_metrics, sim_outcome = sim_reference(spec)
    report = ParityReport(
        spec=spec,
        backend=backend,
        trial=trial,
        sim_metrics=metrics_dict(sim_metrics),
        wire_metrics=trial.metrics_dict(),
        sim_outcome=sim_outcome,
        wire_outcome=trial.outcome,
    )
    if not trial.ok:
        report.diffs.append(f"trial failed: {trial.reason}")
        return report
    assert report.wire_metrics is not None and trial.outcome is not None
    report.diffs.extend(
        _diff_dicts("metrics", report.sim_metrics, report.wire_metrics)
    )
    report.diffs.extend(_diff_dicts("outcome", sim_outcome, trial.outcome))
    return report


def default_script(spec: WireSpec, victims: int = 2) -> CrashScript:
    """A deterministic scripted-fault scenario for ``spec``.

    Victims, crash rounds, and filters are all derived from the seed, so
    the same spec always yields the same script on every machine.  The
    script stays within the spec's fault budget and exercises both filter
    families: one victim loses *all* of its final-round messages, the
    other keeps a pseudo-random half (partial final-round delivery).
    """
    if spec.protocol == "flooding":
        budget = victims  # flooding tolerates any f with f + 1 rounds
    else:
        budget = spec.params().max_faulty
    count = max(1, min(victims, budget))
    chosen: List[int] = []
    probe = 0
    while len(chosen) < count:
        node = derive_seed(spec.seed, "parity-victim", probe) % spec.n
        probe += 1
        if node not in chosen:
            chosen.append(node)
    if spec.protocol == "flooding":
        horizon = count + 1 + 2 + spec.extra_rounds
    else:
        horizon = spec.horizon()
    crashes: Dict[int, Tuple[int, DeliveryFilter]] = {}
    for index, node in enumerate(chosen):
        round_ = max(1, ((index + 1) * horizon) // (count + 1))
        if index % 2 == 0:
            filter_ = DeliveryFilter(
                kind="keep_fraction", fraction=0.5, salt=spec.seed
            )
        else:
            filter_ = DeliveryFilter(kind="drop_all")
        crashes[node] = (round_, filter_)
    return CrashScript(
        faulty=tuple(sorted(chosen)),
        crashes=crashes,
        label=f"parity/{spec.protocol}/n{spec.n}/seed{spec.seed}",
    )


def parity_specs(
    protocols: Iterable[str] = WIRE_PROTOCOLS,
    sizes: Iterable[int] = (8, 16, 32),
    modes: Iterable[str] = PARITY_MODES,
    seed: int = 0,
    **overrides: object,
) -> List[WireSpec]:
    """The parity grid: protocols x sizes x fault modes."""
    specs: List[WireSpec] = []
    for protocol in protocols:
        for n in sizes:
            for mode in modes:
                if mode not in PARITY_MODES:
                    raise ValueError(
                        f"unknown parity mode {mode!r}; "
                        f"choose from {PARITY_MODES}"
                    )
                spec = WireSpec(protocol=protocol, n=n, seed=seed)
                if overrides:
                    spec = spec.with_(**overrides)
                if mode == "scripted":
                    spec = spec.with_(script=default_script(spec))
                specs.append(spec)
    return specs


def parity_grid(
    protocols: Iterable[str] = WIRE_PROTOCOLS,
    sizes: Iterable[int] = (8, 16, 32),
    modes: Iterable[str] = PARITY_MODES,
    seed: int = 0,
    backend: str = "loopback",
    journal_dir: Optional[str] = None,
    **overrides: object,
) -> List[ParityReport]:
    """Run the full parity grid; one :class:`ParityReport` per cell."""
    reports: List[ParityReport] = []
    for index, spec in enumerate(
        parity_specs(protocols, sizes, modes, seed, **overrides)
    ):
        cell_dir = (
            f"{journal_dir}/cell-{index:02d}" if journal_dir is not None else None
        )
        reports.append(
            run_parity_trial(spec, backend=backend, journal_dir=cell_dir)
        )
    return reports
