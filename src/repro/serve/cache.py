"""Persistent, content-addressed trial-result cache.

A campaign is a set of trials, and every trial's result is — by the
determinism contract the lint layer enforces (DET001/DET002) — a pure
function of ``(task, point, seed)``.  That makes trial results
*cacheable across campaigns*: a sweep resubmitted with an overlapping
grid re-uses every overlapping trial, and a 1000-trial campaign killed
at trial 999 costs one trial to finish.

Key soundness
-------------

The cache key is the canonical JSON of::

    {"task": "module:qualname", "point": {...}, "seed": <int>}

addressed by its SHA-256.  Three deliberate choices:

* **The task is its string reference**, so a callable and its
  ``"module:qualname"`` form hit the same entry
  (:func:`repro.parallel.spec.canonical_task_ref`).
* **The engine backend is excluded.**  Backends are exact-parity by
  contract (the vec backend is gated by a cross-backend parity test on
  the canary campaign), so a result computed under ``--backend vec`` is
  byte-identical to the reference engine's and may answer either.
* **Campaign shape is excluded** (grid order, trials-per-point, jobs):
  seeds are derived before dispatch, so the same ``(task, point, seed)``
  triple yields the same result regardless of which campaign asked.

Values are stored *serialised* (the executor's ``default_serialize``
output — plain JSON), which is exactly what journals, streams, and
reports consume; a cached answer is therefore byte-identical to a fresh
one after canonical JSON encoding.

Storage is one file per entry under the cache directory, written with
the atomic tmp-file + ``os.replace`` dance, so a crashed server never
leaves a torn entry.  Each file stores the *full* key payload next to
the value: on read the payload is compared, so even a SHA-256 collision
(or a corrupted file) degrades to a miss, never a wrong answer.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Any, Dict, Mapping, Optional, Tuple, Union

#: Distinguishes "no entry" from a cached ``None`` value.
_MISS = object()


def canonical_json(payload: Any) -> str:
    """The one JSON encoding used for keys and stored values."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def cache_key_payload(
    task_ref: str, point: Mapping[str, Any], seed: int
) -> Dict[str, Any]:
    """The identity of one trial result, as a JSON-safe dict."""
    return {"task": task_ref, "point": dict(point), "seed": int(seed)}


def cache_key_digest(payload: Mapping[str, Any]) -> str:
    """SHA-256 hex of the canonical key payload (the entry's address)."""
    return hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()


class ResultCache:
    """Content-addressed store of serialised trial values.

    ``max_entries`` bounds the on-disk entry count: inserts beyond it
    evict the least-recently-*used* entries (hits refresh an entry's
    mtime).  ``None`` means unbounded.
    """

    def __init__(
        self,
        root: Union[str, Path],
        max_entries: Optional[int] = None,
    ) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.root = Path(root)
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.evictions = 0

    # -- paths -----------------------------------------------------------

    def entry_path(self, digest: str) -> Path:
        """Where an entry lives: fanned out by the first digest byte."""
        return self.root / digest[:2] / f"{digest}.json"

    # -- lookup ----------------------------------------------------------

    def get(
        self, task_ref: str, point: Mapping[str, Any], seed: int
    ) -> Tuple[bool, Any]:
        """``(hit, value)`` for one trial identity.

        A hit refreshes the entry's mtime (the LRU clock).  Unreadable,
        unparsable, or key-mismatched entries count as misses — the
        stored key payload is always compared, so a hash collision can
        only cost a recomputation, never return a foreign result.
        """
        payload = cache_key_payload(task_ref, point, seed)
        path = self.entry_path(cache_key_digest(payload))
        try:
            raw = path.read_text(encoding="utf-8")
        except OSError:
            self.misses += 1
            return False, None
        try:
            entry = json.loads(raw)
        except ValueError:
            self.misses += 1
            return False, None
        if not isinstance(entry, dict) or entry.get("key") != payload:
            self.misses += 1
            return False, None
        try:
            os.utime(path)
        except OSError:  # pragma: no cover - mtime refresh is best-effort
            pass
        self.hits += 1
        return True, entry.get("value")

    def contains(
        self, task_ref: str, point: Mapping[str, Any], seed: int
    ) -> bool:
        """Existence probe that does not touch hit/miss counters."""
        payload = cache_key_payload(task_ref, point, seed)
        return self.entry_path(cache_key_digest(payload)).exists()

    # -- insert ----------------------------------------------------------

    def put(
        self, task_ref: str, point: Mapping[str, Any], seed: int, value: Any
    ) -> None:
        """Store one *serialised* value atomically (idempotent).

        ``value`` must already be JSON-safe (the executor's serialised
        form); storing re-encodes it canonically, so cached and fresh
        answers are the same bytes after canonical encoding.
        """
        payload = cache_key_payload(task_ref, point, seed)
        digest = cache_key_digest(payload)
        path = self.entry_path(digest)
        body = canonical_json({"key": payload, "value": value})
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(path.name + f".tmp.{os.getpid()}")
        try:
            tmp.write_text(body, encoding="utf-8")
            os.replace(tmp, path)
        except OSError:
            # Cache writes are an optimisation, never a correctness
            # requirement: a full disk degrades to recomputation.
            try:
                tmp.unlink()
            except OSError:
                pass
            return
        self.stores += 1
        if self.max_entries is not None:
            self.evict(self.max_entries)

    # -- maintenance -----------------------------------------------------

    def entries(self) -> int:
        """Current on-disk entry count."""
        return sum(1 for _ in self.root.glob("??/*.json"))

    def evict(self, keep: int) -> int:
        """Drop least-recently-used entries beyond ``keep``; returns count."""
        if keep < 0:
            raise ValueError(f"keep must be >= 0, got {keep}")
        paths = sorted(
            self.root.glob("??/*.json"),
            key=lambda p: self._mtime(p),
            reverse=True,
        )
        dropped = 0
        for path in paths[keep:]:
            try:
                path.unlink()
                dropped += 1
            except OSError:  # pragma: no cover - concurrent eviction
                pass
        self.evictions += dropped
        return dropped

    @staticmethod
    def _mtime(path: Path) -> float:
        try:
            return path.stat().st_mtime
        except OSError:  # pragma: no cover - racing unlink
            return 0.0

    def stats(self) -> Dict[str, Any]:
        """Counter snapshot plus the on-disk entry count."""
        return {
            "root": str(self.root),
            "entries": self.entries(),
            "max_entries": self.max_entries,
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "evictions": self.evictions,
        }
