"""Stdlib-only asyncio HTTP front for the campaign service.

A deliberately small HTTP/1.1 server (``asyncio.start_server``, no
framework): JSON in, JSON out, one request per connection
(``Connection: close``).  The only long-lived response is the campaign
stream, sent with chunked transfer encoding — one sealed journal-v2
record per line, exactly the bytes :meth:`repro.serve.service.Job.emit`
buffered.

Endpoints
---------

=======  ==========================  =======================================
GET      ``/health``                 liveness + version
GET      ``/tasks``                  the task registry (name → reference)
GET      ``/cache``                  result-cache counters
POST     ``/campaigns``              submit a campaign spec; ``202`` + job id
GET      ``/campaigns``              all jobs, queue order
GET      ``/campaigns/<id>``         one job's status/summary
GET      ``/campaigns/<id>/stream``  chunked JSONL stream until the job ends
=======  ==========================  =======================================

Campaign execution happens on the service's worker thread; the event
loop only parses requests and pumps stream buffers, so a slow campaign
never blocks health checks or further submissions.
"""

from __future__ import annotations

import asyncio
import json
import threading
from typing import Any, Dict, Optional, Tuple

from ..errors import ConfigurationError
from .cache import canonical_json
from .service import CampaignService, Job

#: Request-body ceiling: campaign specs are small; anything bigger is
#: either a mistake or abuse.
MAX_BODY_BYTES = 1 << 20

#: How long a stream pump waits on the job buffer per poll.  Bounded so
#: a cancelled client connection is noticed promptly.
_STREAM_POLL_SECONDS = 0.25

_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    500: "Internal Server Error",
}


def _response_bytes(status: int, payload: Any) -> bytes:
    body = (canonical_json(payload) + "\n").encode("utf-8")
    head = (
        f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}\r\n"
        "Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n"
        "Connection: close\r\n"
        "\r\n"
    ).encode("latin-1")
    return head + body


class CampaignServer:
    """Bind a :class:`CampaignService` to a TCP port.

    Two ways to run it:

    * :meth:`run` — serve in the calling thread until cancelled
      (the CLI path; Ctrl-C stops it).
    * :meth:`start` / :meth:`stop` — serve on a background thread with
      its own event loop (tests and embedding); :attr:`port` is the
      bound port, available once :meth:`start` returns.
    """

    def __init__(
        self,
        service: CampaignService,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.service = service
        self.host = host
        self.port = port
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stopping: Optional[asyncio.Event] = None
        self._ready = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._startup_error: Optional[BaseException] = None

    # -- lifecycle -------------------------------------------------------

    def run(self) -> None:
        """Serve in this thread until :meth:`stop` or KeyboardInterrupt."""
        asyncio.run(self._serve())

    def start(self, timeout: float = 10.0) -> None:
        """Serve on a daemon thread; returns once the port is bound."""
        self._thread = threading.Thread(
            target=self._run_captured, name="repro-serve-http", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout):
            raise RuntimeError("campaign server did not start in time")
        if self._startup_error is not None:
            raise RuntimeError(
                f"campaign server failed to bind: {self._startup_error}"
            )

    def _run_captured(self) -> None:
        try:
            self.run()
        except BaseException as exc:  # noqa: BLE001 - surfaced to start()
            self._startup_error = exc
            self._ready.set()

    def stop(self, timeout: float = 10.0) -> None:
        """Stop the listener (joins the background thread when present)."""
        loop, stopping = self._loop, self._stopping
        if loop is not None and stopping is not None:
            loop.call_soon_threadsafe(stopping.set)
        if self._thread is not None:
            self._thread.join(timeout)

    async def _serve(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stopping = asyncio.Event()
        server = await asyncio.start_server(self._handle, self.host, self.port)
        self.port = server.sockets[0].getsockname()[1]
        self._ready.set()
        async with server:
            await self._stopping.wait()

    # -- request handling ------------------------------------------------

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            parsed = await asyncio.wait_for(_read_request(reader), timeout=30.0)
            if parsed is None:
                return
            method, path, body = parsed
            await self._route(method, path, body, writer)
        except asyncio.TimeoutError:
            writer.write(_response_bytes(400, {"error": "request timed out"}))
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        except _BodyTooLarge:
            writer.write(_response_bytes(413, {"error": "request body too large"}))
        except Exception as exc:  # noqa: BLE001 - never kill the listener
            try:
                writer.write(
                    _response_bytes(500, {"error": f"{type(exc).__name__}: {exc}"})
                )
            except ConnectionError:
                pass
        finally:
            try:
                await writer.drain()
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _route(
        self,
        method: str,
        path: str,
        body: bytes,
        writer: asyncio.StreamWriter,
    ) -> None:
        if path == "/health" and method == "GET":
            from .. import __version__

            writer.write(
                _response_bytes(200, {"status": "ok", "version": __version__})
            )
            return
        if path == "/tasks" and method == "GET":
            writer.write(_response_bytes(200, dict(self.service.registry)))
            return
        if path == "/cache" and method == "GET":
            writer.write(_response_bytes(200, self.service.cache.stats()))
            return
        if path == "/campaigns" and method == "POST":
            try:
                payload = json.loads(body.decode("utf-8")) if body else None
            except ValueError:
                writer.write(
                    _response_bytes(400, {"error": "request body is not JSON"})
                )
                return
            try:
                # submit() validates the spec and resolves task refs,
                # which imports task modules — blocking disk I/O that
                # must not run on the event loop (ASYNC001).
                loop = asyncio.get_running_loop()
                job = await loop.run_in_executor(
                    None, self.service.submit, payload
                )
            except ConfigurationError as exc:
                writer.write(_response_bytes(400, {"error": str(exc)}))
                return
            writer.write(
                _response_bytes(
                    202,
                    {
                        "job": job.id,
                        "state": job.state,
                        "status_url": f"/campaigns/{job.id}",
                        "stream_url": f"/campaigns/{job.id}/stream",
                    },
                )
            )
            return
        if path == "/campaigns" and method == "GET":
            writer.write(
                _response_bytes(
                    200, [job.describe() for job in self.service.jobs()]
                )
            )
            return
        if path.startswith("/campaigns/"):
            rest = path[len("/campaigns/") :]
            job_id, _, tail = rest.partition("/")
            job = self.service.job(job_id)
            if job is None:
                writer.write(
                    _response_bytes(404, {"error": f"no such job {job_id!r}"})
                )
                return
            if tail == "" and method == "GET":
                writer.write(_response_bytes(200, job.describe()))
                return
            if tail == "stream" and method == "GET":
                await self._stream(job, writer)
                return
        if method not in ("GET", "POST"):
            writer.write(_response_bytes(405, {"error": f"method {method}"}))
            return
        writer.write(_response_bytes(404, {"error": f"no route {path}"}))

    async def _stream(self, job: Job, writer: asyncio.StreamWriter) -> None:
        """Chunk-stream the job's sealed records until it finishes."""
        writer.write(
            (
                "HTTP/1.1 200 OK\r\n"
                "Content-Type: application/x-ndjson\r\n"
                "Transfer-Encoding: chunked\r\n"
                "Connection: close\r\n"
                "\r\n"
            ).encode("latin-1")
        )
        await writer.drain()
        loop = asyncio.get_running_loop()
        cursor = 0
        while True:
            # The buffer wait blocks, so it runs on an executor thread;
            # the poll timeout bounds how long a dead client lingers.
            records, done = await loop.run_in_executor(
                None, job.wait_records, cursor, _STREAM_POLL_SECONDS
            )
            if records:
                cursor += len(records)
                payload = "".join(
                    canonical_json(record) + "\n" for record in records
                ).encode("utf-8")
                writer.write(_chunk(payload))
                await writer.drain()
            if done and not records:
                writer.write(b"0\r\n\r\n")
                await writer.drain()
                return


def _chunk(payload: bytes) -> bytes:
    return f"{len(payload):x}\r\n".encode("latin-1") + payload + b"\r\n"


class _BodyTooLarge(Exception):
    pass


async def _read_request(
    reader: asyncio.StreamReader,
) -> Optional[Tuple[str, str, bytes]]:
    """Parse one request: ``(method, path, body)``; ``None`` on EOF."""
    request_line = await reader.readline()
    if not request_line:
        return None
    try:
        method, target, _ = request_line.decode("latin-1").split(" ", 2)
    except ValueError:
        raise ConfigurationError("malformed request line") from None
    headers: Dict[str, str] = {}
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    length_raw = headers.get("content-length", "0")
    try:
        length = int(length_raw or "0")
    except ValueError:
        raise ConfigurationError("malformed Content-Length") from None
    if length > MAX_BODY_BYTES:
        raise _BodyTooLarge()
    body = await reader.readexactly(length) if length > 0 else b""
    path = target.split("?", 1)[0]
    return method.upper(), path, body
