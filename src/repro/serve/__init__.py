"""The ``repro serve`` campaign service.

A stdlib-only HTTP/JSON front over the harness: submit sweep campaigns,
have them scheduled on the supervised process pool, answer repeated
trials from a persistent content-addressed result cache, and stream
progress + per-trial results as sealed journal-v2 records.

Layering (each importable without the ones above it):

* :mod:`repro.serve.cache` — the trial-result cache (pure persistence);
* :mod:`repro.serve.service` — queue + execution + stream buffers;
* :mod:`repro.serve.http` — the asyncio HTTP transport.

See ``docs/SERVE.md`` for the API, the wire format, and the cache-key
soundness argument.
"""

from .cache import ResultCache, cache_key_digest, cache_key_payload, canonical_json
from .http import CampaignServer
from .service import (
    DONE,
    FAILED,
    QUEUED,
    RUNNING,
    TASKS,
    CampaignService,
    CampaignSpec,
    Job,
    parse_campaign_spec,
)

__all__ = [
    "CampaignServer",
    "CampaignService",
    "CampaignSpec",
    "DONE",
    "FAILED",
    "Job",
    "QUEUED",
    "RUNNING",
    "ResultCache",
    "TASKS",
    "cache_key_digest",
    "cache_key_payload",
    "canonical_json",
    "parse_campaign_spec",
]
