"""The campaign service: submission queue, result cache, streaming jobs.

:class:`CampaignService` is the transport-independent core of
``repro serve``.  It accepts campaign specifications (the same
``grid × trials`` shape :func:`repro.analysis.sweeps.sweep` takes),
queues them, executes each on the supervised process pool, answers every
trial it has seen before from the persistent
:class:`~repro.serve.cache.ResultCache`, and publishes progress and
per-trial results as **sealed journal-v2 records** that the HTTP layer
streams verbatim — the wire format *is* the journal format, so any
journal consumer (``repro report``, ``fsck``) understands a captured
stream.

Process shape
-------------

Everything here is deliberately process-shaped: specs are plain JSON,
tasks are ``"module:qualname"`` references, results are serialised
values, and the queue is drained by one worker thread that owns the
pool.  A multi-machine deployment later replaces the thread with remote
workers without touching the wire format.

The **single drainer** is also the cache's concurrency story: jobs run
one at a time, so two overlapping campaigns submitted together dedup
naturally — the second finds the first's entries in the cache and
dispatches nothing for the overlap.

Security
--------

Submitted task names resolve through a fixed registry (:data:`TASKS`)
by default.  Arbitrary ``"module:qualname"`` references are *remote code
execution* and are only honoured when the service is constructed with
``allow_task_refs=True`` (tests, trusted single-user setups).
"""

from __future__ import annotations

import io
import itertools
import queue
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Union

from ..analysis.sweeps import enumerate_sweep_specs, grid_points
from ..errors import ConfigurationError
from ..exec import (
    CACHED,
    OK,
    ResilientExecutor,
    RetryPolicy,
    TrialOutcome,
    seal_record,
)
from ..obs.progress import ProgressReporter
from ..parallel import TrialSpec, canonical_task_ref, resolve_task
from ..parallel.pool import run_trials_resilient
from .cache import ResultCache

#: Task names the service executes by default.  Names — not references —
#: cross the HTTP boundary, so a client can only run what the operator
#: registered.
TASKS: Dict[str, str] = {
    "election": "repro.parallel.tasks:election_trial",
    "agreement": "repro.parallel.tasks:agreement_trial",
    "ben_or": "repro.parallel.tasks:ben_or_trial",
    # Adversary fuzzing as a campaign: pure per-(scenario, seed) verdicts,
    # so repeat submissions hit the result cache like any other task.
    "fuzz": "repro.parallel.tasks:fuzz_trial",
}

#: Job states.
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"


@dataclass(frozen=True)
class CampaignSpec:
    """One validated campaign submission."""

    task: str
    task_ref: str
    grid: Dict[str, List[Any]]
    trials: int
    master_seed: int
    jobs: int
    backend: Optional[str]
    timeout_seconds: Optional[float]
    retries: int

    def as_dict(self) -> Dict[str, Any]:
        """The spec as submitted-shape JSON (echoed in job descriptions)."""
        return {
            "task": self.task,
            "task_ref": self.task_ref,
            "grid": self.grid,
            "trials": self.trials,
            "master_seed": self.master_seed,
            "jobs": self.jobs,
            "backend": self.backend,
            "timeout_seconds": self.timeout_seconds,
            "retries": self.retries,
        }


def parse_campaign_spec(
    payload: Any,
    registry: Mapping[str, str],
    allow_task_refs: bool = False,
    default_jobs: int = 1,
) -> CampaignSpec:
    """Validate a submission payload into a :class:`CampaignSpec`.

    Raises :class:`~repro.errors.ConfigurationError` with a message safe
    to echo back over HTTP (no internals, names the offending field).
    """
    if not isinstance(payload, Mapping):
        raise ConfigurationError("campaign spec must be a JSON object")
    task = payload.get("task")
    if not isinstance(task, str) or not task:
        raise ConfigurationError("'task' must be a non-empty string")
    if task in registry:
        task_ref = registry[task]
    elif allow_task_refs and ":" in task:
        task_ref = canonical_task_ref(task)
    else:
        known = ", ".join(sorted(registry))
        raise ConfigurationError(f"unknown task {task!r} (registered: {known})")
    # Fail at submission, not mid-campaign, if the reference is dangling.
    resolve_task(task_ref)

    grid_raw = payload.get("grid")
    if not isinstance(grid_raw, Mapping) or not grid_raw:
        raise ConfigurationError("'grid' must be a non-empty object of axes")
    grid: Dict[str, List[Any]] = {}
    for name, axis in grid_raw.items():
        if not isinstance(axis, Sequence) or isinstance(axis, (str, bytes)):
            raise ConfigurationError(f"grid axis {name!r} must be a list")
        if not axis:
            raise ConfigurationError(f"grid axis {name!r} must not be empty")
        grid[str(name)] = list(axis)

    def _int_field(name: str, default: int, minimum: int) -> int:
        value = payload.get(name, default)
        if not isinstance(value, int) or isinstance(value, bool) or value < minimum:
            raise ConfigurationError(f"{name!r} must be an integer >= {minimum}")
        return value

    trials = _int_field("trials", 1, 1)
    master_seed = payload.get("master_seed", 0)
    if not isinstance(master_seed, int) or isinstance(master_seed, bool):
        raise ConfigurationError("'master_seed' must be an integer")
    jobs = _int_field("jobs", default_jobs, 0)
    retries = _int_field("retries", 0, 0)
    backend = payload.get("backend")
    if backend is not None and not isinstance(backend, str):
        raise ConfigurationError("'backend' must be a string or null")
    timeout_seconds = payload.get("timeout_seconds")
    if timeout_seconds is not None:
        if not isinstance(timeout_seconds, (int, float)) or timeout_seconds <= 0:
            raise ConfigurationError("'timeout_seconds' must be a positive number")
        timeout_seconds = float(timeout_seconds)
    return CampaignSpec(
        task=task,
        task_ref=task_ref,
        grid=grid,
        trials=trials,
        master_seed=master_seed,
        jobs=jobs,
        backend=backend,
        timeout_seconds=timeout_seconds,
        retries=retries,
    )


class Job:
    """One queued/running/finished campaign with its streamed records.

    Records are sealed with the journal v2 envelope at emission
    (``_crc`` + per-job ``_seq``), buffered in order, and handed to any
    number of stream readers via :meth:`wait_records`.  All mutation
    happens on the service's worker thread; readers only take the lock.
    """

    def __init__(self, job_id: str, spec: CampaignSpec) -> None:
        self.id = job_id
        self.spec = spec
        self.state = QUEUED
        self.error: Optional[str] = None
        self.summary: Optional[Dict[str, Any]] = None
        self.records: List[Dict[str, Any]] = []
        self._seq = 0
        self._cond = threading.Condition()

    @property
    def done(self) -> bool:
        return self.state in (DONE, FAILED)

    def emit(self, record: Dict[str, Any]) -> None:
        """Seal ``record`` and append it to the stream buffer."""
        with self._cond:
            self.records.append(seal_record(record, self._seq))
            self._seq += 1
            self._cond.notify_all()

    def set_state(self, state: str) -> None:
        with self._cond:
            self.state = state
            self._cond.notify_all()

    def wait_records(
        self, start: int, timeout: Optional[float] = 0.5
    ) -> "tuple[List[Dict[str, Any]], bool]":
        """``(records[start:], done)`` — blocks up to ``timeout`` for news.

        Returns immediately when records beyond ``start`` already exist
        or the job is finished; the ``done`` flag is read under the same
        lock, so a reader that sees ``done`` with no new records has seen
        the whole stream.
        """
        with self._cond:
            if len(self.records) <= start and not self.done:
                self._cond.wait(timeout)
            return list(self.records[start:]), self.done

    def describe(self) -> Dict[str, Any]:
        """JSON job status for the non-streaming endpoints."""
        with self._cond:
            return {
                "job": self.id,
                "state": self.state,
                "spec": self.spec.as_dict(),
                "records": len(self.records),
                "error": self.error,
                "summary": self.summary,
            }


class CampaignService:
    """Queue + cache + executor behind the ``repro serve`` HTTP front.

    One background thread drains the queue; :meth:`submit` is safe from
    any thread (the HTTP event loop calls it).  Close with
    :meth:`close` — queued jobs finish first.
    """

    def __init__(
        self,
        cache_dir: Union[str, Path],
        max_cache_entries: Optional[int] = None,
        registry: Optional[Mapping[str, str]] = None,
        allow_task_refs: bool = False,
        default_jobs: int = 1,
        progress_every: int = 25,
    ) -> None:
        if progress_every < 1:
            raise ConfigurationError(
                f"progress_every must be >= 1, got {progress_every}"
            )
        self.cache = ResultCache(cache_dir, max_entries=max_cache_entries)
        self.registry: Dict[str, str] = dict(TASKS if registry is None else registry)
        self.allow_task_refs = allow_task_refs
        self.default_jobs = default_jobs
        self.progress_every = progress_every
        self._jobs: Dict[str, Job] = {}
        self._ids = itertools.count(1)
        self._lock = threading.Lock()
        self._queue: "queue.Queue[Optional[Job]]" = queue.Queue()
        self._worker = threading.Thread(
            target=self._drain, name="repro-serve-worker", daemon=True
        )
        self._worker.start()

    # -- submission ------------------------------------------------------

    def submit(self, payload: Any) -> Job:
        """Validate ``payload`` and enqueue it; returns the queued job."""
        spec = parse_campaign_spec(
            payload,
            self.registry,
            allow_task_refs=self.allow_task_refs,
            default_jobs=self.default_jobs,
        )
        with self._lock:
            job = Job(f"job-{next(self._ids):04d}", spec)
            self._jobs[job.id] = job
        self._queue.put(job)
        return job

    def job(self, job_id: str) -> Optional[Job]:
        with self._lock:
            return self._jobs.get(job_id)

    def jobs(self) -> List[Job]:
        with self._lock:
            return list(self._jobs.values())

    def close(self, timeout: Optional[float] = 30.0) -> None:
        """Finish queued jobs, then stop the worker thread."""
        self._queue.put(None)
        self._worker.join(timeout)

    # -- execution (worker thread) ---------------------------------------

    def _drain(self) -> None:
        while True:
            job = self._queue.get()
            if job is None:
                return
            job.set_state(RUNNING)
            try:
                self._execute(job)
            except Exception as exc:  # noqa: BLE001 - job isolation: one
                # failing campaign must not take the service down.
                job.error = f"{type(exc).__name__}: {exc}"
                job.emit({"kind": "error", "job": job.id, "error": job.error})
                job.set_state(FAILED)
            else:
                job.set_state(DONE)

    def _execute(self, job: Job) -> None:
        spec = job.spec
        specs = enumerate_sweep_specs(
            spec.task_ref,
            spec.grid,
            spec.trials,
            master_seed=spec.master_seed,
            backend=spec.backend,
        )
        job.emit(
            {
                "kind": "campaign",
                "job": job.id,
                "task": spec.task_ref,
                "total_trials": len(specs),
                "grid": spec.grid,
                "trials": spec.trials,
                "master_seed": spec.master_seed,
                "jobs": spec.jobs,
                "backend": spec.backend,
            }
        )
        # The reporter is used for its counters/snapshot, not its
        # heartbeat: progress crosses the wire as JSON records, so the
        # text lines drain into a throwaway buffer.
        reporter = ProgressReporter(
            total=len(specs),
            label=job.id,
            stream=io.StringIO(),
            interval=float("inf"),
        )
        executor = ResilientExecutor(
            timeout_seconds=spec.timeout_seconds,
            retry=RetryPolicy(retries=spec.retries),
        )
        values: Dict[int, Any] = {}
        emitted = 0

        def emit_trial(trial_spec: TrialSpec, outcome: TrialOutcome) -> None:
            nonlocal emitted
            record = outcome.journal_record(executor.serialize)
            record["index"] = trial_spec.index
            if outcome.status == OK:
                # Cache the *serialised* value — the exact bytes any
                # future campaign (and this stream) will see.
                self.cache.put(
                    spec.task_ref, trial_spec.point, trial_spec.seed, record["value"]
                )
            if outcome.ok:
                values[trial_spec.index] = record["value"]
            job.emit(record)
            emitted += 1
            if emitted % self.progress_every == 0:
                job.emit(reporter.snapshot())

        # Cache pass: answer every previously-seen trial without
        # touching the pool.  Hits stream in spec order first; misses
        # are dispatched below and stream in completion order (records
        # carry their ``index``, so readers can reassemble).
        missing: List[TrialSpec] = []
        hits = 0
        for trial_spec in specs:
            hit, value = self.cache.get(
                spec.task_ref, trial_spec.point, trial_spec.seed
            )
            if not hit:
                missing.append(trial_spec)
                continue
            hits += 1
            reporter.advance(completed=1)
            emit_trial(
                trial_spec,
                TrialOutcome(
                    key=trial_spec.key or f"trial[{trial_spec.index}]",
                    seed=trial_spec.seed,
                    status=CACHED,
                    attempts=0,
                    value=value,
                ),
            )

        if missing:
            run_trials_resilient(
                missing,
                jobs=spec.jobs,
                executor=executor,
                progress=reporter,
                on_outcome=emit_trial,
            )
        stats = executor.last_supervisor_stats
        dispatched_chunks = stats.dispatched_chunks if stats is not None else 0

        rows = []
        for combo_index, point in enumerate(grid_points(spec.grid)):
            indices = range(
                combo_index * spec.trials, (combo_index + 1) * spec.trials
            )
            results = [values[i] for i in indices if i in values]
            rows.append(
                {
                    "point": point,
                    "results": results,
                    "failed": spec.trials - len(results),
                }
            )
        job.emit(reporter.snapshot())
        summary = {
            "kind": "summary",
            "job": job.id,
            "task": spec.task_ref,
            "total_trials": len(specs),
            "completed": len(values),
            "failed": len(specs) - len(values),
            "cache_hits": hits,
            "cache_misses": len(missing),
            "dispatched_trials": len(missing),
            "dispatched_chunks": dispatched_chunks,
            "points": rows,
        }
        job.summary = summary
        job.emit(summary)
