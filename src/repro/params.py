"""All numeric formulas of the paper in one place.

The algorithms of Sections IV-A and V-A are parameterised by three sampling
quantities, each taken verbatim from the paper (logs are natural logs,
consistent with the Chernoff arithmetic of Lemmas 1-3):

* candidate probability   ``6 log n / (alpha * n)``          (Lemma 1)
* referee sample size     ``2 * sqrt(n log n / alpha)``      (Lemma 3)
* iteration count         ``Theta(log n / alpha)``           (Theorem 4.1)

The constants ``6``, ``2`` and the iteration multiplier are exposed as
fields so that experiment E13 can ablate them; the defaults are the paper
values.

The module also carries the closed-form upper/lower-bound formulas used by
the experiment harness to compare measured curves against the theory.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from .errors import ConfigurationError

#: Smallest network size for which the model's constraints are satisfiable
#: (``alpha >= log^2 n / n`` needs ``n`` comfortably above ``log^2 n``).
MIN_NETWORK_SIZE = 8


def alpha_floor(n: int) -> float:
    """Smallest admissible ``alpha`` for an ``n``-node network.

    The paper requires ``alpha in [log^2 n / n, 1]`` so that at least
    ``log^2 n`` nodes are non-faulty.
    """
    if n < 2:
        raise ConfigurationError(f"network needs at least 2 nodes, got {n}")
    return min(1.0, (math.log(n) ** 2) / n)


def max_faulty(n: int, alpha: float) -> int:
    """Maximum number of faulty nodes: ``floor((1 - alpha) * n)``.

    Also clamped to ``n - ceil(log^2 n)``, the paper's absolute resilience
    ceiling (``f <= n - log^2 n``).
    """
    by_alpha = math.floor((1.0 - alpha) * n)
    ceiling = n - math.ceil(math.log(n) ** 2) if n > 2 else 0
    return max(0, min(by_alpha, ceiling))


@dataclass(frozen=True)
class Params:
    """Sampling parameters for one run of the paper's algorithms.

    Parameters
    ----------
    n:
        Network size (complete graph on ``n`` nodes).
    alpha:
        Guaranteed fraction of non-faulty nodes, in ``[log^2 n / n, 1]``.
    candidate_factor:
        The constant ``c`` in the candidate probability ``c log n/(alpha n)``
        (paper: 6).
    referee_factor:
        The constant ``c`` in the referee sample size
        ``c * sqrt(n log n / alpha)`` (paper: 2).
    iteration_factor:
        Multiplier on ``log n / alpha`` for the number of protocol
        iterations.  The proof of Theorem 4.1 needs at least one iteration
        per candidate crash, and there are at most ``12 log n/alpha``
        candidates w.h.p. (Lemma 1), hence the default 12.
    rank_exponent:
        Ranks are drawn uniformly from ``[1, n**rank_exponent]`` (paper: 4,
        which makes all ranks distinct w.h.p.).
    strict:
        If True (default), reject parameters outside the paper's validity
        range instead of clamping.
    """

    n: int
    alpha: float
    candidate_factor: float = 6.0
    referee_factor: float = 2.0
    iteration_factor: float = 12.0
    rank_exponent: int = 4
    strict: bool = True

    def __post_init__(self) -> None:
        if self.n < MIN_NETWORK_SIZE:
            raise ConfigurationError(
                f"n must be >= {MIN_NETWORK_SIZE}, got {self.n}"
            )
        if not 0.0 < self.alpha <= 1.0:
            raise ConfigurationError(f"alpha must be in (0, 1], got {self.alpha}")
        if self.strict and self.alpha < alpha_floor(self.n):
            raise ConfigurationError(
                f"alpha={self.alpha} below model floor "
                f"log^2(n)/n={alpha_floor(self.n):.6f} for n={self.n}"
            )
        if self.candidate_factor <= 0 or self.referee_factor <= 0:
            raise ConfigurationError("sampling factors must be positive")
        if self.iteration_factor <= 0:
            raise ConfigurationError("iteration_factor must be positive")

    # ------------------------------------------------------------------
    # Sampling quantities (Section IV-A / V-A)
    # ------------------------------------------------------------------

    @property
    def log_n(self) -> float:
        """Natural log of the network size."""
        return math.log(self.n)

    @property
    def candidate_probability(self) -> float:
        """Per-node probability of self-selecting into the committee C.

        Paper: ``6 log n / (alpha n)`` (Lemma 1), capped at 1.
        """
        return min(1.0, self.candidate_factor * self.log_n / (self.alpha * self.n))

    @property
    def expected_candidates(self) -> float:
        """Expected committee size ``|C|`` (Lemma 1: ``Theta(log n/alpha)``)."""
        return self.candidate_probability * self.n

    @property
    def referee_count(self) -> int:
        """Number of referee nodes each candidate samples.

        Paper: ``2 (n log n / alpha)^(1/2)`` (Lemma 3), capped at ``n - 1``
        (a node has only ``n - 1`` ports).
        """
        raw = self.referee_factor * math.sqrt(self.n * self.log_n / self.alpha)
        return min(self.n - 1, max(1, math.ceil(raw)))

    @property
    def iterations(self) -> int:
        """Number of protocol iterations, ``Theta(log n / alpha)``."""
        return max(1, math.ceil(self.iteration_factor * self.log_n / self.alpha))

    @property
    def rank_space(self) -> int:
        """Size of the rank universe ``n**rank_exponent`` (Section IV-A)."""
        return self.n**self.rank_exponent

    @property
    def max_faulty(self) -> int:
        """Maximum number of faulty nodes this parameterisation tolerates."""
        return max_faulty(self.n, self.alpha)

    # ------------------------------------------------------------------
    # Closed-form bounds, for the experiment harness
    # ------------------------------------------------------------------

    def le_message_bound(self) -> float:
        """Theorem 4.1 upper bound: ``n^1/2 log^{5/2} n / alpha^{5/2}``.

        Returned without the hidden constant; the harness fits the constant.
        """
        return math.sqrt(self.n) * self.log_n**2.5 / self.alpha**2.5

    def agreement_message_bound(self) -> float:
        """Theorem 5.1 upper bound: ``n^1/2 log^{3/2} n / alpha^{3/2}``."""
        return math.sqrt(self.n) * self.log_n**1.5 / self.alpha**1.5

    def round_bound(self) -> float:
        """Round bound ``log n / alpha`` shared by Theorems 4.1 and 5.1."""
        return self.log_n / self.alpha

    def lower_bound_messages(self) -> float:
        """Theorems 4.2/5.2 lower bound: ``n^1/2 / alpha^{3/2}``."""
        return math.sqrt(self.n) / self.alpha**1.5

    def explicit_message_bound(self) -> float:
        """Message bound of the explicit extensions: ``n log n / alpha``."""
        return self.n * self.log_n / self.alpha

    # ------------------------------------------------------------------
    # Sublinearity thresholds (Section I-A)
    # ------------------------------------------------------------------

    def le_sublinear(self) -> bool:
        """True iff the LE bound is sublinear: ``alpha > log n / n^{1/5}``."""
        return self.alpha > self.log_n / self.n**0.2

    def agreement_sublinear(self) -> bool:
        """True iff the agreement bound is sublinear:
        ``alpha > log n / n^{1/3}``."""
        return self.alpha > self.log_n / self.n ** (1.0 / 3.0)

    # ------------------------------------------------------------------

    def with_(self, **changes: object) -> "Params":
        """Return a copy with the given fields replaced."""
        return replace(self, **changes)  # type: ignore[arg-type]


@dataclass(frozen=True)
class CongestBudget:
    """CONGEST message-size budget: ``bits_factor * log2(n)`` bits per edge
    per round (paper, Section II)."""

    n: int
    bits_factor: float = 16.0

    @property
    def bits_per_message(self) -> int:
        """Maximum payload size of a single message, in bits."""
        return max(8, math.ceil(self.bits_factor * math.log2(self.n)))


def default_params(n: int, alpha: float = 0.5, **overrides: object) -> Params:
    """Convenience constructor with the paper's default constants."""
    return Params(n=n, alpha=alpha, **overrides)  # type: ignore[arg-type]


def fault_counts(n: int, alpha: float) -> dict:
    """Summary of the fault budget for ``(n, alpha)`` as a plain dict."""
    return {
        "n": n,
        "alpha": alpha,
        "alpha_floor": alpha_floor(n),
        "max_faulty": max_faulty(n, alpha),
        "min_nonfaulty": n - max_faulty(n, alpha),
    }
