"""Message/bit/round accounting.

``Metrics`` counts what the paper's complexity measures count:

* ``messages_sent`` — every message placed on a wire, including messages
  lost to a crash in the sender's crash round (they were sent);
* ``bits_sent`` — the CONGEST bit total of those messages;
* ``messages_delivered`` — messages that actually reached their receiver;
* ``rounds`` — the last round the engine actually executed (the engine may
  fast-forward quiescent suffixes, so this can be smaller than the
  requested ``horizon``); ``rounds_executed`` counts executed rounds and
  always equals ``rounds`` under the current engine (rounds are executed
  contiguously from 1).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List

from ..types import NodeId


@dataclass
class Metrics:
    """Mutable counters filled in by the engine during a run."""

    messages_sent: int = 0
    messages_delivered: int = 0
    messages_dropped: int = 0
    bits_sent: int = 0
    rounds: int = 0
    horizon: int = 0
    rounds_executed: int = 0
    crashes: int = 0
    per_round_messages: List[int] = field(default_factory=list)
    per_kind_messages: "Counter[str]" = field(default_factory=Counter)
    per_node_sent: Dict[NodeId, int] = field(default_factory=dict)

    def record_send(self, src: NodeId, kind: str, bits: int) -> None:
        """Record one message placed on a wire."""
        self.messages_sent += 1
        self.bits_sent += bits
        self.per_kind_messages[kind] += 1
        self.per_node_sent[src] = self.per_node_sent.get(src, 0) + 1
        if self.per_round_messages:
            self.per_round_messages[-1] += 1

    def record_delivery(self) -> None:
        """Record one message reaching its receiver."""
        self.messages_delivered += 1

    def record_drop(self) -> None:
        """Record one message lost to the sender's crash."""
        self.messages_dropped += 1

    def record_crash(self) -> None:
        """Record one node crashing."""
        self.crashes += 1

    def begin_round(self) -> None:
        """Open the accounting bucket for a new executed round."""
        self.rounds_executed += 1
        self.per_round_messages.append(0)

    @property
    def max_round_messages(self) -> int:
        """Largest number of messages sent in any single round."""
        return max(self.per_round_messages, default=0)

    def summary(self) -> Dict[str, int]:
        """Headline counters as a plain dict (for tables and logs)."""
        return {
            "messages_sent": self.messages_sent,
            "messages_delivered": self.messages_delivered,
            "messages_dropped": self.messages_dropped,
            "bits_sent": self.bits_sent,
            "rounds": self.rounds,
            "horizon": self.horizon,
            "rounds_executed": self.rounds_executed,
            "crashes": self.crashes,
        }
