"""Message/bit/round accounting.

``Metrics`` counts what the paper's complexity measures count:

* ``messages_sent`` — every message placed on a wire, including messages
  lost to a crash in the sender's crash round (they were sent);
* ``bits_sent`` — the CONGEST bit total of those messages;
* ``messages_delivered`` — messages that actually reached their receiver;
* ``messages_dropped`` — messages lost by the adversary's keep-filter in
  their sender's crash round;
* ``messages_expired`` — messages whose receiver had already crashed by
  delivery time (they were sent, but nobody was there to receive them);
* ``rounds`` — the last round the engine actually executed (the engine may
  fast-forward quiescent suffixes, so this can be smaller than the
  requested ``horizon``); ``rounds_executed`` counts executed rounds and
  always equals ``rounds`` under the current engine (rounds are executed
  contiguously from 1).

Every run satisfies the exact **conservation identity**

    ``messages_sent == messages_delivered + messages_dropped +
    messages_expired``

and the per-round attribution invariant

    ``sum(per_round_messages) == messages_sent``

both enforced on traced runs by :func:`repro.sim.validate.validate_run`.
When a run was profiled (:class:`repro.obs.PhaseTimers`),
``phase_seconds`` holds the accumulated wall-clock per engine phase.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Iterable, List

from ..types import NodeId


@dataclass
class Metrics:
    """Mutable counters filled in by the engine during a run."""

    messages_sent: int = 0
    messages_delivered: int = 0
    messages_dropped: int = 0
    messages_expired: int = 0
    bits_sent: int = 0
    rounds: int = 0
    horizon: int = 0
    rounds_executed: int = 0
    crashes: int = 0
    per_round_messages: List[int] = field(default_factory=list)
    per_kind_messages: "Counter[str]" = field(default_factory=Counter)
    per_node_sent: Dict[NodeId, int] = field(default_factory=dict)
    #: Histogram ``latency -> count`` over delivered messages, where
    #: latency is ``round_received - round_sent``.  Synchronous runs put
    #: everything in bucket 1; a Δ-bounded schedule spreads deliveries over
    #: ``[1, 1 + Δ]``.  Dropped/expired messages have no latency.
    delivery_latency: "Counter[int]" = field(default_factory=Counter)
    #: phase -> accumulated wall-clock seconds (empty unless the run was
    #: profiled with :class:`repro.obs.PhaseTimers`).
    phase_seconds: Dict[str, float] = field(default_factory=dict)

    def record_send(self, src: NodeId, kind: str, bits: int) -> None:
        """Record one message placed on a wire.

        Raises ``ValueError`` when no round is open: a send recorded
        before the first :meth:`begin_round` would silently lose its
        per-round attribution and break the invariant
        ``sum(per_round_messages) == messages_sent``.
        """
        if not self.per_round_messages:
            raise ValueError(
                "record_send() before begin_round(): open a round first so "
                "the send keeps its per-round attribution "
                "(sum(per_round_messages) must equal messages_sent)"
            )
        self.messages_sent += 1
        self.bits_sent += bits
        self.per_kind_messages[kind] += 1
        self.per_node_sent[src] = self.per_node_sent.get(src, 0) + 1
        self.per_round_messages[-1] += 1

    def record_delivery(self) -> None:
        """Record one message reaching its receiver."""
        self.messages_delivered += 1

    def record_drop(self) -> None:
        """Record one message lost to the sender's crash."""
        self.messages_dropped += 1

    def record_expiry(self) -> None:
        """Record one message whose receiver was already dead."""
        self.messages_expired += 1

    def record_crash(self) -> None:
        """Record one node crashing."""
        self.crashes += 1

    def begin_round(self) -> None:
        """Open the accounting bucket for a new executed round."""
        self.rounds_executed += 1
        self.per_round_messages.append(0)

    @property
    def max_round_messages(self) -> int:
        """Largest number of messages sent in any single round."""
        return max(self.per_round_messages, default=0)

    @property
    def max_delivery_latency(self) -> int:
        """Worst observed delivery latency in rounds (0 when nothing
        was delivered)."""
        return max(self.delivery_latency, default=0)

    @classmethod
    def merge(cls, parts: Iterable["Metrics"]) -> "Metrics":
        """Fold per-trial metrics into one campaign-level ``Metrics``.

        Parallel workers return one lightweight ``Metrics`` per trial; the
        parent folds them with this classmethod.  Semantics:

        * message/bit/crash counters are summed;
        * ``per_kind_messages``, ``per_node_sent``, and ``phase_seconds``
          are summed key-wise;
        * ``per_round_messages[r]`` is the sum of round ``r``'s messages
          across all parts (ragged tails are zero-padded), so
          ``max_round_messages`` is the busiest round of the *combined*
          campaign;
        * ``rounds``/``horizon``/``rounds_executed`` take the maximum (the
          longest constituent run), since trials run concurrently rather
          than back-to-back.

        Folding is associative: ``merge([merge([a, b]), c])`` equals
        ``merge([a, b, c])``.
        """
        merged = cls()
        per_round: List[int] = []
        for part in parts:
            merged.messages_sent += part.messages_sent
            merged.messages_delivered += part.messages_delivered
            merged.messages_dropped += part.messages_dropped
            merged.messages_expired += part.messages_expired
            merged.bits_sent += part.bits_sent
            merged.crashes += part.crashes
            merged.rounds = max(merged.rounds, part.rounds)
            merged.horizon = max(merged.horizon, part.horizon)
            merged.rounds_executed = max(
                merged.rounds_executed, part.rounds_executed
            )
            merged.per_kind_messages.update(part.per_kind_messages)
            merged.delivery_latency.update(part.delivery_latency)
            for node, count in part.per_node_sent.items():
                merged.per_node_sent[node] = (
                    merged.per_node_sent.get(node, 0) + count
                )
            for phase, seconds in part.phase_seconds.items():
                merged.phase_seconds[phase] = (
                    merged.phase_seconds.get(phase, 0.0) + seconds
                )
            if len(part.per_round_messages) > len(per_round):
                per_round.extend(
                    [0] * (len(part.per_round_messages) - len(per_round))
                )
            for index, count in enumerate(part.per_round_messages):
                per_round[index] += count
        merged.per_round_messages = per_round
        return merged

    def summary(self) -> Dict[str, object]:
        """Headline counters as a plain dict (for tables and logs).

        ``phase_seconds`` appears only for profiled runs, so unprofiled
        tables keep their compact shape.
        """
        summary: Dict[str, object] = {
            "messages_sent": self.messages_sent,
            "messages_delivered": self.messages_delivered,
            "messages_dropped": self.messages_dropped,
            "messages_expired": self.messages_expired,
            "bits_sent": self.bits_sent,
            "rounds": self.rounds,
            "horizon": self.horizon,
            "rounds_executed": self.rounds_executed,
            "crashes": self.crashes,
        }
        if self.phase_seconds:
            summary["phase_seconds"] = dict(self.phase_seconds)
        # Only interesting under partial synchrony: a purely synchronous
        # histogram ({1: delivered}) is implied by messages_delivered, and
        # omitting it keeps legacy table shapes unchanged.
        if any(latency != 1 for latency in self.delivery_latency):
            summary["delivery_latency"] = dict(
                sorted(self.delivery_latency.items())
            )
        return summary
