"""Transport-agnostic per-node runtime (the sim/wire seam).

:class:`repro.sim.network.Network` interleaves *per-node* protocol logic
(step, transmit, wake bookkeeping) with *global* logic (crash planning,
delivery, accounting).  The real-network backend (:mod:`repro.net`) needs
exactly the per-node half, running inside one OS process per node, while a
coordinator replays the global half over TCP.

:class:`NodeRuntime` extracts that per-node half without forking the
engine: it reuses the real :class:`~repro.sim.node.Context` (so KT0
enforcement, CONGEST checks, RNG streams, and every Protocol subclass
behave bit-for-bit as in the sim) behind a minimal duck-typed network
shim.  The shim exposes the only two members ``Context`` reads —
``n`` and ``_enqueue`` — so the engine's hot loop is untouched.

Faithfulness contract (mirrors ``Network._execute_round``):

* a node steps in round ``r`` iff its scheduled wake is ``r`` or it has
  deliveries and is not halted (:meth:`NodeRuntime.should_step`);
* a step sets ``ctx.round = r`` and defaults the next wake to ``r + 1``,
  records delivery senders as known, runs ``on_start`` in round 1 before
  ``on_round``, and preserves a protocol-set ``wake_at``/``idle``
  (:meth:`NodeRuntime.step`);
* transmission pops one queued message per ordered edge per round in
  destination insertion order, independent of whether the node stepped
  (:meth:`NodeRuntime.transmit`);
* ``on_stop`` runs once with ``ctx.round`` set to the last executed round
  (:meth:`NodeRuntime.stop`).

Everything here is a pure function of ``(protocol, rng, inputs)`` — no
clocks, no ambient randomness — so a wire run seeded like a sim run makes
identical protocol decisions.
"""

from __future__ import annotations

import random
from collections import deque
from typing import Deque, Dict, List, Optional

from ..errors import CongestViolation
from ..params import CongestBudget
from ..types import Knowledge, NodeId, Round
from .message import Delivery, Envelope, Message
from .node import NEVER, Context, Protocol


class _NetworkShim:
    """The two-member surface of ``Network`` that ``Context`` touches."""

    __slots__ = ("n", "_runtime")

    def __init__(self, n: int, runtime: "NodeRuntime") -> None:
        self.n = n
        self._runtime = runtime

    def _enqueue(self, src: NodeId, dst: NodeId, message: Message) -> None:
        self._runtime._enqueue(src, dst, message)


class NodeRuntime:
    """One node's engine-faithful state machine, transport not included.

    The caller (the sim-replica test driver or a :mod:`repro.net` node
    process) owns the round loop; this class owns everything the engine
    would do *for this node* within a round.
    """

    def __init__(
        self,
        node_id: NodeId,
        n: int,
        protocol: Protocol,
        rng: random.Random,
        *,
        knowledge: Knowledge = Knowledge.KT0,
        congest: Optional[CongestBudget] = None,
        enforce_congest: bool = True,
    ) -> None:
        self.node_id = node_id
        self.n = n
        self.protocol = protocol
        self._congest = congest or CongestBudget(n)
        self._bits_cap = self._congest.bits_per_message
        self._enforce_congest = enforce_congest
        shim = _NetworkShim(n, self)
        self.ctx = Context(
            shim,  # type: ignore[arg-type]  # duck-typed Network surface
            node_id,
            rng,
            enforce_kt0=knowledge is Knowledge.KT0,
        )
        if knowledge is Knowledge.KT1:
            self.ctx._known.update(u for u in range(n) if u != node_id)
        # Per-destination FIFO queues, insertion-ordered exactly like the
        # engine's ``_queues[src]`` dict (transmit order must match).
        self._queues: Dict[NodeId, Deque[Message]] = {}
        self._queued_total = 0
        self._stopped = False

    # ------------------------------------------------------------------
    # Shim callback
    # ------------------------------------------------------------------

    def _enqueue(self, src: NodeId, dst: NodeId, message: Message) -> None:
        if self._enforce_congest and message.bits > self._bits_cap:
            raise CongestViolation(
                f"message {message.kind!r} is {message.bits} bits; CONGEST "
                f"budget is {self._bits_cap} bits for n={self.n}"
            )
        queue = self._queues.get(dst)
        if queue is None:
            self._queues[dst] = queue = deque()
        queue.append(message)
        self._queued_total += 1

    # ------------------------------------------------------------------
    # Engine-replica round API
    # ------------------------------------------------------------------

    @property
    def next_wake(self) -> Round:
        """The node's scheduled wake round (``NEVER`` = idle/halted)."""
        return self.ctx._next_wake

    @property
    def halted(self) -> bool:
        """True once the protocol called :meth:`Context.halt`."""
        return self.ctx._halted

    @property
    def backlog(self) -> int:
        """Messages queued but not yet transmitted."""
        return self._queued_total

    def should_step(self, round_: Round, has_inbox: bool) -> bool:
        """Whether the engine would run ``on_round`` this round.

        Mirrors the wake-heap pop (a live entry has ``_next_wake ==
        round_``) plus the delivery-wake rule (a delivery wakes an idle
        node but never a halted one).
        """
        if self.ctx._next_wake == round_:
            return True
        return has_inbox and not self.ctx._halted

    def step(self, round_: Round, inbox: List[Delivery]) -> None:
        """Run the protocol callback for ``round_`` (caller checked
        :meth:`should_step`).

        ``inbox`` must be ordered ascending by sender id — the order the
        engine's ascending-sender transmit phase produces.
        """
        ctx = self.ctx
        ctx.round = round_
        ctx._next_wake = round_ + 1  # stay active by default
        if inbox:
            known_add = ctx._known.add
            for delivery in inbox:
                known_add(delivery.sender)
        if round_ == 1:
            self.protocol.on_start(ctx)
        self.protocol.on_round(ctx, inbox)

    def transmit(self, round_: Round) -> List[Envelope]:
        """Pop one queued message per ordered edge onto the wire.

        Runs every round the node is alive — a backlog drains even while
        the node idles or after it halts, exactly as in the engine (the
        pending-sender scan is independent of the step phase).
        """
        if not self._queues:
            return []
        sent: List[Envelope] = []
        emptied: List[NodeId] = []
        for dst, queue in self._queues.items():
            sent.append(Envelope(self.node_id, dst, queue.popleft(), round_))
            self._queued_total -= 1
            if not queue:
                emptied.append(dst)
        for dst in emptied:
            del self._queues[dst]
        return sent

    def discard_backlog(self) -> int:
        """Drop all queued messages (the engine does this on crash)."""
        dropped = self._queued_total
        self._queues.clear()
        self._queued_total = 0
        return dropped

    def stop(self, last_round: Round) -> None:
        """Run ``on_stop`` with the last executed round (alive nodes)."""
        if self._stopped:
            return
        self._stopped = True
        self.ctx.round = last_round
        self.protocol.on_stop(self.ctx)
