"""Synchronous crash-fault complete-network simulator (the paper's model).

This subpackage implements the machine of Section II of the paper:

* a fully-connected synchronous network of ``n`` nodes;
* anonymity (KT0): nodes address each other only through uniformly sampled
  ports or by replying to the sender of a received message;
* CONGEST: at most one message of ``O(log n)`` bits per ordered edge per
  round, enforced by per-edge FIFO queues and payload bit-sizing;
* crash faults: a static adversary picks the faulty set up-front and
  adaptively chooses crash rounds; in a node's crash round an arbitrary
  adversary-chosen subset of its outgoing messages is lost;
* optionally, bounded-delay partial synchrony: a
  :class:`~repro.sim.delivery.DeliverySchedule` lets the adversary hold
  any message in flight up to Δ extra rounds (Δ=0 — the default — is the
  synchronous model above, byte-identical to the classic engine).

Public surface: :class:`Network`, :class:`Protocol`, :class:`Context`,
:class:`Message`, :class:`Metrics`, :class:`Trace`,
:class:`DeliverySchedule`.
"""

from .delivery import (
    SCHEDULE_KINDS,
    SYNCHRONOUS,
    DeliverySchedule,
    SynchronousDelivery,
    TargetedDelay,
    UniformDelay,
    schedule_from_dict,
)
from .message import Delivery, Envelope, Message, payload_bits
from .metrics import Metrics
from .network import Network, RunResult
from .node import Context, Protocol
from .replay import RoundSummary, busiest_round, replay, timeline_table
from .trace import Trace, TraceEvent
from .validate import validate_run

__all__ = [
    "Context",
    "Delivery",
    "DeliverySchedule",
    "Envelope",
    "Message",
    "Metrics",
    "Network",
    "Protocol",
    "RoundSummary",
    "RunResult",
    "SCHEDULE_KINDS",
    "SYNCHRONOUS",
    "SynchronousDelivery",
    "TargetedDelay",
    "Trace",
    "TraceEvent",
    "UniformDelay",
    "busiest_round",
    "payload_bits",
    "replay",
    "schedule_from_dict",
    "timeline_table",
    "validate_run",
]
