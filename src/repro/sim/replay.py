"""Round-by-round replay of an execution trace (debugging aid).

``replay(trace)`` folds a :class:`~repro.sim.trace.Trace` into one
:class:`RoundSummary` per executed round — message counts by kind, active
senders, crashes — so protocol behaviour can be inspected without
re-running anything; :func:`timeline_table` renders the result as an
aligned text table.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Set

from ..types import NodeId, Round
from .trace import Trace


@dataclass
class RoundSummary:
    """Everything that happened in one round."""

    round: Round
    sent: int = 0
    delivered: int = 0
    dropped: int = 0
    by_kind: "Counter[str]" = field(default_factory=Counter)
    senders: Set[NodeId] = field(default_factory=set)
    crashed: List[NodeId] = field(default_factory=list)

    def as_row(self) -> Dict[str, object]:
        """Flat form for :func:`repro.analysis.tables.format_table`."""
        kinds = ", ".join(
            f"{kind}:{count}" for kind, count in sorted(self.by_kind.items())
        )
        return {
            "round": self.round,
            "sent": self.sent,
            "delivered": self.delivered,
            "dropped": self.dropped,
            "senders": len(self.senders),
            "crashed": len(self.crashed),
            "kinds": kinds,
        }


def replay(trace: Trace) -> List[RoundSummary]:
    """Fold a trace into per-round summaries (rounds with events only)."""
    rounds: Dict[Round, RoundSummary] = {}

    def bucket(round_: Round) -> RoundSummary:
        summary = rounds.get(round_)
        if summary is None:
            summary = rounds[round_] = RoundSummary(round=round_)
        return summary

    for event in trace.events:
        summary = bucket(event.round)
        if event.kind == "send":
            summary.sent += 1
            summary.senders.add(event.src)
            if event.message_kind:
                summary.by_kind[event.message_kind] += 1
        elif event.kind == "deliver":
            summary.delivered += 1
        elif event.kind == "drop":
            summary.dropped += 1
        elif event.kind == "crash":
            summary.crashed.append(event.src)
    return [rounds[r] for r in sorted(rounds)]


def timeline_table(trace: Trace, limit: int = 0) -> str:
    """Render the replay as an aligned text table (``limit`` rows, 0=all)."""
    from ..analysis.tables import format_table

    summaries = replay(trace)
    if limit:
        summaries = summaries[:limit]
    return format_table(
        [s.as_row() for s in summaries],
        columns=["round", "sent", "delivered", "dropped", "senders", "crashed", "kinds"],
        title="execution timeline",
    )


def busiest_round(trace: Trace) -> RoundSummary:
    """The round with the most sends (useful for CONGEST-pressure checks)."""
    summaries = replay(trace)
    if not summaries:
        raise ValueError("trace is empty")
    return max(summaries, key=lambda s: s.sent)
