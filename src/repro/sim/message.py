"""Message primitives and CONGEST payload sizing.

A protocol-level :class:`Message` is a ``(kind, fields)`` pair; ``kind`` is
a short string tag and ``fields`` a tuple of small integers (or ``None``
for the paper's null value).  This is deliberately restrictive: it makes
the CONGEST bit-size of every payload computable, so the engine can verify
that protocols never exceed the per-edge budget.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Tuple

from ..types import NodeId, Round

#: Field values are small ints or None (the paper's ``bot`` marker).
Field = Optional[int]


@dataclass(frozen=True)
class Message:
    """A protocol-level message: a tagged tuple of small integer fields."""

    kind: str
    fields: Tuple[Field, ...] = ()

    def __post_init__(self) -> None:
        if not self.kind:
            raise ValueError("message kind must be non-empty")
        for value in self.fields:
            if value is not None and not isinstance(value, int):
                raise TypeError(
                    f"message fields must be int or None, got {value!r}"
                )
        # Bit size is consulted on every enqueue (CONGEST check) and every
        # wire send (accounting); compute it once.
        object.__setattr__(self, "_bits", payload_bits(self))

    @property
    def bits(self) -> int:
        """CONGEST size of this message in bits (see :func:`payload_bits`)."""
        return self._bits  # type: ignore[attr-defined]

    def field(self, index: int) -> Field:
        """Return field ``index`` (convenience accessor)."""
        return self.fields[index]


def payload_bits(message: Message) -> int:
    """Bit-size of a message under a natural fixed-point encoding.

    * the kind tag costs 8 bits (protocols use a handful of kinds);
    * each integer field costs ``ceil(log2(|v| + 2))`` bits plus a
      presence bit; ``None`` costs the presence bit only.

    The exact encoding does not matter for the reproduction; what matters
    is that a rank in ``[1, n^4]`` costs ``Theta(log n)`` bits so that the
    engine's CONGEST check is meaningful.
    """
    bits = 8
    for value in message.fields:
        bits += 1
        if value is not None:
            bits += max(1, math.ceil(math.log2(abs(value) + 2)))
    return bits


@dataclass(frozen=True)
class Envelope:
    """A message in flight on a specific ordered edge in a specific round."""

    src: NodeId
    dst: NodeId
    message: Message
    round_sent: Round

    @property
    def bits(self) -> int:
        """CONGEST size of the enclosed message."""
        return self.message.bits


@dataclass(frozen=True)
class Delivery:
    """A message as seen by its receiver.

    ``sender`` is the arrival port: under KT0 it is the only handle the
    receiver gains, and it may be used as a send address (reply).
    """

    sender: NodeId
    message: Message
    round_received: Round

    @property
    def kind(self) -> str:
        """Kind tag of the enclosed message."""
        return self.message.kind

    @property
    def fields(self) -> Tuple[Field, ...]:
        """Fields of the enclosed message."""
        return self.message.fields
