"""Message primitives and CONGEST payload sizing.

A protocol-level :class:`Message` is a ``(kind, fields)`` pair; ``kind`` is
a short string tag and ``fields`` a tuple of small integers (or ``None``
for the paper's null value).  This is deliberately restrictive: it makes
the CONGEST bit-size of every payload computable, so the engine can verify
that protocols never exceed the per-edge budget.

These classes sit on the engine's hottest allocation path (every send
constructs a :class:`Message` and an :class:`Envelope`, every receive a
:class:`Delivery`), so they are hand-written ``__slots__`` classes rather
than dataclasses: no per-instance ``__dict__``, no ``object.__setattr__``
per field, and the bit size of a ``(kind, fields)`` pair is memoised in a
module-level cache so repeated identical payloads skip both validation
and the log2 arithmetic.
"""

from __future__ import annotations

import math
from typing import Optional, Tuple

from ..types import NodeId, Round

#: Field values are small ints or None (the paper's ``bot`` marker).
Field = Optional[int]

#: Memoised ``(kind, fields) -> bits`` (validated payloads only).  Bounded:
#: a pathological campaign with millions of distinct payloads resets it
#: rather than growing without limit.
_BITS_CACHE: dict = {}
_BITS_CACHE_MAX = 1 << 16


def _validated_bits(kind: str, fields: Tuple[Field, ...]) -> int:
    """Validate a payload and return its CONGEST bit size (uncached path)."""
    if not kind:
        raise ValueError("message kind must be non-empty")
    bits = 8
    for value in fields:
        bits += 1
        if value is None:
            continue
        if not isinstance(value, int):
            raise TypeError(f"message fields must be int or None, got {value!r}")
        bits += max(1, math.ceil(math.log2(abs(value) + 2)))
    return bits


class Message:
    """A protocol-level message: a tagged tuple of small integer fields."""

    __slots__ = ("kind", "fields", "bits")

    def __init__(self, kind: str, fields: Tuple[Field, ...] = ()) -> None:
        # Bit size is consulted on every enqueue (CONGEST check) and every
        # wire send (accounting); a cache hit also proves the payload was
        # already validated.
        try:
            bits = _BITS_CACHE.get((kind, fields))
        except TypeError:  # unhashable fields container; validate directly
            bits = None
            self.kind = kind
            self.fields = fields
            self.bits = _validated_bits(kind, fields)
            return
        if bits is None:
            bits = _validated_bits(kind, fields)
            if len(_BITS_CACHE) >= _BITS_CACHE_MAX:
                _BITS_CACHE.clear()
            _BITS_CACHE[(kind, fields)] = bits
        self.kind = kind
        self.fields = fields
        self.bits = bits

    def field(self, index: int) -> Field:
        """Return field ``index`` (convenience accessor)."""
        return self.fields[index]

    def __repr__(self) -> str:
        return f"Message(kind={self.kind!r}, fields={self.fields!r})"

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Message):
            return self.kind == other.kind and self.fields == other.fields
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self.kind, self.fields))

    # __slots__ classes need explicit pickling support on some protocols;
    # reconstructing through __init__ also re-validates and re-memoises.
    def __reduce__(self):
        return (Message, (self.kind, self.fields))


def payload_bits(message: Message) -> int:
    """Bit-size of a message under a natural fixed-point encoding.

    * the kind tag costs 8 bits (protocols use a handful of kinds);
    * each integer field costs ``ceil(log2(|v| + 2))`` bits plus a
      presence bit; ``None`` costs the presence bit only.

    The exact encoding does not matter for the reproduction; what matters
    is that a rank in ``[1, n^4]`` costs ``Theta(log n)`` bits so that the
    engine's CONGEST check is meaningful.
    """
    return _validated_bits(message.kind, tuple(message.fields))


class Envelope:
    """A message in flight on a specific ordered edge in a specific round."""

    __slots__ = ("src", "dst", "message", "round_sent")

    def __init__(
        self, src: NodeId, dst: NodeId, message: Message, round_sent: Round
    ) -> None:
        self.src = src
        self.dst = dst
        self.message = message
        self.round_sent = round_sent

    @property
    def bits(self) -> int:
        """CONGEST size of the enclosed message."""
        return self.message.bits

    def __repr__(self) -> str:
        return (
            f"Envelope(src={self.src!r}, dst={self.dst!r}, "
            f"message={self.message!r}, round_sent={self.round_sent!r})"
        )

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Envelope):
            return (
                self.src == other.src
                and self.dst == other.dst
                and self.message == other.message
                and self.round_sent == other.round_sent
            )
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self.src, self.dst, self.message, self.round_sent))

    def __reduce__(self):
        return (Envelope, (self.src, self.dst, self.message, self.round_sent))


class Delivery:
    """A message as seen by its receiver.

    ``sender`` is the arrival port: under KT0 it is the only handle the
    receiver gains, and it may be used as a send address (reply).
    ``round_received`` is the round the receiver actually saw the message:
    ``round_sent + 1`` in the synchronous model, anywhere in
    ``[round_sent + 1, round_sent + 1 + Δ]`` under a Δ-bounded
    :class:`~repro.sim.delivery.DeliverySchedule` — protocols that care
    about age must read it rather than assume one-round latency.
    """

    __slots__ = ("sender", "message", "round_received")

    def __init__(
        self, sender: NodeId, message: Message, round_received: Round
    ) -> None:
        self.sender = sender
        self.message = message
        self.round_received = round_received

    @property
    def kind(self) -> str:
        """Kind tag of the enclosed message."""
        return self.message.kind

    @property
    def fields(self) -> Tuple[Field, ...]:
        """Fields of the enclosed message."""
        return self.message.fields

    def __repr__(self) -> str:
        return (
            f"Delivery(sender={self.sender!r}, message={self.message!r}, "
            f"round_received={self.round_received!r})"
        )

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Delivery):
            return (
                self.sender == other.sender
                and self.message == other.message
                and self.round_received == other.round_received
            )
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self.sender, self.message, self.round_received))

    def __reduce__(self):
        return (Delivery, (self.sender, self.message, self.round_received))
