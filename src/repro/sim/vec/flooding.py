"""Vectorized flooding-consensus engine (exact mirror of the reference run).

The O(n^2) baseline floods the complete graph, so materialising edges is
exactly the cost the vec backend exists to avoid.  Two observations make
the run arithmetic instead:

* with binary inputs, every re-broadcast after round 1 carries ``0`` (an
  estimate only ever improves ``1 -> 0``), so "node u hears a zero in
  round r" is pure set logic over the round's zero-broadcaster set: one
  surviving non-victim zero-sender reaches *every* alive node, and victim
  senders reach everyone outside their per-envelope drop set;
* a broadcast is ``n - 1`` identical envelopes, so per-sender
  delivered/expired counts are closed-form (``n - 1`` minus the crashed
  destinations minus the dropped ones) rather than per-envelope loops.

Crash victims still get real per-envelope treatment: their ``n - 1``
envelope batch is materialised in reference wire order (destinations
``0..n-1`` skipping self) so ``CrashOrder.keep`` consumes the adversary
rng identically.  Queues never backlog (every enqueue transmits the same
round), so there are no FIFOs at all.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from ...baselines.flooding import MSG_FLOOD
from ...faults.adversary import Adversary
from ...rng import RngFactory
from ...sim.message import Envelope, Message
from ...sim.network import RunResult
from ...types import NodeId, Round
from ._support import VecEngineBase, np_module

_NO_CRASH = 1 << 62

#: Wire size of one FLD_VAL message: base 8 + presence 1 + field_bits(bit).
_FLOOD_BITS = {0: 10, 1: 11}


class _FloodStub:
    """Protocol stand-in for :func:`baselines.flooding.flooding_consensus`."""

    __slots__ = ("decided", "estimate")

    def __init__(self, decided: Optional[int], estimate: int) -> None:
        self.decided = decided
        self.estimate = estimate


class _FloodingVec(VecEngineBase):
    """One flooding-consensus run, arithmetic form."""

    def __init__(
        self,
        n: int,
        inputs: Sequence[int],
        seed: int,
        adversary: Adversary,
        max_faulty: int,
        rounds: int,
    ) -> None:
        np = np_module()
        self.np = np
        self.n = n
        self.inputs = list(inputs)
        self.rounds = rounds
        self.total_rounds = rounds + 2
        # The protocol draws nothing from the node streams; only the
        # adversary stream is consumed (RngFactory keeps the derivation
        # identical to the reference network).
        self._init_adversary(seed, adversary, max_faulty, self.inputs)
        self.rngs = RngFactory(seed)
        self.crash_round = np.full(n, _NO_CRASH, dtype=np.int64)
        self.est = np.array(self.inputs, dtype=np.int64)
        #: Improvement facts staged by the previous round's delivery.
        self.saw_zero = np.zeros(n, dtype=bool)
        self.staged_delivered = 0
        # Per-round transmit records (victim outbox reconstruction).
        self._senders: Set[NodeId] = set()
        self._sender_bit: Dict[NodeId, int] = {}
        self.pn = np.zeros(n, dtype=np.int64)

    # ------------------------------------------------------------------

    def run(self) -> RunResult:
        for r in range(1, self.total_rounds + 1):
            self._round = r
            # Every alive node holds a live wake for round rounds+1 until
            # it executes, so quiescence is only possible after that (or
            # once nobody is left alive).
            wakes_dead = r > self.rounds + 1 or len(self.crashed) == self.n
            if (
                r > 1
                and wakes_dead
                and not self.staged_delivered
                and self._adversary_done()
            ):
                break
            self._execute_round(r)
        self._finalize_metrics(self.total_rounds)
        return self._build_result()

    def _execute_round(self, r: Round) -> None:
        np = self.np
        metrics = self.metrics
        metrics.begin_round()

        saw_zero = self.saw_zero
        self.saw_zero = np.zeros(self.n, dtype=bool)

        # ---- step phase --------------------------------------------------
        # Fold staged improvements; nodes that improved re-broadcast,
        # except past the decision round (decide-then-idle comes first).
        improved = saw_zero  # staged only for alive est==1 receivers
        if improved.any():
            self.est[improved] = 0
        if r == 1:
            senders = list(range(self.n))
        elif r <= self.rounds:
            senders = np.flatnonzero(improved).tolist()
        else:
            senders = []
        self._senders = set(senders)
        self._sender_bit = {
            s: (self.inputs[s] if r == 1 else 0) for s in senders
        }

        # ---- transmit phase ---------------------------------------------
        per_msg = self.n - 1
        sent = len(senders) * per_msg
        if sent:
            bits_total = sum(
                _FLOOD_BITS[self._sender_bit[s]] for s in senders
            ) * per_msg
            metrics.messages_sent += sent
            metrics.bits_sent += bits_total
            metrics.per_kind_messages[MSG_FLOOD] += sent
            self.pn[np.asarray(senders, dtype=np.int64)] += per_msg
        metrics.per_round_messages[-1] += sent

        # ---- crash phase -------------------------------------------------
        dropped = self._crash_phase(r)
        dropped_by: Dict[NodeId, Set[NodeId]] = {}
        for src, dst in dropped:
            dropped_by.setdefault(src, set()).add(dst)

        # ---- delivery phase ----------------------------------------------
        delivered = 0
        expired = 0
        if senders:
            crashed_total = len(self.crashed)
            for s in senders:
                drops = dropped_by.get(s)
                if drops:
                    exp_s = sum(
                        1
                        for dst in self.crashed
                        if dst != s and dst not in drops
                    )
                    delivered += per_msg - len(drops) - exp_s
                else:
                    exp_s = crashed_total - (1 if s in self.crashed else 0)
                    delivered += per_msg - exp_s
                expired += exp_s

            # Zero propagation: who hears a zero this round?
            zero_senders = [s for s in senders if self._sender_bit[s] == 0]
            heard = np.zeros(self.n, dtype=bool)
            plain = [s for s in zero_senders if s not in dropped_by]
            if len(plain) >= 2:
                heard[:] = True
            elif len(plain) == 1:
                heard[:] = True
                heard[plain[0]] = False
            for s in zero_senders:
                drops = dropped_by.get(s)
                if drops is None:
                    continue
                reach = np.ones(self.n, dtype=bool)
                reach[s] = False
                reach[np.asarray(sorted(drops), dtype=np.int64)] = False
                heard |= reach
            self.saw_zero = (
                heard & (self.est == 1) & (self.crash_round > r)
            )

        metrics.messages_delivered += delivered
        metrics.messages_expired += expired
        if delivered:
            metrics.delivery_latency[1] += delivered
        self.staged_delivered = delivered

    # ------------------------------------------------------------------

    def _outbox_envelopes(self, sender: NodeId, r: Round) -> List[Envelope]:
        return self._cached_outbox(
            sender, lambda: self._build_outbox(sender, r)
        )

    def _build_outbox(self, sender: NodeId, r: Round) -> List[Envelope]:
        if sender not in self._senders or self.crash_round[sender] < r:
            return []
        msg = Message(MSG_FLOOD, (self._sender_bit[sender],))
        return [
            Envelope(sender, dst, msg, r)
            for dst in range(self.n)
            if dst != sender
        ]

    def _outbox_senders(self, r: Round) -> List[NodeId]:
        return [
            u
            for u in sorted(self.faulty)
            if u not in self.crashed and u in self._senders
        ]

    def _discard_queues(self, victim: NodeId, r: Round) -> None:
        self.crash_round[victim] = r  # queues are always empty post-transmit

    # ------------------------------------------------------------------

    def _build_result(self) -> RunResult:
        np = self.np
        pn = self.metrics.per_node_sent
        for u in np.flatnonzero(self.pn).tolist():
            pn[u] = int(self.pn[u])
        protocols = [
            _FloodStub(
                int(self.est[u]) if u not in self.crashed else None,
                int(self.est[u]),
            )
            for u in range(self.n)
        ]
        return RunResult(
            n=self.n,
            protocols=protocols,
            metrics=self.metrics,
            trace=None,
            faulty=self.faulty,
            crashed=dict(self.crashed),
            rounds=self.metrics.rounds_executed,
            horizon=self.total_rounds,
            max_delay=0,
        )


def run_flooding_vec(
    n: int,
    inputs: Sequence[int],
    seed: int,
    adversary: Adversary,
    max_faulty: int,
    rounds: int,
) -> RunResult:
    """Run flooding consensus (``rounds = f + 1``) on the vec backend."""
    engine = _FloodingVec(n, inputs, seed, adversary, max_faulty, rounds)
    return engine.run()
