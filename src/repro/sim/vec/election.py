"""Vectorized leader-election engine (exact mirror of the reference run).

Struct-of-arrays layout.  The committee (``m = Theta(log n/alpha)``
candidates, each sampling ``K = Theta(sqrt(n log n / alpha))`` referees)
induces a static edge set of ``E = m*K`` candidate->referee pairs; every
message of the protocol travels on one of these edges or its reverse.
Per round the engine runs a handful of numpy passes over the registered
edge list instead of one Python iteration per message:

* ``LE_LIST`` drain — the round-2 rank exchange enqueues ``d - 1``
  messages per (referee, member) edge; the CONGEST FIFO drains them one
  per round on a *fixed* schedule, so round ``r`` transmits item
  ``r - 2`` whose payload is a closed form of the member order
  (``q = j + (j >= pos)``) — no queues are materialised at all;
* ``LE_AGG`` fan-out — referees touched by proposal deliveries reply to
  all registered members: one boolean gather over the edge list;
* candidate batches (``LE_PROP``/``LE_CONF``) — the scalar state machine
  (:mod:`._lestate`) emits at most one batch per invocation, transmitted
  as one slice;
* folds — per-referee proposal maxima and per-candidate aggregate maxima
  are order-independent monoids, computed with ``np.maximum.at`` plus a
  second owner/flag pass against the final maximum.

The one place array order cannot express the reference engine is a
*mutually sampling* candidate pair (u sampled x and x sampled u): those
ordered edges can receive two enqueues in one round and build a real FIFO
backlog.  They are detected up front and routed through exact Python
deques (``py edges``); everything else provably carries at most one
message per round.  Ranks are folded as *ordinals* (dense indices into
the sorted unique rank list) because ranks reach ``n^4 > 2^63`` at
``n = 10^5``; ordinals preserve ``<``/``==``, which is all the folds use.

Crash parity: the adversary runs unmodified against a mirrored
:class:`~repro.faults.adversary.RoundView`; a victim's wire batch is
reconstructed in the reference engine's exact envelope order (see
``_outbox_envelopes``) so per-envelope ``keep()`` calls consume the
adversary rng identically.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, List, Optional, Set, Tuple

from ...core.leader_election import (
    MSG_AGG,
    MSG_CONFIRM,
    MSG_LIST,
    MSG_PROPOSE,
    MSG_RANK,
)
from ...core.ranks import draw_rank
from ...core.schedule import LeaderElectionSchedule
from ...errors import SimulationError, VecUnsupported
from ...faults.adversary import Adversary
from ...params import Params
from ...rng import RngFactory
from ...sim.message import Envelope, Message
from ...sim.network import RunResult
from ...sim.node import NEVER
from ...types import NodeId, NodeState, Round
from ._lestate import CandState
from ._support import VecEngineBase, field_bits, mirror_sample, np_module

#: Far-future sentinel for "never crashed" in the crash-round array.
_NO_CRASH = 1 << 62


class _LEStub:
    """Minimal protocol stand-in for :func:`runner._evaluate_leader_election`."""

    __slots__ = ("rank", "is_candidate", "state", "leader_rank")

    def __init__(
        self,
        rank: Optional[int],
        is_candidate: bool,
        state: NodeState,
        leader_rank: Optional[int],
    ) -> None:
        self.rank = rank
        self.is_candidate = is_candidate
        self.state = state
        self.leader_rank = leader_rank


class _ElectionVec(VecEngineBase):
    """One leader-election run, array-form."""

    def __init__(
        self,
        params: Params,
        schedule: LeaderElectionSchedule,
        seed: int,
        adversary: Adversary,
        max_faulty: int,
        total_rounds: Round,
    ) -> None:
        np = np_module()
        self.np = np
        self.n = n = params.n
        self.params = params
        self.schedule = schedule
        self.total_rounds = total_rounds

        # -- replay every node's private rng (rank, candidate coin, and —
        # for candidates — the referee sample), exactly as on_start does.
        rngs = RngFactory(seed)
        p_cand = params.candidate_probability
        K = params.referee_count
        ranks: List[int] = []
        cand_nodes: List[NodeId] = []
        cand_ranks: List[int] = []
        cand_refs: List[List[NodeId]] = []
        for u in range(n):
            rng = rngs.node_stream(u)
            rank = draw_rank(rng, n, params.rank_exponent)
            ranks.append(rank)
            if rng.random() < p_cand:
                cand_nodes.append(u)
                cand_ranks.append(rank)
                cand_refs.append(mirror_sample(rng, n, u, K))
        self.ranks = ranks
        self.m = m = len(cand_nodes)
        self.K = K
        self.cand_nodes = cand_nodes
        self.cand_ranks = cand_ranks
        self.cand_refs = cand_refs

        # -- rank ordinals (ranks exceed int64 at large n).
        uniq = sorted(set(cand_ranks))
        ord_of = {rank: i for i, rank in enumerate(uniq)}
        self.uniq = uniq
        self.ord_of = ord_of
        self.blv = np.array([field_bits(r) for r in uniq], dtype=np.int64)
        self.cand_ord = np.array(
            [ord_of[r] for r in cand_ranks], dtype=np.int64
        )

        self.cand_nodes_a = np.array(cand_nodes, dtype=np.int64)
        self.cand_index = np.full(n, -1, dtype=np.int64)
        if m:
            self.cand_index[self.cand_nodes_a] = np.arange(m, dtype=np.int64)

        # -- static edge list (candidate -> referee), blocks of K in
        # sample order.
        E = m * K
        self.E = E
        self.e_ci = np.repeat(np.arange(m, dtype=np.int64), K)
        self.e_ref = (
            np.concatenate(
                [np.asarray(refs, dtype=np.int64) for refs in cand_refs]
            )
            if m
            else np.zeros(0, dtype=np.int64)
        )

        # Drain-bound guard: a referee registered by d candidates pushes
        # d - 1 LIST messages down each member edge; the drain must end
        # strictly before the first PROPOSE round or LIST and iteration
        # traffic would interleave on one FIFO (which only the reference
        # engine models).  d is bounded by the pre-crash sample counts.
        if E:
            d_pre = np.bincount(self.e_ref, minlength=n)
            if int(d_pre.max()) > schedule.forwarding_rounds + 1:
                raise VecUnsupported(
                    "committee overflow: a referee serves "
                    f"{int(d_pre.max())} candidates, drain would overrun "
                    f"the {schedule.forwarding_rounds} forwarding rounds"
                )

        # -- python-FIFO edges: mutually sampling candidate pairs.  Edge
        # u -> x needs a real deque iff x is a candidate that sampled u:
        # then x can enqueue twice in one round (AGG as referee plus a
        # candidate batch) on the reverse edge, and symmetrically.
        self.e_py = np.zeros(E, dtype=bool)
        if m:
            sampled = np.zeros((m, n), dtype=bool)
            for ci in range(m):
                sampled[ci, np.asarray(cand_refs[ci], dtype=np.int64)] = True
            cx = self.cand_index[self.e_ref]
            is_cand_ref = cx >= 0
            self.e_py[is_cand_ref] = sampled[
                cx[is_cand_ref], self.cand_nodes_a[self.e_ci[is_cand_ref]]
            ]
            del sampled
        # Per-candidate dst split (emit batches).
        self.cand_vec_dsts: List[Any] = []
        self.cand_py_dsts: List[List[NodeId]] = []
        for ci in range(m):
            py_mask = self.e_py[ci * K : (ci + 1) * K]
            refs_a = np.asarray(cand_refs[ci], dtype=np.int64)
            self.cand_vec_dsts.append(refs_a[~py_mask])
            # repro: lint-ignore[VEC001] sample-order py dst list is per-
            # candidate setup, not the round hot path
            self.cand_py_dsts.append([int(d) for d in refs_a[py_mask]])

        self._init_adversary(seed, adversary, max_faulty, None)
        self.crash_round = np.full(n, _NO_CRASH, dtype=np.int64)

        # -- registration structures (built in round 2).
        self.e_reg = np.zeros(E, dtype=bool)
        self.g_built = False
        self.g_ref = self.g_ci = self.g_py = self.g_pos = self.g_d = None
        self.g_member_ord = None
        self.ref_start = np.zeros(n, dtype=np.int64)
        self.ref_d = np.zeros(n, dtype=np.int64)
        self.max_drain = 0
        self.vec_list_remaining = 0

        # -- python FIFOs for the mutual-pair edges.
        self.py_fifo: Dict[Tuple[NodeId, NodeId], Deque] = {}
        self.open_order: Dict[NodeId, List[NodeId]] = {}
        self.py_backlog = 0
        self.py_member_refs: Dict[NodeId, List[NodeId]] = {}

        # -- candidate machines.
        self.cstates = [
            CandState(cand_nodes[ci], cand_ranks[ci], cand_refs[ci], schedule)
            for ci in range(m)
        ]
        self.cand_wake = np.full(m, schedule.iteration_start, dtype=np.int64)
        # Delivered-LIST bitmap: R[ci, ord] == True iff the rank reached
        # candidate ci (rank_list materialises from this row).
        self.R = np.zeros((m, len(uniq)), dtype=bool)

        # -- staged inputs of the upcoming round (double buffers).
        self.staged_delivered = 0
        self.touched = np.zeros(n, dtype=bool)
        self.ref_best = np.full(n, -1, dtype=np.int64)
        self.ref_owner = np.zeros(n, dtype=bool)
        self.agg_ord = np.full(m, -1, dtype=np.int64)
        self.agg_flag = np.zeros(m, dtype=bool)
        self.woken = np.zeros(m, dtype=bool)

        # -- per-round transmit records (victim outbox reconstruction).
        self._open_prepush: Dict[NodeId, List[NodeId]] = {}
        self._py_popped: Dict[Tuple[NodeId, NodeId], Tuple[str, tuple]] = {}
        self._round_emits: Dict[int, Tuple[str, int, int]] = {}
        self._round_touched = self.touched
        self._round_ref_best = self.ref_best
        self._round_ref_owner = self.ref_owner

        # -- per-node sent counts (dict-ified at finalize).
        self.pn = np.zeros(n, dtype=np.int64)

    # ------------------------------------------------------------------
    # Run loop
    # ------------------------------------------------------------------

    def run(self) -> RunResult:
        np = self.np
        for r in range(1, self.total_rounds + 1):
            self._round = r
            if r > 1 and self._quiescent(r) and self._adversary_done():
                break
            self._execute_round(r)
        self._finalize_metrics(self.total_rounds)
        return self._build_result()

    def _quiescent(self, r: Round) -> bool:
        if self.staged_delivered or self.vec_list_remaining or self.py_backlog:
            return False
        if not self.m:
            return True
        alive = self.crash_round[self.cand_nodes_a] >= r
        return not bool(((self.cand_wake != NEVER) & alive).any())

    # ------------------------------------------------------------------
    # One round
    # ------------------------------------------------------------------

    def _execute_round(self, r: Round) -> None:
        np = self.np
        metrics = self.metrics
        metrics.begin_round()

        # Consume the staging of the previous round's delivery phase.
        touched_now = self.touched
        ref_best_now = self.ref_best
        ref_owner_now = self.ref_owner
        agg_ord_now = self.agg_ord
        agg_flag_now = self.agg_flag
        woken_now = self.woken
        self.touched = np.zeros(self.n, dtype=bool)
        self.ref_best = np.full(self.n, -1, dtype=np.int64)
        self.ref_owner = np.zeros(self.n, dtype=bool)
        self.agg_ord = np.full(self.m, -1, dtype=np.int64)
        self.agg_flag = np.zeros(self.m, dtype=bool)
        self.woken = np.zeros(self.m, dtype=bool)
        self._round_touched = touched_now
        self._round_ref_best = ref_best_now
        self._round_ref_owner = ref_owner_now

        # ---- step phase --------------------------------------------------
        # Snapshot the py key order before this round's pushes: the
        # reference queue dict lists leftover backlog keys first.
        self._open_prepush = {
            src: list(order) for src, order in self.open_order.items()
        }
        self._py_popped = {}
        self._round_emits = {}

        if r == 2 and self.E:
            self._build_registration()

        if r >= 2:
            # Referee aggregation (structural): touched referees reply
            # AGG(flag, best) to every registered member.  Vec member
            # edges transmit below; py members go through their FIFO.
            for x, members in self.py_member_refs.items():
                if not touched_now[x]:
                    continue
                best = self.uniq[int(ref_best_now[x])]
                flag = int(bool(ref_owner_now[x]))
                fields = (flag, best)
                bits = 10 + (2 if flag else 1) + field_bits(best)
                for dst in members:
                    self._py_push(x, dst, MSG_AGG, fields, bits)

            if r >= self.schedule.iteration_start and self.m:
                alive = self.crash_round[self.cand_nodes_a] >= r
                due = np.flatnonzero(
                    alive & ((self.cand_wake == r) | woken_now)
                )
                for ci in due.tolist():
                    self._invoke_candidate(ci, r, agg_ord_now, agg_flag_now)

        # ---- transmit phase ---------------------------------------------
        sent = 0
        bits_total = 0
        kind_counts: Dict[str, int] = {}
        # Delivery-fold contribution collectors (vec side).
        list_src = list_ci = list_ord = None
        agg_src = agg_ci = agg_val = agg_fl = None
        emit_segs: List[Tuple[NodeId, Any, int, int, str]] = []
        py_wire: List[Tuple[NodeId, NodeId, str, tuple]] = []

        if r == 1:
            if self.E:
                sent += self.E
                bits_total += int(
                    (9 + self.blv[self.cand_ord]).sum()
                ) * self.K  # each candidate sends K identical RANKs
                kind_counts[MSG_RANK] = self.E
                self.pn[self.cand_nodes_a] += self.K
        elif self.g_built:
            # LIST drain (closed-form payloads).
            if r <= self.max_drain:
                mask = (
                    (~self.g_py)
                    & (self.g_d >= r)
                    & (self.crash_round[self.g_ref] >= r)
                )
                if mask.any():
                    list_src = self.g_ref[mask]
                    list_ci = self.g_ci[mask]
                    j = r - 2
                    q = j + (j >= self.g_pos[mask])
                    list_ord = self.g_member_ord[self.ref_start[list_src] + q]
                    cnt = int(list_src.size)
                    sent += cnt
                    bits_total += int((9 + self.blv[list_ord]).sum())
                    kind_counts[MSG_LIST] = (
                        kind_counts.get(MSG_LIST, 0) + cnt
                    )
                    np.add.at(self.pn, list_src, 1)
                    self.vec_list_remaining -= cnt
            # AGG fan-out over vec member edges.
            if touched_now.any():
                mask = touched_now[self.g_ref] & ~self.g_py
                if mask.any():
                    agg_src = self.g_ref[mask]
                    agg_ci = self.g_ci[mask]
                    agg_val = ref_best_now[agg_src]
                    agg_fl = ref_owner_now[agg_src]
                    cnt = int(agg_src.size)
                    sent += cnt
                    bits_total += int(
                        (10 + np.where(agg_fl, 2, 1) + self.blv[agg_val]).sum()
                    )
                    kind_counts[MSG_AGG] = kind_counts.get(MSG_AGG, 0) + cnt
                    np.add.at(self.pn, agg_src, 1)

        # Candidate batches (vec dsts).
        for ci, (kind, f0, f1) in self._round_emits.items():
            dsts = self.cand_vec_dsts[ci]
            cnt = int(dsts.size)
            if cnt:
                sent += cnt
                bits_total += (10 + field_bits(f0) + field_bits(f1)) * cnt
                kind_counts[kind] = kind_counts.get(kind, 0) + cnt
                self.pn[self.cand_nodes[ci]] += cnt
                emit_segs.append(
                    (self.cand_nodes[ci], dsts, self.ord_of[f0],
                     self.ord_of[f1], kind)
                )

        # Python FIFO pops: every nonempty mutual-pair edge ships its head.
        if self.py_backlog:
            for src in list(self.open_order):
                order = self.open_order[src]
                for dst in list(order):
                    fifo = self.py_fifo[(src, dst)]
                    kind, fields, bits = fifo.popleft()
                    self.py_backlog -= 1
                    sent += 1
                    bits_total += bits
                    kind_counts[kind] = kind_counts.get(kind, 0) + 1
                    self.pn[src] += 1
                    self._py_popped[(src, dst)] = (kind, fields)
                    py_wire.append((src, dst, kind, fields))
                    if not fifo:
                        del self.py_fifo[(src, dst)]
                        order.remove(dst)
                if not order:
                    del self.open_order[src]

        metrics.messages_sent += sent
        metrics.bits_sent += bits_total
        metrics.per_round_messages[-1] += sent
        per_kind = metrics.per_kind_messages
        for kind, cnt in kind_counts.items():
            per_kind[kind] += cnt

        # ---- crash phase -------------------------------------------------
        dropped = self._crash_phase(r)
        dropped_by: Dict[NodeId, Any] = {}
        if dropped:
            by: Dict[NodeId, List[NodeId]] = {}
            for src, dst in dropped:
                by.setdefault(src, []).append(dst)
            dropped_by = {
                src: np.asarray(dsts, dtype=np.int64)
                for src, dsts in by.items()
            }

        # ---- delivery phase ----------------------------------------------
        delivered = 0
        expired = 0
        cr = self.crash_round

        def _keep_mask(src_arr, dst_arr):
            keep = cr[dst_arr] > r
            nonlocal expired
            expired += int(dst_arr.size - keep.sum())
            if dropped_by:
                drop = np.zeros(dst_arr.shape, dtype=bool)
                for v, vd in dropped_by.items():
                    sel = src_arr == v
                    if sel.any():
                        drop |= sel & np.isin(dst_arr, vd)
                # Drops take precedence over expiry (the reference checks
                # the drop set first), so un-count dropped+crashed dsts.
                expired -= int((drop & ~keep).sum())
                keep &= ~drop
            return keep

        if r == 1 and self.E:
            src_nodes = self.cand_nodes_a[self.e_ci]
            dst_nodes = self.e_ref
            keep = cr[dst_nodes] > r
            expired += int(dst_nodes.size - keep.sum())
            if dropped_by:
                drop = np.zeros(self.E, dtype=bool)
                for v, vd in dropped_by.items():
                    sel = src_nodes == v
                    if sel.any():
                        drop |= sel & np.isin(dst_nodes, vd)
                expired -= int((drop & ~keep).sum())
                keep &= ~drop
            self.e_reg = keep
            delivered += int(keep.sum())
        else:
            # Fold collectors: (target, value-ord, extra) triples.
            agg_in_ci: List[Any] = []
            agg_in_ord: List[Any] = []
            agg_in_flag: List[Any] = []
            prop_dst: List[Any] = []
            prop_val: List[Any] = []
            prop_sender: List[Any] = []

            if list_src is not None:
                keep = _keep_mask(list_src, self.cand_nodes_a[list_ci])
                kci = list_ci[keep]
                self.R[kci, list_ord[keep]] = True
                self.woken[kci] = True
                delivered += int(keep.sum())
            if agg_src is not None:
                keep = _keep_mask(agg_src, self.cand_nodes_a[agg_ci])
                agg_in_ci.append(agg_ci[keep])
                agg_in_ord.append(agg_val[keep])
                agg_in_flag.append(agg_fl[keep])
                delivered += int(keep.sum())
            for src, dsts, f0_ord, f1_ord, kind in emit_segs:
                keep = cr[dsts] > r
                expired += int(dsts.size - keep.sum())
                if dropped_by and src in dropped_by:
                    drop = np.isin(dsts, dropped_by[src])
                    expired -= int((drop & ~keep).sum())
                    keep &= ~drop
                kdst = dsts[keep]
                delivered += int(kdst.size)
                prop_dst.append(kdst)
                prop_val.append(np.full(kdst.size, f1_ord, dtype=np.int64))
                prop_sender.append(np.full(kdst.size, f0_ord, dtype=np.int64))

            py_agg: List[Tuple[int, int, bool]] = []
            py_prop: List[Tuple[NodeId, int, int]] = []
            for src, dst, kind, fields in py_wire:
                if (src, dst) in dropped:
                    continue
                if dst in self.crashed:
                    expired += 1
                    continue
                delivered += 1
                if kind == MSG_AGG:
                    ci = int(self.cand_index[dst])
                    py_agg.append(
                        (ci, self.ord_of[fields[1]], bool(fields[0]))
                    )
                    self.woken[ci] = True
                elif kind == MSG_LIST:
                    ci = int(self.cand_index[dst])
                    self.R[ci, self.ord_of[fields[0]]] = True
                    self.woken[ci] = True
                else:  # LE_PROP / LE_CONF
                    py_prop.append(
                        (dst, self.ord_of[fields[1]], self.ord_of[fields[0]])
                    )

            # Two-pass folds: all maxima first, then owner/flag passes
            # against the final maxima (correct because the reference
            # fold is an order-independent max-with-flag monoid).
            if agg_in_ci:
                a_ci = np.concatenate(agg_in_ci)
                a_ord = np.concatenate(agg_in_ord)
                a_fl = np.concatenate(agg_in_flag)
            else:
                a_ci = a_ord = a_fl = None
            if a_ci is not None and a_ci.size:
                np.maximum.at(self.agg_ord, a_ci, a_ord)
            for ci, o, f in py_agg:
                if o > self.agg_ord[ci]:
                    self.agg_ord[ci] = o
            if a_ci is not None and a_ci.size:
                sel = a_fl & (a_ord == self.agg_ord[a_ci])
                np.logical_or.at(self.agg_flag, a_ci[sel], True)
            for ci, o, f in py_agg:
                if f and o == self.agg_ord[ci]:
                    self.agg_flag[ci] = True
            if a_ci is not None and a_ci.size:
                self.woken[a_ci] = True

            if prop_dst:
                p_dst = np.concatenate(prop_dst)
                p_val = np.concatenate(prop_val)
                p_snd = np.concatenate(prop_sender)
            else:
                p_dst = p_val = p_snd = None
            if p_dst is not None and p_dst.size:
                np.maximum.at(self.ref_best, p_dst, p_val)
            for dst, val, snd in py_prop:
                if val > self.ref_best[dst]:
                    self.ref_best[dst] = val
            if p_dst is not None and p_dst.size:
                sel = (p_snd == p_val) & (p_val == self.ref_best[p_dst])
                np.logical_or.at(self.ref_owner, p_dst[sel], True)
                self.touched[p_dst] = True
                # A touched referee that is itself a candidate is woken
                # by the same deliveries (one on_round serves both roles).
                wci = self.cand_index[p_dst]
                self.woken[wci[wci >= 0]] = True
            for dst, val, snd in py_prop:
                if snd == val and val == self.ref_best[dst]:
                    self.ref_owner[dst] = True
                self.touched[dst] = True
                ci = int(self.cand_index[dst])
                if ci >= 0:
                    self.woken[ci] = True

        metrics.messages_delivered += delivered
        metrics.messages_expired += expired
        if delivered:
            metrics.delivery_latency[1] += delivered
        self.staged_delivered = delivered

    # ------------------------------------------------------------------
    # Round-2 registration
    # ------------------------------------------------------------------

    def _build_registration(self) -> None:
        """Mirror the round-2 ``_referee_register`` exchange structurally.

        Registered edges are exactly the round-1 RANK deliveries;
        arrivals land in one inbox in ascending sender order, so each
        referee's ``_registered`` dict is its delivered member edges in
        ascending candidate order.  The pairwise exchange enqueues, per
        (referee, member) edge, ``d - 1`` LIST payloads whose order is
        the closed form ``q = j + (j >= pos)``.
        """
        np = self.np
        reg_idx = np.flatnonzero(self.e_reg)
        self.g_built = True
        if not reg_idx.size:
            self.g_ref = np.zeros(0, dtype=np.int64)
            self.g_ci = np.zeros(0, dtype=np.int64)
            self.g_py = np.zeros(0, dtype=bool)
            self.g_pos = np.zeros(0, dtype=np.int64)
            self.g_d = np.zeros(0, dtype=np.int64)
            self.g_member_ord = np.zeros(0, dtype=np.int64)
            return
        order = np.argsort(self.e_ref[reg_idx], kind="stable")
        g_edge = reg_idx[order]
        self.g_ref = self.e_ref[g_edge]
        self.g_ci = self.e_ci[g_edge]
        self.g_py = self.e_py[g_edge]
        self.g_member_ord = self.cand_ord[self.g_ci]
        urefs, first, counts = np.unique(
            self.g_ref, return_index=True, return_counts=True
        )
        self.ref_start[urefs] = first
        self.ref_d[urefs] = counts
        self.g_pos = np.arange(self.g_ref.size, dtype=np.int64) - np.repeat(
            first, counts
        )
        self.g_d = np.repeat(counts, counts)
        self.max_drain = int(counts.max())
        self.vec_list_remaining = int(((self.g_d - 1) * ~self.g_py).sum())

        # Seed the python FIFOs of mutual-pair member edges with their
        # LIST items, and index py members per referee for AGG pushes.
        py_idx = np.flatnonzero(self.g_py)
        for i in py_idx.tolist():
            x = int(self.g_ref[i])
            d = int(self.g_d[i])
            dst = self.cand_nodes[int(self.g_ci[i])]
            self.py_member_refs.setdefault(x, []).append(dst)
            if d < 2:
                continue
            pos = int(self.g_pos[i])
            start = int(self.ref_start[x])
            items = []
            for j in range(d - 1):
                q = j + (1 if j >= pos else 0)
                rank = self.uniq[int(self.g_member_ord[start + q])]
                items.append((MSG_LIST, (rank,), 9 + field_bits(rank)))
            self.py_fifo[(x, dst)] = deque(items)
            self.py_backlog += len(items)
        # Key-creation order at the sender is the swapped member order
        # [a1, a0, a2, ...]; restrict it to the py members.
        for x in list(self.py_member_refs):
            d = int(self.ref_d[x])
            if d < 2:
                continue
            start = int(self.ref_start[x])
            members = [
                self.cand_nodes[int(self.g_ci[start + q])] for q in range(d)
            ]
            swapped = [members[1], members[0]] + members[2:]
            py_set = set(self.py_member_refs[x])
            key_order = [dst for dst in swapped if dst in py_set]
            if key_order:
                self.open_order[x] = key_order

    # ------------------------------------------------------------------
    # Candidate invocation
    # ------------------------------------------------------------------

    def _invoke_candidate(
        self, ci: int, r: Round, agg_ord_now, agg_flag_now
    ) -> None:
        st = self.cstates[ci]
        if st.rank_list is None:
            # First act: materialise rank_list from the delivered-LIST
            # bitmap (no LE_LIST can arrive after this round — drain
            # guard), plus the candidate's own rank (on_start).
            row = self.np.flatnonzero(self.R[ci])
            st.rank_list = {self.uniq[j] for j in row.tolist()}
            st.rank_list.add(st.rank)
        agg = None
        o = int(agg_ord_now[ci])
        if o >= 0:
            agg = (self.uniq[o], bool(agg_flag_now[ci]))
        emits = st.invoke(r, agg)
        self.cand_wake[ci] = st.next_wake
        if not emits:
            return
        if len(emits) > 1:
            raise SimulationError(
                f"vec candidate {st.node} emitted {len(emits)} batches in "
                "one round (reference sends at most one)"
            )
        kind, f0, f1 = emits[0]
        self._round_emits[ci] = (kind, f0, f1)
        if self.cand_py_dsts[ci]:
            bits = 10 + field_bits(f0) + field_bits(f1)
            for dst in self.cand_py_dsts[ci]:
                self._py_push(st.node, dst, kind, (f0, f1), bits)

    def _py_push(
        self,
        src: NodeId,
        dst: NodeId,
        kind: str,
        fields: tuple,
        bits: int,
    ) -> None:
        fifo = self.py_fifo.get((src, dst))
        if fifo is None:
            fifo = self.py_fifo[(src, dst)] = deque()
        if not fifo:
            self.open_order.setdefault(src, []).append(dst)
        fifo.append((kind, fields, bits))
        self.py_backlog += 1

    # ------------------------------------------------------------------
    # Adversary hooks (victim outboxes in reference wire order)
    # ------------------------------------------------------------------

    def _outbox_envelopes(self, sender: NodeId, r: Round) -> List[Envelope]:
        return self._cached_outbox(sender, lambda: self._build_outbox(sender, r))

    def _build_outbox(self, sender: NodeId, r: Round) -> List[Envelope]:
        if self.crash_round[sender] < r:
            return []
        if r == 1:
            ci = int(self.cand_index[sender])
            if ci < 0:
                return []
            msg = Message(MSG_RANK, (self.cand_ranks[ci],))
            return [
                Envelope(sender, dst, msg, r) for dst in self.cand_refs[ci]
            ]
        if not self.g_built:
            return []
        d = int(self.ref_d[sender])
        if d >= 2 and r <= d:
            # Drain round: the queue dict was created in swapped member
            # order; receiver at original position p gets item r - 2,
            # i.e. the rank of member q = j + (j >= p).
            start = int(self.ref_start[sender])
            members = [int(self.g_ci[start + q]) for q in range(d)]
            j = r - 2
            out = []
            order = [1, 0] + list(range(2, d))
            for p in order:
                q = j + (1 if j >= p else 0)
                rank = self.cand_ranks[members[q]]
                out.append(
                    Envelope(
                        sender,
                        self.cand_nodes[members[p]],
                        Message(MSG_LIST, (rank,)),
                        r,
                    )
                )
            return out
        # General round: leftover py backlog keys first, then this
        # round's new keys in enqueue order (AGG to members ascending,
        # then the candidate batch in sample order).
        out = []
        seen: Set[NodeId] = set()
        for dst in self._open_prepush.get(sender, []):
            popped = self._py_popped.get((sender, dst))
            if popped is None:
                continue  # src crashed earlier this round chain (unreachable)
            seen.add(dst)
            out.append(Envelope(sender, dst, Message(*popped), r))
        if self._round_touched[sender]:
            best = self.uniq[int(self._round_ref_best[sender])]
            flag = int(bool(self._round_ref_owner[sender]))
            agg_msg = Message(MSG_AGG, (flag, best))
            start = int(self.ref_start[sender])
            d_reg = int(self.ref_d[sender])
            for q in range(d_reg):
                dst = self.cand_nodes[int(self.g_ci[start + q])]
                if dst in seen:
                    continue
                seen.add(dst)
                if (sender, dst) in self._py_popped:
                    out.append(
                        Envelope(
                            sender, dst,
                            Message(*self._py_popped[(sender, dst)]), r,
                        )
                    )
                else:
                    out.append(Envelope(sender, dst, agg_msg, r))
        ci = int(self.cand_index[sender])
        if ci >= 0 and ci in self._round_emits:
            kind, f0, f1 = self._round_emits[ci]
            batch_msg = Message(kind, (f0, f1))
            for dst in self.cand_refs[ci]:
                if dst in seen:
                    continue
                seen.add(dst)
                if (sender, dst) in self._py_popped:
                    out.append(
                        Envelope(
                            sender, dst,
                            Message(*self._py_popped[(sender, dst)]), r,
                        )
                    )
                else:
                    out.append(Envelope(sender, dst, batch_msg, r))
        return out

    def _outbox_senders(self, r: Round) -> List[NodeId]:
        return [
            u
            for u in sorted(self.faulty)
            if u not in self.crashed and self._outbox_envelopes(u, r)
        ]

    def _discard_queues(self, victim: NodeId, r: Round) -> None:
        self.crash_round[victim] = r
        if self.g_built:
            d = int(self.ref_d[victim])
            remaining = d - r
            if d >= 2 and remaining > 0:
                start = int(self.ref_start[victim])
                vec_members = d - int(
                    self.g_py[start : start + d].sum()
                )
                self.vec_list_remaining -= remaining * vec_members
        for dst in self.open_order.pop(victim, []):
            fifo = self.py_fifo.pop((victim, dst))
            self.py_backlog -= len(fifo)

    # ------------------------------------------------------------------
    # Finalization
    # ------------------------------------------------------------------

    def _build_result(self) -> RunResult:
        np = self.np
        last = self.metrics.rounds_executed
        pn = self.metrics.per_node_sent
        for u in np.flatnonzero(self.pn).tolist():
            pn[u] = int(self.pn[u])
        protocols: List[_LEStub] = []
        for u in range(self.n):
            ci = int(self.cand_index[u])
            if ci < 0:
                state = (
                    NodeState.UNDECIDED
                    if u in self.crashed
                    else NodeState.NON_ELECTED
                )
                protocols.append(_LEStub(self.ranks[u], False, state, None))
                continue
            st = self.cstates[ci]
            if u not in self.crashed:
                if st.rank_list is None:
                    row = np.flatnonzero(self.R[ci])
                    st.rank_list = {self.uniq[j] for j in row.tolist()}
                    st.rank_list.add(st.rank)
                st.on_stop(last)
            protocols.append(
                _LEStub(st.rank, True, st.state, st.leader_rank)
            )
        return RunResult(
            n=self.n,
            protocols=protocols,
            metrics=self.metrics,
            trace=None,
            faulty=self.faulty,
            crashed=dict(self.crashed),
            rounds=last,
            horizon=self.total_rounds,
            max_delay=0,
        )


def run_election_vec(
    params: Params,
    schedule: LeaderElectionSchedule,
    seed: int,
    adversary: Adversary,
    max_faulty: int,
    total_rounds: Round,
) -> RunResult:
    """Run the Section IV-A election on the vec backend.

    Exact mirror of ``Network(...).run(total_rounds)`` under the same
    seed and adversary; raises :class:`~repro.errors.VecUnsupported`
    (before any side effects observable by a fallback rerun) when the
    configuration needs the reference engine.
    """
    engine = _ElectionVec(
        params, schedule, seed, adversary, max_faulty, total_rounds
    )
    return engine.run()
