"""Shared machinery of the vectorized engine backend.

Everything here exists to make the array engines *bit-compatible* with
the reference engine:

* :func:`mirror_sample` replays :meth:`repro.sim.node.Context.sample_nodes`
  draw-for-draw on a node's private rng stream;
* :func:`field_bits` is the closed form of the CONGEST field size used by
  :func:`repro.sim.message.payload_bits` (no log arithmetic in hot loops);
* :class:`LazyOutboxes` hands the *real* adversary objects the outbox of a
  crash victim in the reference engine's exact wire order, materialising
  real :class:`~repro.sim.message.Envelope` objects only on demand — so
  ``CrashOrder.keep()`` consumes the adversary rng in the identical
  sequence;
* :class:`VecEngineBase` drives the real :class:`~repro.faults.Adversary`
  (``select_faulty`` / ``plan_round`` / ``done``) against a mirrored
  :class:`~repro.faults.adversary.RoundView`.
"""

from __future__ import annotations

import random
from typing import Any, Dict, Iterator, List, Mapping, Optional, Sequence, Set, Tuple

from ...errors import SimulationError, VecUnsupported
from ...faults.adversary import Adversary, RoundView
from ...faults.strategies import (
    EagerCrash,
    LazyCrash,
    NoFaults,
    RandomCrash,
    RefereeCrash,
    SplitDeliveryCrash,
    StaggeredCrash,
)
from ...optdeps import require_numpy
from ...rng import RngFactory
from ...sim.message import Envelope
from ...sim.metrics import Metrics
from ...types import NodeId, Round

#: Adversary classes the vec backend reproduces exactly.  The check is by
#: exact type: a subclass may override ``plan_round`` in ways the mirrored
#: view does not cover, so it conservatively falls back to the reference
#: engine.
VEC_ADVERSARIES: Tuple[type, ...] = (
    Adversary,
    NoFaults,
    EagerCrash,
    LazyCrash,
    RandomCrash,
    StaggeredCrash,
    SplitDeliveryCrash,
    RefereeCrash,
)


def ensure_vec_supported(
    adversary: Adversary,
    *,
    collect_trace: bool = False,
    message_budget: Optional[int] = None,
    timers: Optional[object] = None,
    delivery: Optional[object] = None,
    byzantine: Optional[object] = None,
) -> None:
    """Raise :class:`VecUnsupported` for configurations vec cannot mirror.

    Called before any engine state is built, so a caller may catch the
    error and fall back to the reference engine with zero side effects.
    """
    if type(adversary) not in VEC_ADVERSARIES:
        raise VecUnsupported(
            f"adversary {adversary.name()!r} ({type(adversary).__name__}) "
            "is not in the vec backend's exact-parity set"
        )
    if adversary.dynamic_selection:
        raise VecUnsupported("dynamic-selection adversaries are not vectorized")
    if collect_trace:
        raise VecUnsupported("trace collection requires the reference engine")
    if message_budget is not None:
        raise VecUnsupported("message budgets require the reference engine")
    if timers is not None:
        raise VecUnsupported("phase profiling requires the reference engine")
    if delivery is not None and getattr(delivery, "max_delay", 0):
        raise VecUnsupported("bounded-delay delivery requires the reference engine")
    if byzantine is not None and getattr(byzantine, "modes", None):
        raise VecUnsupported("Byzantine plans require the reference engine")


def mirror_sample(
    rng: random.Random, n: int, self_id: int, k: int
) -> List[int]:
    """Exact replay of ``Context.sample_nodes`` on a node's rng stream."""
    if k > (n - 1) // 2:
        candidates = [i for i in range(n) if i != self_id]
        return rng.sample(candidates, k)
    sampled: List[int] = []
    seen = {self_id}
    randrange = rng.randrange
    seen_add = seen.add
    append = sampled.append
    while len(sampled) < k:
        pick = randrange(n)
        if pick not in seen:
            seen_add(pick)
            append(pick)
    return sampled


def field_bits(value: int) -> int:
    """CONGEST size of one non-None integer field.

    Closed form of ``max(1, ceil(log2(|v| + 2)))`` for ``v >= 0``:
    ``(v + 1).bit_length()``.
    """
    return (value + 1).bit_length()


class LazyOutboxes(Mapping):
    """The ``RoundView.outboxes`` mapping, materialised on demand.

    The reference engine only tracks outboxes of faulty senders (static
    selection), so the mapping's domain is the faulty alive nodes that
    transmitted this round; each value is the sender's wire batch in the
    reference engine's exact envelope order.
    """

    def __init__(self, engine: "VecEngineBase", round_: Round) -> None:
        self._engine = engine
        self._round = round_

    def __getitem__(self, sender: NodeId) -> Sequence[Envelope]:
        outbox = self._engine._outbox_envelopes(sender, self._round)
        if not outbox:
            raise KeyError(sender)
        return outbox

    def get(self, sender: NodeId, default: Any = None) -> Any:
        outbox = self._engine._outbox_envelopes(sender, self._round)
        return outbox if outbox else default

    def __contains__(self, sender: object) -> bool:
        if not isinstance(sender, int):
            return False
        return bool(self._engine._outbox_envelopes(sender, self._round))

    def __iter__(self) -> Iterator[NodeId]:
        return iter(self._engine._outbox_senders(self._round))

    def __len__(self) -> int:
        return len(self._engine._outbox_senders(self._round))


class VecEngineBase:
    """Adversary plumbing shared by the protocol-specific array engines.

    Subclasses provide three hooks:

    * ``_outbox_envelopes(sender, r)`` — the sender's transmitted wire
      batch this round as real envelopes, in reference wire order;
    * ``_outbox_senders(r)`` — faulty alive senders with a non-empty batch;
    * ``_discard_queues(victim, r)`` — drop the victim's untransmitted
      backlog from the queued-total bookkeeping.
    """

    n: int

    def _init_adversary(
        self,
        seed: int,
        adversary: Adversary,
        max_faulty: int,
        inputs: Optional[Sequence[int]],
    ) -> None:
        self.seed = seed
        self.rngs = RngFactory(seed)
        self.adversary = adversary
        self.max_faulty = max_faulty
        self._adversary_rng = self.rngs.adversary_stream()
        self.faulty: Set[NodeId] = set(
            adversary.select_faulty(self.n, max_faulty, self._adversary_rng, inputs)
        )
        if len(self.faulty) > max_faulty:
            raise SimulationError(
                f"adversary selected {len(self.faulty)} faulty nodes, "
                f"budget is {max_faulty}"
            )
        self.crashed: Dict[NodeId, Round] = {}
        self.metrics = Metrics()
        self._round: Round = 0
        self._outbox_cache: Dict[NodeId, List[Envelope]] = {}

    # -- hooks ----------------------------------------------------------

    def _outbox_envelopes(self, sender: NodeId, r: Round) -> List[Envelope]:
        raise NotImplementedError

    def _outbox_senders(self, r: Round) -> List[NodeId]:
        raise NotImplementedError

    def _discard_queues(self, victim: NodeId, r: Round) -> None:
        raise NotImplementedError

    # -- adversary driving ----------------------------------------------

    def _faulty_alive(self) -> Set[NodeId]:
        return {u for u in self.faulty if u not in self.crashed}

    def _view(self, outboxes: Optional[Mapping] = None) -> RoundView:
        return RoundView(
            round=self._round,
            n=self.n,
            faulty_alive=self._faulty_alive(),
            crashed=self.crashed,
            outboxes={} if outboxes is None else outboxes,
            protocols=(),
            budget_remaining=max(0, self.max_faulty - len(self.faulty)),
        )

    def _adversary_done(self) -> bool:
        return self.adversary.done(self._view())

    def _crash_phase(self, r: Round) -> Set[Tuple[NodeId, NodeId]]:
        """Run ``plan_round`` and process the orders; return dropped edges.

        Mirrors the reference engine: the victim's transmitted batch this
        round is filtered per envelope by ``order.keep`` (in wire order —
        this is where ``keep_fraction`` consumes the adversary rng), its
        untransmitted backlog is discarded, and drops are keyed by edge
        (CONGEST: unique per round).
        """
        self._outbox_cache = {}
        view = self._view(LazyOutboxes(self, r))
        orders = self.adversary.plan_round(view, self._adversary_rng)
        dropped: Set[Tuple[NodeId, NodeId]] = set()
        for victim, order in orders.items():
            if victim not in self.faulty:
                raise SimulationError(
                    f"adversary crashed non-faulty node {victim}"
                )
            if victim in self.crashed:
                continue
            self.crashed[victim] = r
            self.metrics.record_crash()
            self._discard_queues(victim, r)
            for envelope in self._outbox_envelopes(victim, r):
                if not order.keep(envelope):
                    dropped.add((envelope.src, envelope.dst))
                    self.metrics.record_drop()
        return dropped

    def _cached_outbox(self, sender: NodeId, build) -> List[Envelope]:
        outbox = self._outbox_cache.get(sender)
        if outbox is None:
            outbox = self._outbox_cache[sender] = build()
        return outbox

    def _finalize_metrics(self, total_rounds: Round) -> None:
        metrics = self.metrics
        metrics.rounds = metrics.rounds_executed
        metrics.horizon = total_rounds


def np_module() -> Any:
    """The numpy module (raises :class:`BackendUnavailable` when absent)."""
    return require_numpy()
