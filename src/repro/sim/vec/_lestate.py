"""Exact scalar port of the leader-election candidate state machine.

The vec engine keeps the *candidate* role of
:class:`repro.core.leader_election.LeaderElectionProtocol` as per-node
Python state (the committee has ``Theta(log n / alpha)`` members, so this
is never the hot path), while the referee role and all message transport
are array-level.  Every method here is a line-for-line port of the
corresponding protocol method; the only differences are mechanical:

* ``ctx.send`` loops over the referee sample become one *emit batch*
  (the reference protocol always sends a candidate message to all of its
  referees with identical payload);
* ``ctx.wake_at`` / ``ctx.idle`` mutate :attr:`next_wake` directly
  (``NEVER`` mirrors :data:`repro.sim.node.NEVER`);
* ``rank_list`` materialises lazily from the engine's delivered-ranks
  bitmap the first time the candidate acts (the reference candidate only
  reads it from the first PROPOSE round on, and the drain-bound guard in
  the engine proves no LE_LIST message can arrive after that round).

Keeping the port scalar keeps it *checkable*: diffing this module against
``core/leader_election.py`` is a code review, not a proof.
"""

from __future__ import annotations

from typing import List, Optional, Set, Tuple

from ...core.schedule import LeaderElectionSchedule
from ...errors import SimulationError
from ...sim.node import NEVER
from ...types import NodeState

MSG_PROPOSE = "LE_PROP"
MSG_CONFIRM = "LE_CONF"

#: One candidate->referees batch: ``(kind, sender_rank, value)``.
Emit = Tuple[str, int, int]


class CandState:
    """Candidate-role state of one committee member (exact port)."""

    __slots__ = (
        "node",
        "rank",
        "refs",
        "schedule",
        "rank_list",
        "proposed",
        "supported",
        "outstanding",
        "deadline",
        "marked",
        "confirmed",
        "leader_rank",
        "state",
        "round",
        "next_wake",
        "emits",
    )

    def __init__(
        self,
        node: int,
        rank: int,
        refs: List[int],
        schedule: LeaderElectionSchedule,
    ) -> None:
        self.node = node
        self.rank = rank
        self.refs = refs
        self.schedule = schedule
        #: ``None`` until materialised from the engine's delivered-LIST
        #: bitmap (mirrors ``{rank} | {delivered LIST ranks}``).
        self.rank_list: Optional[Set[int]] = None
        self.proposed: Set[int] = set()
        self.supported: Set[int] = set()
        self.outstanding: Optional[int] = None
        self.deadline: Optional[int] = None
        self.marked = False
        self.confirmed = False
        self.leader_rank: Optional[int] = None
        self.state = NodeState.UNDECIDED
        self.round = 0
        #: Mirrors ``Context._next_wake``; ``on_start`` leaves the
        #: reference candidate scheduled for the first PROPOSE round.
        self.next_wake = schedule.iteration_start
        self.emits: List[Emit] = []

    # -- Context shims ---------------------------------------------------

    def _wake_at(self, round_: int) -> None:
        if round_ <= self.round:
            raise SimulationError(
                f"vec candidate {self.node}: wake_at({round_}) in round "
                f"{self.round} (engine bug — reference raises here too)"
            )
        self.next_wake = round_

    def _idle(self) -> None:
        self.next_wake = NEVER

    def _emit(self, kind: str, value: int) -> None:
        self.emits.append((kind, self.rank, value))

    # -- invocation ------------------------------------------------------

    def invoke(
        self, round_: int, agg: Optional[Tuple[int, bool]]
    ) -> List[Emit]:
        """One ``on_round`` of the candidate role.

        ``agg`` is the already-folded maximum of this round's LE_AGG
        deliveries (the engine folds them exactly like the reference
        inbox loop: max value, owner-flag OR on ties).  LE_LIST
        deliveries are folded into the engine's bitmap instead.  Returns
        the emit batches (the reference candidate sends at most one
        batch per invocation; the engine asserts this).
        """
        self.round = round_
        self.next_wake = round_ + 1  # engine default: stay active
        self.emits = []
        if agg is not None:
            self._handle_aggregate(agg[0], agg[1])
        self._act()
        return self.emits

    # -- exact ports -----------------------------------------------------

    def _handle_aggregate(self, pmax: int, owner: bool) -> None:
        rank_list = self.rank_list
        assert rank_list is not None  # first AGG arrives after first act
        if any(r < pmax for r in rank_list):
            self.rank_list = rank_list = {r for r in rank_list if r >= pmax}
        if self.marked and pmax > self.rank:
            self.marked = False
            self.confirmed = False
            self.state = NodeState.UNDECIDED
            self.leader_rank = None

        if pmax == self.rank:
            if owner:
                self.marked = True
                self.confirmed = True
                self.state = NodeState.ELECTED
                self.leader_rank = self.rank
                self.outstanding = None
                self.deadline = None
            else:
                self.marked = True
                self.state = NodeState.ELECTED
                self.leader_rank = self.rank
                self._send_confirmation()
            return

        if (
            self.leader_rank is not None
            and self.confirmed
            and pmax < self.leader_rank
        ):
            return

        if owner:
            previously_confirmed = self.confirmed and self.leader_rank == pmax
            self.leader_rank = pmax
            self.confirmed = True
            self.marked = False
            self.state = NodeState.UNDECIDED
            self.outstanding = None
            self.deadline = None
            if pmax not in self.supported and not previously_confirmed:
                self.supported.add(pmax)
                self._send_support(pmax)
            return

        if pmax in rank_list:
            if self.confirmed and self.leader_rank == pmax:
                return
            self.confirmed = False
            self.leader_rank = pmax
            if self.outstanding != pmax:
                self.outstanding = pmax
                self.deadline = self.schedule.confirmation_deadline(self.round)
                self._wake_for_deadline()
            if pmax not in self.supported:
                self.supported.add(pmax)
                self._send_support(pmax)
            return

        if self.outstanding is not None and self.outstanding < pmax:
            self.outstanding = None
            self.deadline = None

    def _act(self) -> None:
        round_ = self.round
        if round_ < self.schedule.iteration_start:
            self._wake_at(self.schedule.iteration_start)
            return

        if self.outstanding is not None and self.deadline is not None:
            if round_ >= self.deadline:
                timed_out = self.outstanding
                self.outstanding = None
                self.deadline = None
                if timed_out == self.rank:
                    self._send_confirmation()
                else:
                    assert self.rank_list is not None
                    self.rank_list.discard(timed_out)
                    self.supported.discard(timed_out)
                    if self.leader_rank == timed_out and not self.confirmed:
                        self.leader_rank = None

        if self.confirmed:
            self._idle()
            return

        if self.outstanding is None:
            self._propose_next()

        self._wake_for_deadline()

    def _propose_next(self) -> None:
        if not self.rank_list:
            self.rank_list = {self.rank}
            self.proposed.clear()
        unproposed = [r for r in self.rank_list if r not in self.proposed]
        if not unproposed:
            self.proposed -= self.rank_list
            unproposed = sorted(self.rank_list)
        proposal = min(unproposed)
        self.proposed.add(proposal)
        self.outstanding = proposal
        self.deadline = self.schedule.confirmation_deadline(self.round)
        if proposal == self.rank:
            self.marked = True
            self.state = NodeState.ELECTED
            self.leader_rank = self.rank
        self._emit(MSG_PROPOSE, proposal)

    def _send_confirmation(self) -> None:
        self.outstanding = self.rank
        self.deadline = self.schedule.confirmation_deadline(self.round)
        self._emit(MSG_CONFIRM, self.rank)
        self._wake_for_deadline()

    def _send_support(self, rank: int) -> None:
        self._emit(MSG_CONFIRM, rank)

    def _wake_for_deadline(self) -> None:
        if self.deadline is not None and self.deadline > self.round:
            self._wake_at(self.deadline)
        elif self.confirmed:
            self._idle()

    def on_stop(self, last_round: int) -> None:
        """Exact port of the protocol's ``on_stop`` (alive candidates)."""
        self.round = last_round
        if self.leader_rank is None:
            self.leader_rank = (
                min(self.rank_list) if self.rank_list else self.rank
            )
        self.state = NodeState.ELECTED if self.marked else NodeState.NON_ELECTED
