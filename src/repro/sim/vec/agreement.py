"""Vectorized agreement engine (exact mirror of the reference run).

The Section V-A protocol is far simpler than the election: after the
round-1 registration broadcast every node idles forever, so a node steps
exactly when messages arrive, and the whole protocol state is three
boolean facts per node (referee forwarded its zero / candidate decided
zero / candidate sent its zero).  One round is therefore:

* ``fwd_now`` — referees that just received a zero (``AG_VAL`` with bit 0
  or ``AG_Z2R``) and have not forwarded yet send ``AG_Z2C`` to all
  registered members: a boolean gather over the registered edge list;
* ``send_now`` — candidates that just received ``AG_Z2C`` and have not
  sent their zero yet decide 0 and send ``AG_Z2R`` to their referees;
* delivery folds are pure existence bits (``saw a zero``), which are
  trivially order-independent.

Mutually sampling candidate pairs again need real FIFOs (a node can
enqueue ``AG_Z2C`` as a referee and ``AG_Z2R`` as a candidate on the same
reverse edge in one round — the referee role runs first, exactly as in
``AgreementProtocol.on_round``); every other edge carries at most one
message per round.  Crash parity works as in the election engine: crash
victims' wire batches are reconstructed in reference envelope order
(leftover FIFO backlog first, then the ``AG_Z2C`` fan-out in ascending
registration order, then the ``AG_Z2R`` batch in sample order).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, List, Optional, Sequence, Set, Tuple

from ...core.agreement import (
    MSG_VALUE,
    MSG_ZERO_TO_CANDIDATE,
    MSG_ZERO_TO_REFEREE,
)
from ...core.schedule import AgreementSchedule
from ...errors import SimulationError
from ...faults.adversary import Adversary
from ...params import Params
from ...rng import RngFactory
from ...sim.message import Envelope, Message
from ...sim.network import RunResult
from ...types import Decision, NodeId, Round
from ._support import VecEngineBase, mirror_sample, np_module

_NO_CRASH = 1 << 62

#: Wire sizes: base 8, plus (presence 1 + field_bits(bit)) for AG_VAL.
_VAL_BITS = {0: 10, 1: 11}
_ZERO_BITS = 8


class _AGStub:
    """Protocol stand-in for :func:`runner._evaluate_agreement`."""

    __slots__ = ("is_candidate", "decision", "input_bit")

    def __init__(
        self, is_candidate: bool, decision: Decision, input_bit: int
    ) -> None:
        self.is_candidate = is_candidate
        self.decision = decision
        self.input_bit = input_bit


class _AgreementVec(VecEngineBase):
    """One agreement run, array-form."""

    def __init__(
        self,
        params: Params,
        schedule: AgreementSchedule,
        seed: int,
        adversary: Adversary,
        max_faulty: int,
        input_bits: Sequence[int],
        total_rounds: Round,
    ) -> None:
        np = np_module()
        self.np = np
        self.n = n = params.n
        self.total_rounds = total_rounds
        self.input_bits = list(input_bits)

        # Replay the candidate coin and referee sample per node.
        rngs = RngFactory(seed)
        p_cand = params.candidate_probability
        K = params.referee_count
        cand_nodes: List[NodeId] = []
        cand_refs: List[List[NodeId]] = []
        for u in range(n):
            rng = rngs.node_stream(u)
            if rng.random() < p_cand:
                cand_nodes.append(u)
                cand_refs.append(mirror_sample(rng, n, u, K))
        self.m = m = len(cand_nodes)
        self.K = K
        self.cand_nodes = cand_nodes
        self.cand_refs = cand_refs
        self.cand_nodes_a = np.array(cand_nodes, dtype=np.int64)
        self.cand_index = np.full(n, -1, dtype=np.int64)
        if m:
            self.cand_index[self.cand_nodes_a] = np.arange(m, dtype=np.int64)
        self.cand_input = np.array(
            [self.input_bits[u] for u in cand_nodes], dtype=np.int64
        )

        E = m * K
        self.E = E
        self.e_ci = np.repeat(np.arange(m, dtype=np.int64), K)
        self.e_ref = (
            np.concatenate(
                [np.asarray(refs, dtype=np.int64) for refs in cand_refs]
            )
            if m
            else np.zeros(0, dtype=np.int64)
        )
        # Mutual-pair FIFO edges (see module docstring).
        self.e_py = np.zeros(E, dtype=bool)
        if m:
            sampled = np.zeros((m, n), dtype=bool)
            for ci in range(m):
                sampled[ci, np.asarray(cand_refs[ci], dtype=np.int64)] = True
            cx = self.cand_index[self.e_ref]
            is_cand = cx >= 0
            self.e_py[is_cand] = sampled[
                cx[is_cand], self.cand_nodes_a[self.e_ci[is_cand]]
            ]
            del sampled
        self.cand_vec_dsts: List[Any] = []
        self.cand_py_dsts: List[List[NodeId]] = []
        for ci in range(m):
            py_mask = self.e_py[ci * K : (ci + 1) * K]
            refs_a = np.asarray(cand_refs[ci], dtype=np.int64)
            self.cand_vec_dsts.append(refs_a[~py_mask])
            # repro: lint-ignore[VEC001] per-candidate setup, not hot path
            self.cand_py_dsts.append([int(d) for d in refs_a[py_mask]])

        self._init_adversary(seed, adversary, max_faulty, self.input_bits)
        self.crash_round = np.full(n, _NO_CRASH, dtype=np.int64)

        # Registration (round 2): CSR over delivered round-1 edges,
        # member lists in ascending candidate order (= inbox wire order).
        self.e_reg = np.zeros(E, dtype=bool)
        self.g_built = False
        self.g_ref = self.g_ci = self.g_py = None
        self.ref_start = np.zeros(n, dtype=np.int64)
        self.ref_d = np.zeros(n, dtype=np.int64)
        self.py_member_refs: Dict[NodeId, List[NodeId]] = {}

        # Protocol state.
        self.forwarded = np.zeros(n, dtype=bool)
        self.decided_zero = (
            self.cand_input == 0 if m else np.zeros(0, dtype=bool)
        )
        self.sent_zero = self.decided_zero.copy()

        # Staged delivery facts for the next round.
        self.saw_ref_zero = np.zeros(n, dtype=bool)
        self.saw_cand_zero = np.zeros(m, dtype=bool)
        self.staged_delivered = 0

        # Mutual-pair FIFOs.
        self.py_fifo: Dict[Tuple[NodeId, NodeId], Deque] = {}
        self.open_order: Dict[NodeId, List[NodeId]] = {}
        self.py_backlog = 0

        # Per-round transmit records (victim outbox reconstruction).
        self._open_prepush: Dict[NodeId, List[NodeId]] = {}
        self._py_popped: Dict[Tuple[NodeId, NodeId], Tuple[str, tuple]] = {}
        self._fwd_now = np.zeros(n, dtype=bool)
        self._send_now = np.zeros(m, dtype=bool)

        self.pn = np.zeros(n, dtype=np.int64)

    # ------------------------------------------------------------------

    def run(self) -> RunResult:
        for r in range(1, self.total_rounds + 1):
            self._round = r
            if (
                r > 1
                and not self.staged_delivered
                and not self.py_backlog
                and self._adversary_done()
            ):
                break
            self._execute_round(r)
        self._finalize_metrics(self.total_rounds)
        return self._build_result()

    def _execute_round(self, r: Round) -> None:
        np = self.np
        metrics = self.metrics
        metrics.begin_round()

        saw_ref = self.saw_ref_zero
        saw_cand = self.saw_cand_zero
        self.saw_ref_zero = np.zeros(self.n, dtype=bool)
        self.saw_cand_zero = np.zeros(self.m, dtype=bool)

        self._open_prepush = {
            src: list(order) for src, order in self.open_order.items()
        }
        self._py_popped = {}

        # ---- step phase --------------------------------------------------
        fwd_now = np.zeros(self.n, dtype=bool)
        send_now = np.zeros(self.m, dtype=bool)
        if r >= 2:
            if r == 2 and self.E:
                self._build_registration()
            # Referee role first (matches on_round's statement order).
            fwd_now = saw_ref & ~self.forwarded & (self.ref_d > 0)
            self.forwarded |= fwd_now
            for x, members in self.py_member_refs.items():
                if fwd_now[x]:
                    for dst in members:
                        self._py_push(
                            x, dst, MSG_ZERO_TO_CANDIDATE, (), _ZERO_BITS
                        )
            # Candidate role: decide zero, send it once.
            if self.m:
                self.decided_zero |= saw_cand
                send_now = saw_cand & ~self.sent_zero
                self.sent_zero |= send_now
                for ci in np.flatnonzero(send_now).tolist():
                    for dst in self.cand_py_dsts[ci]:
                        self._py_push(
                            self.cand_nodes[ci],
                            dst,
                            MSG_ZERO_TO_REFEREE,
                            (),
                            _ZERO_BITS,
                        )
        self._fwd_now = fwd_now
        self._send_now = send_now

        # ---- transmit phase ---------------------------------------------
        sent = 0
        bits_total = 0
        kind_counts: Dict[str, int] = {}
        z2c_src = z2c_ci = None
        z2r_segs: List[Tuple[NodeId, Any]] = []
        py_wire: List[Tuple[NodeId, NodeId, str]] = []

        if r == 1:
            if self.E:
                sent += self.E
                bits_total += int(
                    sum(_VAL_BITS[int(b)] for b in self.cand_input.tolist())
                ) * self.K
                kind_counts[MSG_VALUE] = self.E
                self.pn[self.cand_nodes_a] += self.K
        else:
            if self.g_built and fwd_now.any():
                mask = fwd_now[self.g_ref] & ~self.g_py
                if mask.any():
                    z2c_src = self.g_ref[mask]
                    z2c_ci = self.g_ci[mask]
                    cnt = int(z2c_src.size)
                    sent += cnt
                    bits_total += _ZERO_BITS * cnt
                    kind_counts[MSG_ZERO_TO_CANDIDATE] = cnt
                    np.add.at(self.pn, z2c_src, 1)
            for ci in np.flatnonzero(send_now).tolist():
                dsts = self.cand_vec_dsts[ci]
                cnt = int(dsts.size)
                if cnt:
                    sent += cnt
                    bits_total += _ZERO_BITS * cnt
                    kind_counts[MSG_ZERO_TO_REFEREE] = (
                        kind_counts.get(MSG_ZERO_TO_REFEREE, 0) + cnt
                    )
                    self.pn[self.cand_nodes[ci]] += cnt
                    z2r_segs.append((self.cand_nodes[ci], dsts))

        if self.py_backlog:
            for src in list(self.open_order):
                order = self.open_order[src]
                for dst in list(order):
                    fifo = self.py_fifo[(src, dst)]
                    kind, fields, bits = fifo.popleft()
                    self.py_backlog -= 1
                    sent += 1
                    bits_total += bits
                    kind_counts[kind] = kind_counts.get(kind, 0) + 1
                    self.pn[src] += 1
                    self._py_popped[(src, dst)] = (kind, fields)
                    py_wire.append((src, dst, kind))
                    if not fifo:
                        del self.py_fifo[(src, dst)]
                        order.remove(dst)
                if not order:
                    del self.open_order[src]

        metrics.messages_sent += sent
        metrics.bits_sent += bits_total
        metrics.per_round_messages[-1] += sent
        for kind, cnt in kind_counts.items():
            metrics.per_kind_messages[kind] += cnt

        # ---- crash phase -------------------------------------------------
        dropped = self._crash_phase(r)
        dropped_by: Dict[NodeId, Any] = {}
        if dropped:
            by: Dict[NodeId, List[NodeId]] = {}
            for src, dst in dropped:
                by.setdefault(src, []).append(dst)
            dropped_by = {
                src: np.asarray(dsts, dtype=np.int64)
                for src, dsts in by.items()
            }

        # ---- delivery phase ----------------------------------------------
        delivered = 0
        expired = 0
        cr = self.crash_round

        def _keep(src_arr: Any, dst_arr: Any) -> Any:
            nonlocal expired
            keep = cr[dst_arr] > r
            expired += int(dst_arr.size - keep.sum())
            if dropped_by:
                drop = np.zeros(dst_arr.shape, dtype=bool)
                for v, vd in dropped_by.items():
                    sel = (
                        src_arr == v
                        if not np.isscalar(src_arr)
                        else (np.full(dst_arr.shape, src_arr == v))
                    )
                    if sel.any():
                        drop |= sel & np.isin(dst_arr, vd)
                expired -= int((drop & ~keep).sum())
                keep &= ~drop
            return keep

        if r == 1 and self.E:
            keep = _keep(self.cand_nodes_a[self.e_ci], self.e_ref)
            self.e_reg = keep
            delivered += int(keep.sum())
            zero_edge = keep & (self.cand_input[self.e_ci] == 0)
            self.saw_ref_zero[self.e_ref[zero_edge]] = True
        else:
            if z2c_src is not None:
                keep = _keep(z2c_src, self.cand_nodes_a[z2c_ci])
                delivered += int(keep.sum())
                self.saw_cand_zero[z2c_ci[keep]] = True
            for src, dsts in z2r_segs:
                keep = _keep(src, dsts)
                delivered += int(keep.sum())
                self.saw_ref_zero[dsts[keep]] = True
            for src, dst, kind in py_wire:
                if (src, dst) in dropped:
                    continue
                if dst in self.crashed:
                    expired += 1
                    continue
                delivered += 1
                if kind == MSG_ZERO_TO_CANDIDATE:
                    self.saw_cand_zero[int(self.cand_index[dst])] = True
                else:
                    self.saw_ref_zero[dst] = True

        metrics.messages_delivered += delivered
        metrics.messages_expired += expired
        if delivered:
            metrics.delivery_latency[1] += delivered
        self.staged_delivered = delivered

    # ------------------------------------------------------------------

    def _build_registration(self) -> None:
        np = self.np
        reg_idx = np.flatnonzero(self.e_reg)
        self.g_built = True
        if not reg_idx.size:
            self.g_ref = np.zeros(0, dtype=np.int64)
            self.g_ci = np.zeros(0, dtype=np.int64)
            self.g_py = np.zeros(0, dtype=bool)
            return
        order = np.argsort(self.e_ref[reg_idx], kind="stable")
        g_edge = reg_idx[order]
        self.g_ref = self.e_ref[g_edge]
        self.g_ci = self.e_ci[g_edge]
        self.g_py = self.e_py[g_edge]
        urefs, first, counts = np.unique(
            self.g_ref, return_index=True, return_counts=True
        )
        self.ref_start[urefs] = first
        self.ref_d[urefs] = counts
        py_idx = np.flatnonzero(self.g_py)
        for i in py_idx.tolist():
            x = int(self.g_ref[i])
            dst = self.cand_nodes[int(self.g_ci[i])]
            self.py_member_refs.setdefault(x, []).append(dst)

    def _py_push(
        self, src: NodeId, dst: NodeId, kind: str, fields: tuple, bits: int
    ) -> None:
        fifo = self.py_fifo.get((src, dst))
        if fifo is None:
            fifo = self.py_fifo[(src, dst)] = deque()
        if not fifo:
            self.open_order.setdefault(src, []).append(dst)
        fifo.append((kind, fields, bits))
        self.py_backlog += 1

    # ------------------------------------------------------------------

    def _outbox_envelopes(self, sender: NodeId, r: Round) -> List[Envelope]:
        return self._cached_outbox(
            sender, lambda: self._build_outbox(sender, r)
        )

    def _build_outbox(self, sender: NodeId, r: Round) -> List[Envelope]:
        if self.crash_round[sender] < r:
            return []
        if r == 1:
            ci = int(self.cand_index[sender])
            if ci < 0:
                return []
            msg = Message(MSG_VALUE, (self.input_bits[sender],))
            return [
                Envelope(sender, dst, msg, r) for dst in self.cand_refs[ci]
            ]
        out: List[Envelope] = []
        seen: Set[NodeId] = set()
        for dst in self._open_prepush.get(sender, []):
            popped = self._py_popped.get((sender, dst))
            if popped is None:
                continue
            seen.add(dst)
            out.append(Envelope(sender, dst, Message(*popped), r))
        if self._fwd_now[sender]:
            msg = Message(MSG_ZERO_TO_CANDIDATE, ())
            start = int(self.ref_start[sender])
            d = int(self.ref_d[sender])
            for q in range(d):
                dst = self.cand_nodes[int(self.g_ci[start + q])]
                if dst in seen:
                    continue
                seen.add(dst)
                if (sender, dst) in self._py_popped:
                    out.append(
                        Envelope(
                            sender, dst,
                            Message(*self._py_popped[(sender, dst)]), r,
                        )
                    )
                else:
                    out.append(Envelope(sender, dst, msg, r))
        ci = int(self.cand_index[sender])
        if ci >= 0 and self._send_now[ci]:
            msg = Message(MSG_ZERO_TO_REFEREE, ())
            for dst in self.cand_refs[ci]:
                if dst in seen:
                    continue
                seen.add(dst)
                if (sender, dst) in self._py_popped:
                    out.append(
                        Envelope(
                            sender, dst,
                            Message(*self._py_popped[(sender, dst)]), r,
                        )
                    )
                else:
                    out.append(Envelope(sender, dst, msg, r))
        return out

    def _outbox_senders(self, r: Round) -> List[NodeId]:
        return [
            u
            for u in sorted(self.faulty)
            if u not in self.crashed and self._outbox_envelopes(u, r)
        ]

    def _discard_queues(self, victim: NodeId, r: Round) -> None:
        self.crash_round[victim] = r
        for dst in self.open_order.pop(victim, []):
            fifo = self.py_fifo.pop((victim, dst))
            self.py_backlog -= len(fifo)

    # ------------------------------------------------------------------

    def _build_result(self) -> RunResult:
        np = self.np
        pn = self.metrics.per_node_sent
        for u in np.flatnonzero(self.pn).tolist():
            pn[u] = int(self.pn[u])
        protocols: List[_AGStub] = []
        for u in range(self.n):
            ci = int(self.cand_index[u])
            bit = self.input_bits[u]
            if ci < 0:
                protocols.append(_AGStub(False, Decision.UNDECIDED, bit))
                continue
            if self.decided_zero[ci]:
                decision = Decision.ZERO
            elif u not in self.crashed:
                decision = Decision.of(bit)  # on_stop: decide own input
            else:
                decision = Decision.UNDECIDED
            protocols.append(_AGStub(True, decision, bit))
        return RunResult(
            n=self.n,
            protocols=protocols,
            metrics=self.metrics,
            trace=None,
            faulty=self.faulty,
            crashed=dict(self.crashed),
            rounds=self.metrics.rounds_executed,
            horizon=self.total_rounds,
            max_delay=0,
        )


def run_agreement_vec(
    params: Params,
    schedule: AgreementSchedule,
    seed: int,
    adversary: Adversary,
    max_faulty: int,
    input_bits: Sequence[int],
    total_rounds: Round,
) -> RunResult:
    """Run the Section V-A agreement on the vec backend (exact parity)."""
    engine = _AgreementVec(
        params, schedule, seed, adversary, max_faulty, input_bits, total_rounds
    )
    return engine.run()
