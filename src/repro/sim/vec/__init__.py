"""Vectorized struct-of-arrays engine backend (``--backend vec``).

A second implementation of the synchronous round engine that represents a
round as numpy struct-of-arrays state and executes the broadcast / sample
/ deliver / crash phases as batched array operations.  It reproduces the
reference engine (:mod:`repro.sim.network`) *exactly* — same seed, same
``Metrics`` (message/bit/round counters, per-round totals, per-node and
per-kind counts), same protocol outcomes — for the three protocols it
vectorizes:

* the Section IV-A leader election (:func:`run_election_vec`),
* the Section V-A agreement (:func:`run_agreement_vec`),
* the flooding consensus baseline (:func:`run_flooding_vec`).

Exactness is possible because the reference protocols are anonymous and
state-light: every per-node random draw is an independent stream
(:class:`~repro.rng.RngFactory`), every message fold (rank lists, maxima,
zero propagation) is order-independent, and the only order-sensitive
artifact — the adversary's per-envelope ``keep()`` calls on a crashing
node's outbox — is reproduced by materialising exactly those outboxes, in
exactly the reference engine's wire order, for exactly the crash victims
(see :class:`~repro.sim.vec._support.LazyOutboxes`).

Configurations the backend cannot reproduce exactly raise
:class:`~repro.errors.VecUnsupported` *before any side effects*; callers
(:mod:`repro.core.runner`) fall back to the reference engine.  Missing
numpy raises :class:`~repro.errors.BackendUnavailable` instead — that one
is the user's problem to fix (``pip install repro[perf]``), not a silent
fallback.

See ``docs/VEC.md`` for the SoA layout and the parity argument.
"""

from __future__ import annotations

from ...optdeps import have_numpy  # noqa: F401  (re-export for callers)
from ._support import VEC_ADVERSARIES, ensure_vec_supported
from .agreement import run_agreement_vec
from .election import run_election_vec
from .flooding import run_flooding_vec

__all__ = [
    "VEC_ADVERSARIES",
    "ensure_vec_supported",
    "have_numpy",
    "run_agreement_vec",
    "run_election_vec",
    "run_flooding_vec",
]
