"""The synchronous round engine.

Executes the model of Section II of the paper:

* In round ``r`` every *active* alive node runs its protocol callback with
  the messages delivered to it this round, and queues outgoing messages.
* Per ordered edge, one queued message is placed on the wire per round
  (CONGEST); further messages on the same edge wait in FIFO order.
* The adversary then chooses which faulty nodes crash *in this round*; an
  adversary-chosen subset of a crashing node's wire messages is lost, the
  rest are delivered.  A crashed node is inactive forever after (its
  queued-but-untransmitted messages are discarded).
* Wire messages are delivered at the start of round ``r + 1``.

The engine never iterates over the ``n^2`` edges — the complete topology
is implicit and only materialised edges (actual sends) cost work, which is
what makes simulating sublinear-message protocols on large ``n`` cheap.
"""

from __future__ import annotations

import heapq
import random
import time
from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, List, Optional, Sequence, Set, Tuple

from ..errors import BudgetExceeded, CongestViolation, SimulationError
from ..faults.adversary import Adversary, RoundView
from ..obs.timing import (
    NULL_TIMERS,
    PHASE_CRASH,
    PHASE_DELIVER,
    PHASE_STEP,
    PHASE_TRANSMIT,
    PhaseTimers,
)
from ..params import CongestBudget
from ..rng import RngFactory
from ..types import Knowledge, NodeId, Round
from .delivery import SYNCHRONOUS, DeliverySchedule
from .message import Delivery, Envelope, Message
from .metrics import Metrics
from .node import NEVER, Context, Protocol
from .trace import Trace, TraceEvent

#: Safety valve: a run may never execute more rounds than this.
HARD_MAX_ROUNDS = 1_000_000


@dataclass
class RunResult:
    """Everything observable after a run."""

    n: int
    protocols: Sequence[Protocol]
    metrics: Metrics
    trace: Optional[Trace]
    faulty: Set[NodeId]
    crashed: Dict[NodeId, Round]
    #: Last round the engine actually executed (<= ``horizon`` when the
    #: quiescence fast-forward cut the run short).
    rounds: Round
    #: The requested round count (the nominal schedule length).
    horizon: Round = 0
    #: Delay bound Δ of the run's delivery schedule (0 = synchronous).
    max_delay: int = 0

    @property
    def alive(self) -> List[NodeId]:
        """Nodes that had not crashed by the end of the run."""
        return [u for u in range(self.n) if u not in self.crashed]

    @property
    def nonfaulty(self) -> List[NodeId]:
        """Nodes outside the static faulty set."""
        return [u for u in range(self.n) if u not in self.faulty]

    def protocol(self, node: NodeId) -> Protocol:
        """The protocol instance that ran on ``node``."""
        return self.protocols[node]

    @property
    def phase_seconds(self) -> Dict[str, float]:
        """Wall-clock per engine phase (empty unless profiled)."""
        return self.metrics.phase_seconds


class Network:
    """A complete synchronous network of ``n`` nodes under crash faults."""

    def __init__(
        self,
        n: int,
        protocol_factory: Callable[[NodeId], Protocol],
        *,
        seed: int = 0,
        adversary: Optional[Adversary] = None,
        max_faulty: int = 0,
        inputs: Optional[Sequence[int]] = None,
        knowledge: Knowledge = Knowledge.KT0,
        congest: Optional[CongestBudget] = None,
        enforce_congest: bool = True,
        collect_trace: bool = False,
        message_budget: Optional[int] = None,
        budget_mode: str = "suppress",
        timers: Optional[PhaseTimers] = None,
        delivery: Optional[DeliverySchedule] = None,
    ) -> None:
        if n < 2:
            raise SimulationError(f"need at least 2 nodes, got {n}")
        self.n = n
        self._rngs = RngFactory(seed)
        self.adversary = adversary or Adversary()
        self.knowledge = knowledge
        self.congest = congest or CongestBudget(n)
        self.enforce_congest = enforce_congest
        self._bits_cap = self.congest.bits_per_message
        self.metrics = Metrics()
        self.trace: Optional[Trace] = Trace() if collect_trace else None
        # Phase profiling is opt-in; the shared disabled instance keeps
        # the round loop's checks to one boolean per phase.
        self._timers = timers if timers is not None else NULL_TIMERS
        if budget_mode not in ("suppress", "raise"):
            raise SimulationError(f"unknown budget_mode {budget_mode!r}")
        self.message_budget = message_budget
        self.budget_mode = budget_mode
        self.budget_exhausted = False
        # Bounded-delay partial synchrony.  Δ=0 (the default) never touches
        # the schedule inside the round loop — ``_sync`` gates every new
        # branch, keeping the classic path byte-identical.
        self.delivery = delivery if delivery is not None else SYNCHRONOUS
        self._sync = self.delivery.is_synchronous
        # In-flight delayed messages: arrival round -> envelopes, plus a
        # running total so quiescence checks cost one int comparison.
        self._in_flight: Dict[Round, List[Envelope]] = {}
        self._in_flight_total = 0

        enforce_kt0 = knowledge is Knowledge.KT0
        self.contexts: List[Context] = [
            Context(self, u, self._rngs.node_stream(u), enforce_kt0)
            for u in range(n)
        ]
        if knowledge is Knowledge.KT1:
            # Nodes know all their neighbours' handles up-front — their
            # *other* n - 1 ports, consistent with KT0/``all_ports()``
            # semantics where ``_known`` never contains the node itself.
            for ctx in self.contexts:
                ctx._known.update(u for u in range(n) if u != ctx.node_id)
        self.protocols: List[Protocol] = [protocol_factory(u) for u in range(n)]

        adversary_rng = self._rngs.adversary_stream()
        self._adversary_rng = adversary_rng
        self.max_faulty = max_faulty
        self.faulty: Set[NodeId] = set(
            self.adversary.select_faulty(n, max_faulty, adversary_rng, inputs)
        )
        if len(self.faulty) > max_faulty:
            raise SimulationError(
                f"adversary selected {len(self.faulty)} faulty nodes, "
                f"budget is {max_faulty}"
            )
        self.crashed: Dict[NodeId, Round] = {}

        # Per-sender FIFO queues: sender -> dst -> deque of Messages.
        self._queues: List[Dict[NodeId, Deque[Message]]] = [dict() for _ in range(n)]
        self._queued_total = 0
        # Pending senders live in a set (membership) plus an
        # order-preserving list consumed each round in ascending-id order.
        # Enqueues happen in ascending node order within a round (nodes
        # step in id order), so the list is almost always already sorted;
        # ``_pending_dirty`` marks the rare out-of-order append and the
        # round loop re-sorts only then, instead of ``sorted(set)`` every
        # round.  Iteration order is identical to the former per-round
        # ``sorted(self._pending_senders)``.
        self._pending_senders: Set[NodeId] = set()
        self._pending_list: List[NodeId] = []
        self._pending_dirty = False
        self._inboxes: Dict[NodeId, List[Delivery]] = {}
        self._round: Round = 0
        # Wake schedule: a min-heap of (round, node) entries with lazy
        # deletion — an entry is live iff it matches the node's current
        # ``_next_wake``.  Every node starts awake in round 1.
        self._wake_heap: List[Tuple[Round, NodeId]] = [(1, u) for u in range(n)]

    # ------------------------------------------------------------------
    # Context callbacks
    # ------------------------------------------------------------------

    def _enqueue(self, src: NodeId, dst: NodeId, message: Message) -> None:
        """Queue a message on the ordered edge ``src -> dst`` (FIFO)."""
        if self.enforce_congest and message.bits > self._bits_cap:
            raise CongestViolation(
                f"message {message.kind!r} is {message.bits} bits; CONGEST "
                f"budget is {self._bits_cap} bits for n={self.n}"
            )
        queues = self._queues[src]
        queue = queues.get(dst)
        if queue is None:
            queues[dst] = queue = deque()
        queue.append(message)
        self._queued_total += 1
        pending = self._pending_senders
        if src not in pending:
            pending.add(src)
            order = self._pending_list
            if order and src < order[-1]:
                self._pending_dirty = True
            order.append(src)

    # ------------------------------------------------------------------
    # Round machinery
    # ------------------------------------------------------------------

    def run(self, total_rounds: Round) -> RunResult:
        """Execute ``total_rounds`` synchronous rounds and finalize."""
        if total_rounds < 1:
            raise SimulationError(f"total_rounds must be >= 1, got {total_rounds}")
        if total_rounds > HARD_MAX_ROUNDS:
            raise SimulationError(
                f"total_rounds {total_rounds} exceeds hard cap {HARD_MAX_ROUNDS}"
            )

        for r in range(1, total_rounds + 1):
            self._round = r
            if self._quiescent() and self.adversary.done(self._view()):
                # Nothing can happen in any later round; fast-forward.
                break
            self._execute_round(r)

        # Messages whose scheduled arrival lies past the horizon are still
        # in flight when the run ends.  They were sent, so the conservation
        # identity demands an accounted fate: they expire undelivered.
        # (A quiescence break never reaches here with in-flight messages —
        # a run is only quiescent when the delay queue is empty.)
        if self._in_flight_total:
            self._expire_in_flight()

        # Rounds execute contiguously from 1, so the executed count is also
        # the last executed round; the requested horizon is kept separately.
        self.metrics.rounds = self.metrics.rounds_executed
        self.metrics.horizon = total_rounds
        # on_stop sees the last round that actually executed — when the
        # quiescence fast-forward cut the run short, that is earlier than
        # the nominal horizon (which stays available as ``horizon``).
        last_executed = self.metrics.rounds_executed
        for u, protocol in enumerate(self.protocols):
            if u not in self.crashed:
                ctx = self.contexts[u]
                ctx.round = last_executed
                protocol.on_stop(ctx)
        if self._timers.enabled:
            for phase, seconds in self._timers.as_dict().items():
                self.metrics.phase_seconds[phase] = (
                    self.metrics.phase_seconds.get(phase, 0.0) + seconds
                )
        return RunResult(
            n=self.n,
            protocols=self.protocols,
            metrics=self.metrics,
            trace=self.trace,
            faulty=self.faulty,
            crashed=dict(self.crashed),
            rounds=self.metrics.rounds_executed,
            horizon=total_rounds,
            max_delay=self.delivery.max_delay,
        )

    def _entry_live(self, entry: Tuple[Round, NodeId]) -> bool:
        """True iff a wake-heap entry still matches its node's schedule."""
        round_, u = entry
        if u in self.crashed:
            return False
        ctx = self.contexts[u]
        return ctx._next_wake != NEVER and ctx._next_wake == round_

    def _quiescent(self) -> bool:
        """True when no future activity is possible without a new message.

        Delayed messages still in flight count as future activity: a run is
        only quiescent when the delay queue is empty, otherwise the
        fast-forward would skip their arrival rounds.
        """
        if self._queued_total or self._inboxes or self._in_flight_total:
            return False
        heap = self._wake_heap
        while heap and not self._entry_live(heap[0]):
            heapq.heappop(heap)
        return not heap

    def _execute_round(self, r: Round) -> None:
        self.metrics.begin_round()
        # Delayed messages scheduled to arrive this round join the inbox
        # map *before* the swap, after the synchronous (one-round) traffic
        # already deposited by round r - 1's delivery phase — so a delayed
        # arrival also wakes an idle receiver, exactly like a regular one.
        if self._in_flight_total:
            arrivals = self._in_flight.pop(r, None)
            if arrivals:
                self._in_flight_total -= len(arrivals)
                self._absorb_arrivals(arrivals, r)
        inboxes = self._inboxes
        self._inboxes = {}
        crashed = self.crashed
        contexts = self.contexts
        protocols = self.protocols
        # Profiling: one boolean gate per phase boundary when disabled
        # (the no-op path), five perf_counter reads per round when on.
        timers = self._timers
        profiling = timers.enabled
        if profiling:
            _perf = time.perf_counter
            _mark = _perf()

        # 1. Protocol steps for active alive nodes (scheduled wakes plus
        # nodes with deliveries).  Heap pops come out ordered by
        # (round, node) and every live popped entry has round == r (rounds
        # execute contiguously, so older entries were consumed earlier),
        # which makes ``due`` ascending by construction — only the
        # delivery-woken nodes outside it need sorting.
        heap = self._wake_heap
        heappop = heapq.heappop
        heappush = heapq.heappush
        entry_live = self._entry_live
        due: List[NodeId] = []
        while heap and heap[0][0] <= r:
            entry = heappop(heap)
            if entry_live(entry) and (not due or due[-1] != entry[1]):
                # The duplicate guard matters for protocols that are woken
                # by deliveries mid-wait and re-arm the same wake_at
                # boundary: each such invocation pushes another (round,
                # node) entry, and all of them are live when the boundary
                # arrives.  Without the guard the node would step several
                # times in one round, re-reading the same inbox.  Ordered
                # pops put duplicates adjacently, so checking the tail of
                # ``due`` is enough.
                due.append(entry[1])
        if inboxes:
            due_set = set(due)
            # A delivery wakes an idle receiver but never a halted one:
            # halt() is permanent, so resurrecting the node here would
            # reset its wake below and spin it for the rest of the run.
            extra = [
                u
                for u in inboxes
                if u not in due_set
                and u not in crashed
                and not contexts[u]._halted
            ]
            if extra:
                extra.sort()
                due = list(heapq.merge(due, extra))
        for u in due:
            ctx = contexts[u]
            inbox = inboxes.get(u) or []
            ctx.round = r
            ctx._next_wake = r + 1  # stay active by default
            if inbox:
                known_add = ctx._known.add
                for delivery in inbox:
                    known_add(delivery.sender)
            protocol = protocols[u]
            if r == 1:
                protocol.on_start(ctx)
            protocol.on_round(ctx, inbox)
            next_wake = ctx._next_wake
            if next_wake != NEVER:
                heappush(heap, (next_wake, u))
        if profiling:
            _now = _perf()
            timers.add(PHASE_STEP, _now - _mark)
            _mark = _now

        # 2. Wire transmission: one queued message per ordered edge.
        #
        # ``_pending_list`` is consumed in ascending-id order (re-sorted
        # only after an out-of-order enqueue) and rebuilt with the senders
        # that still hold a backlog, so stale entries never accumulate.
        order = self._pending_list
        if self._pending_dirty:
            order.sort()
            self._pending_dirty = False
        pending = self._pending_senders
        all_queues = self._queues
        record_send = self._record_send
        track_outboxes = self.adversary.dynamic_selection
        faulty = self.faulty
        metrics = self.metrics
        # Fast path: without a message budget or tracing, send accounting
        # is batched per sender (one counter update per sender instead of
        # one per message) and no TraceEvent is ever constructed.
        fast_sends = self.message_budget is None and self.trace is None
        per_kind = metrics.per_kind_messages
        per_node = metrics.per_node_sent
        per_round = metrics.per_round_messages
        queued_total = self._queued_total
        wire: List[Envelope] = []
        outboxes: Dict[NodeId, List[Envelope]] = {}
        still_pending: List[NodeId] = []
        for u in order:
            if u not in pending or u in crashed:
                continue
            queues = all_queues[u]
            if not queues:
                pending.discard(u)
                continue
            sent: List[Envelope] = []
            emptied: List[NodeId] = []
            if fast_sends:
                bits_total = 0
                for dst, queue in queues.items():
                    message = queue.popleft()
                    queued_total -= 1
                    if not queue:
                        emptied.append(dst)
                    sent.append(Envelope(u, dst, message, r))
                    bits_total += message.bits
                    per_kind[message.kind] += 1
                count = len(sent)
                metrics.messages_sent += count
                metrics.bits_sent += bits_total
                per_node[u] = per_node.get(u, 0) + count
                per_round[-1] += count
            else:
                for dst, queue in queues.items():
                    message = queue.popleft()
                    queued_total -= 1
                    if not queue:
                        emptied.append(dst)
                    envelope = Envelope(u, dst, message, r)
                    if record_send(envelope):
                        sent.append(envelope)
            for dst in emptied:
                del queues[dst]
            if queues:
                still_pending.append(u)
            else:
                pending.discard(u)
            if sent:
                wire.extend(sent)
                if track_outboxes or u in faulty:
                    outboxes[u] = sent
        self._queued_total = queued_total
        self._pending_list = still_pending
        if profiling:
            _now = _perf()
            timers.add(PHASE_TRANSMIT, _now - _mark)
            _mark = _now

        # 3. Adversary crashes.
        view = self._view_with_outboxes(outboxes)
        orders = self.adversary.plan_round(view, self._adversary_rng)
        # CONGEST guarantees (src, dst) uniquely identifies a wire message
        # within a round, so drops can be keyed by edge.
        dropped: Set[Tuple[NodeId, NodeId]] = set()
        for victim, order in orders.items():
            if victim not in self.faulty:
                # An adaptive-selection adversary corrupts on the fly,
                # charging the fault budget (paper: static selection only —
                # this path exists for experiment E14's demonstration).
                if not self.adversary.dynamic_selection:
                    raise SimulationError(
                        f"adversary crashed non-faulty node {victim}"
                    )
                if len(self.faulty) >= self.max_faulty:
                    raise SimulationError(
                        "dynamic-selection adversary exceeded the fault "
                        f"budget {self.max_faulty}"
                    )
                self.faulty.add(victim)
            if victim in self.crashed:
                continue
            self.crashed[victim] = r
            self.metrics.record_crash()
            if self.trace is not None:
                self.trace.record(TraceEvent(round=r, kind="crash", src=victim))
            # Discard untransmitted queue content of the crashed node.
            for queue in self._queues[victim].values():
                self._queued_total -= len(queue)
            self._queues[victim] = {}
            self._pending_senders.discard(victim)
            for envelope in outboxes.get(victim, []):
                if not order.keep(envelope):
                    dropped.add((envelope.src, envelope.dst))
        if profiling:
            _now = _perf()
            timers.add(PHASE_CRASH, _now - _mark)
            _mark = _now

        # 4. Delivery scheduling for round r + 1.  The no-trace fast path
        # skips TraceEvent construction entirely; with tracing on, the
        # deliver event takes ``round_received`` from the Delivery actually
        # handed to the receiver, so the validator checks the real latency.
        #
        # Under a Δ>0 schedule the adversary may hold any surviving wire
        # message extra rounds: those go to the in-flight queue and are
        # absorbed at the top of their arrival round instead.  The Δ=0
        # branch below is the classic engine, untouched.
        trace = self.trace
        new_inboxes = self._inboxes
        next_round = r + 1
        delivered = 0
        expired = 0
        if self._sync:
            for envelope in wire:
                src = envelope.src
                dst = envelope.dst
                if dropped and (src, dst) in dropped:
                    metrics.record_drop()
                    if trace is not None:
                        trace.record(
                            TraceEvent(
                                round=r,
                                kind="drop",
                                src=src,
                                dst=dst,
                                message_kind=envelope.message.kind,
                            )
                        )
                    continue
                if dst in crashed:
                    # Receiver is dead: the message expires.  It still
                    # counts as sent (the paper's measure), so conservation
                    # demands it be accounted:
                    # sent == delivered + dropped + expired.
                    expired += 1
                    if trace is not None:
                        trace.record(
                            TraceEvent(
                                round=r,
                                kind="expire",
                                src=src,
                                dst=dst,
                                message_kind=envelope.message.kind,
                            )
                        )
                    continue
                delivered += 1
                delivery = Delivery(src, envelope.message, next_round)
                if trace is not None:
                    trace.record(
                        TraceEvent(
                            round=r,
                            kind="deliver",
                            src=src,
                            dst=dst,
                            message_kind=envelope.message.kind,
                            round_received=next_round,
                        )
                    )
                inbox = new_inboxes.get(dst)
                if inbox is None:
                    new_inboxes[dst] = [delivery]
                else:
                    inbox.append(delivery)
            if delivered:
                metrics.delivery_latency[1] += delivered
        else:
            schedule = self.delivery
            max_extra = schedule.max_delay
            in_flight = self._in_flight
            latency = metrics.delivery_latency
            for envelope in wire:
                src = envelope.src
                dst = envelope.dst
                if dropped and (src, dst) in dropped:
                    metrics.record_drop()
                    if trace is not None:
                        trace.record(
                            TraceEvent(
                                round=r,
                                kind="drop",
                                src=src,
                                dst=dst,
                                message_kind=envelope.message.kind,
                            )
                        )
                    continue
                extra = schedule.delay(envelope)
                if extra > 0:
                    # Held in flight; its fate (deliver or expire) is
                    # resolved when the arrival round begins.  The bound is
                    # clamped so a buggy schedule cannot exceed Δ.
                    if extra > max_extra:
                        extra = max_extra
                    arrival = next_round + extra
                    bucket = in_flight.get(arrival)
                    if bucket is None:
                        in_flight[arrival] = [envelope]
                    else:
                        bucket.append(envelope)
                    self._in_flight_total += 1
                    continue
                if dst in crashed:
                    expired += 1
                    if trace is not None:
                        trace.record(
                            TraceEvent(
                                round=r,
                                kind="expire",
                                src=src,
                                dst=dst,
                                message_kind=envelope.message.kind,
                            )
                        )
                    continue
                delivered += 1
                latency[1] += 1
                delivery = Delivery(src, envelope.message, next_round)
                if trace is not None:
                    trace.record(
                        TraceEvent(
                            round=r,
                            kind="deliver",
                            src=src,
                            dst=dst,
                            message_kind=envelope.message.kind,
                            round_received=next_round,
                        )
                    )
                inbox = new_inboxes.get(dst)
                if inbox is None:
                    new_inboxes[dst] = [delivery]
                else:
                    inbox.append(delivery)
        metrics.messages_delivered += delivered
        metrics.messages_expired += expired
        if profiling:
            timers.add(PHASE_DELIVER, _perf() - _mark)

    def _absorb_arrivals(self, arrivals: List[Envelope], r: Round) -> None:
        """Resolve delayed messages whose arrival round is ``r``.

        Runs before the round's inbox swap, so arrivals land in the same
        inbox map as the synchronous traffic deposited by round ``r - 1``
        and wake idle receivers identically.  A receiver that crashed while
        the message was in flight expires it here (checked at arrival, not
        at send — the crash may postdate the send round).
        """
        metrics = self.metrics
        trace = self.trace
        crashed = self.crashed
        inboxes = self._inboxes
        latency = metrics.delivery_latency
        delivered = 0
        expired = 0
        for envelope in arrivals:
            dst = envelope.dst
            if dst in crashed:
                expired += 1
                if trace is not None:
                    trace.record(
                        TraceEvent(
                            round=envelope.round_sent,
                            kind="expire",
                            src=envelope.src,
                            dst=dst,
                            message_kind=envelope.message.kind,
                            round_received=r,
                        )
                    )
                continue
            delivered += 1
            latency[r - envelope.round_sent] += 1
            delivery = Delivery(envelope.src, envelope.message, r)
            if trace is not None:
                trace.record(
                    TraceEvent(
                        round=envelope.round_sent,
                        kind="deliver",
                        src=envelope.src,
                        dst=dst,
                        message_kind=envelope.message.kind,
                        round_received=r,
                    )
                )
            inbox = inboxes.get(dst)
            if inbox is None:
                inboxes[dst] = [delivery]
            else:
                inbox.append(delivery)
        metrics.messages_delivered += delivered
        metrics.messages_expired += expired

    def _expire_in_flight(self) -> None:
        """Expire every message still in flight when the run ends."""
        metrics = self.metrics
        trace = self.trace
        expired = 0
        for arrival in sorted(self._in_flight):
            for envelope in self._in_flight[arrival]:
                expired += 1
                if trace is not None:
                    trace.record(
                        TraceEvent(
                            round=envelope.round_sent,
                            kind="expire",
                            src=envelope.src,
                            dst=envelope.dst,
                            message_kind=envelope.message.kind,
                            round_received=arrival,
                        )
                    )
        self._in_flight.clear()
        self._in_flight_total = 0
        metrics.messages_expired += expired

    def _record_send(self, envelope: Envelope) -> bool:
        """Account for one wire message; False means it was budget-suppressed.

        The suppress mode models "an algorithm that sends at most B
        messages" for the lower-bound experiments (Theorems 4.2/5.2): once
        the global budget is spent, no further message leaves any node.
        """
        if self.message_budget is not None:
            if self.metrics.messages_sent >= self.message_budget:
                self.budget_exhausted = True
                if self.budget_mode == "raise":
                    raise BudgetExceeded(
                        f"message budget {self.message_budget} exhausted "
                        f"in round {envelope.round_sent}"
                    )
                return False
        message = envelope.message
        self.metrics.record_send(envelope.src, message.kind, message.bits)
        if self.trace is not None:
            # No-trace runs never reach this TraceEvent construction.
            self.trace.record(
                TraceEvent(
                    round=envelope.round_sent,
                    kind="send",
                    src=envelope.src,
                    dst=envelope.dst,
                    message_kind=message.kind,
                )
            )
        return True

    def _view(self) -> RoundView:
        return self._view_with_outboxes({})

    def _view_with_outboxes(
        self, outboxes: Dict[NodeId, List[Envelope]]
    ) -> RoundView:
        faulty_alive = {u for u in self.faulty if u not in self.crashed}
        return RoundView(
            round=self._round,
            n=self.n,
            faulty_alive=faulty_alive,
            crashed=self.crashed,
            outboxes=outboxes,
            protocols=self.protocols,
            budget_remaining=max(0, self.max_faulty - len(self.faulty)),
        )
