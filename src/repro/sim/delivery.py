"""Adversarial delivery schedules: bounded-delay partial synchrony.

The paper's model is strictly synchronous: a message transmitted in round
``r`` is delivered at the start of round ``r + 1``.  A
:class:`DeliverySchedule` relaxes that to *bounded-delay partial
synchrony*: the adversary may hold any wire message in flight for up to
``max_delay`` extra rounds (``Δ``), so a message sent in round ``r``
arrives in some round of ``[r + 1, r + 1 + Δ]``.  ``Δ = 0`` **is** the
synchronous model — the engine bypasses the schedule entirely then, so
the default path stays byte-identical to the classic engine (the
elect512/seed2 canary guards this).

Schedules must be *deterministic and replayable*: like the chaos layer's
:class:`~repro.chaos.script.DeliveryFilter`, they never draw from an RNG
at delivery time.  The randomized-looking :class:`UniformDelay` hashes a
recorded salt with the message's edge and send round
(:func:`repro.rng.derive_seed`), so the same schedule against the same
seeded network produces the same execution, bit for bit — and a fuzzed
delay schedule can be stored, replayed, and shrunk.

Concrete schedules:

* :class:`SynchronousDelivery` — ``Δ = 0``, the classic engine;
* :class:`UniformDelay` — each message independently delayed by a
  salted-hash-uniform number of rounds in ``[0, Δ]``;
* :class:`TargetedDelay` — the adversary lags the links *into* chosen
  victim nodes by a fixed per-victim amount (asymmetric partitions),
  everything else synchronous.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

from ..errors import ConfigurationError
from ..rng import derive_seed
from ..types import NodeId
from .message import Envelope

#: Resolution of the deterministic uniform-delay coin.
_DELAY_BUCKETS = 1 << 20

#: Schedule kinds accepted by :func:`schedule_from_dict`.
SCHEDULE_KINDS = ("synchronous", "uniform", "targeted")


class DeliverySchedule:
    """Decides, per wire message, how many extra rounds it spends in flight.

    ``delay(envelope)`` returns the number of rounds *beyond* the model's
    baseline one-round latency, in ``[0, max_delay]``.  The engine never
    calls it when :attr:`is_synchronous` is true, which is what keeps the
    ``Δ = 0`` path byte-identical to the classic synchronous engine.
    """

    __slots__ = ()

    #: The bound ``Δ``: no message is delayed more than this many extra rounds.
    max_delay: int = 0

    @property
    def is_synchronous(self) -> bool:
        """True when every message takes exactly one round (``Δ = 0``)."""
        return self.max_delay == 0

    def delay(self, envelope: Envelope) -> int:
        """Extra in-flight rounds for ``envelope`` (``0 <= d <= max_delay``)."""
        return 0

    def name(self) -> str:
        """Short human-readable name (used in tables and scripts)."""
        return type(self).__name__

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe form; inverse of :func:`schedule_from_dict`."""
        return {"kind": "synchronous"}


class SynchronousDelivery(DeliverySchedule):
    """The classic model: every message arrives after exactly one round."""

    __slots__ = ()

    def name(self) -> str:
        return "sync"


#: Shared default instance (stateless, safe to share across networks).
SYNCHRONOUS = SynchronousDelivery()


class UniformDelay(DeliverySchedule):
    """Salted-hash-uniform delay in ``[0, max_delay]`` per message.

    The coin is ``derive_seed(salt, src, dst, round_sent)``, so repeats of
    the same edge in different rounds draw fresh delays while replays see
    identical ones.
    """

    __slots__ = ("max_delay", "salt")

    def __init__(self, max_delay: int, salt: int = 0) -> None:
        if max_delay < 0:
            raise ConfigurationError(
                f"max_delay must be >= 0, got {max_delay}"
            )
        self.max_delay = max_delay
        self.salt = salt

    def delay(self, envelope: Envelope) -> int:
        if self.max_delay == 0:
            return 0
        coin = derive_seed(
            self.salt, envelope.src, envelope.dst, envelope.round_sent
        )
        return (coin % _DELAY_BUCKETS) % (self.max_delay + 1)

    def name(self) -> str:
        return f"uniform-delay@{self.max_delay}"

    def to_dict(self) -> Dict[str, object]:
        return {"kind": "uniform", "max_delay": self.max_delay, "salt": self.salt}


class TargetedDelay(DeliverySchedule):
    """Fixed extra delay on every link *into* each targeted node.

    Models an adversary lagging a victim's incoming links (the classic
    "slow node" partial-synchrony attack); untargeted receivers stay
    synchronous.
    """

    __slots__ = ("max_delay", "targets")

    def __init__(self, targets: Mapping[NodeId, int]) -> None:
        for node, extra in targets.items():
            if extra < 0:
                raise ConfigurationError(
                    f"target delay must be >= 0, got {extra} for node {node}"
                )
        self.targets = dict(targets)
        self.max_delay = max(self.targets.values(), default=0)

    def delay(self, envelope: Envelope) -> int:
        return self.targets.get(envelope.dst, 0)

    def name(self) -> str:
        return f"targeted-delay@{self.max_delay}x{len(self.targets)}"

    def to_dict(self) -> Dict[str, object]:
        return {
            "kind": "targeted",
            "targets": {
                str(node): extra for node, extra in sorted(self.targets.items())
            },
        }


def schedule_from_dict(
    data: Optional[Mapping[str, object]],
) -> DeliverySchedule:
    """Rebuild a schedule from its :meth:`~DeliverySchedule.to_dict` form.

    ``None`` (a script without a delay section) means synchronous.
    """
    if data is None:
        return SYNCHRONOUS
    kind = data.get("kind")
    if kind == "synchronous":
        return SYNCHRONOUS
    if kind == "uniform":
        return UniformDelay(
            max_delay=int(data.get("max_delay", 0)),  # type: ignore[arg-type]
            salt=int(data.get("salt", 0)),  # type: ignore[arg-type]
        )
    if kind == "targeted":
        targets = data.get("targets", {})
        return TargetedDelay(
            {int(node): int(extra) for node, extra in dict(targets).items()}  # type: ignore[arg-type]
        )
    raise ConfigurationError(
        f"unknown delivery-schedule kind {kind!r}; choose from {SCHEDULE_KINDS}"
    )
