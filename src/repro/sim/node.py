"""Protocol base class and the per-node engine API (:class:`Context`).

A protocol instance runs on exactly one node.  The engine drives it with:

* :meth:`Protocol.on_start` once, in round 1, before any messages;
* :meth:`Protocol.on_round` in every round the node is *active* (a node is
  active until it calls :meth:`Context.idle`; an idle node is re-activated
  by an incoming message or a scheduled :meth:`Context.wake_at`);
* :meth:`Protocol.on_stop` once, at the end of the run, for nodes that
  have not crashed; ``ctx.round`` is then the last round that actually
  executed (smaller than the nominal horizon when the quiescence
  fast-forward cut the run short).

All interaction with the network goes through the :class:`Context`.  Under
KT0 the context enforces the paper's anonymity discipline: a node may only
address (a) ports obtained from :meth:`Context.sample_nodes` and (b) the
``sender`` handle of a delivered message.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, List, Sequence, Set

from ..errors import KnowledgeViolation, ProtocolViolation
from ..types import Knowledge, NodeId, Round
from .message import Delivery, Message

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .network import Network

#: Sentinel wake round meaning "never" (idle until a message arrives).
NEVER: Round = -1


class Protocol:
    """Base class for node protocols.

    Subclasses override the three lifecycle hooks and expose their outputs
    as attributes; the engine never inspects protocol internals.
    """

    def on_start(self, ctx: "Context") -> None:
        """Called once in round 1 before any message exchange."""

    def on_round(self, ctx: "Context", inbox: List[Delivery]) -> None:
        """Called each active round with the messages delivered this round."""

    def on_stop(self, ctx: "Context") -> None:
        """Called at the end of the run (alive nodes only).

        ``ctx.round`` holds the last executed round — not the nominal
        horizon, which may be larger when the run went quiescent early.
        """


class Context:
    """Engine API handed to a protocol on every callback.

    The context is long-lived (one per node per run); ``round`` and the
    wake bookkeeping are refreshed by the engine between callbacks.
    """

    __slots__ = (
        "_network",
        "node_id",
        "n",
        "rng",
        "round",
        "_next_wake",
        "_known",
        "_halted",
        "_enforce_kt0",
    )

    def __init__(
        self,
        network: "Network",
        node_id: NodeId,
        rng: random.Random,
        enforce_kt0: bool,
    ) -> None:
        self._network = network
        self.node_id = node_id
        self.n = network.n
        self.rng = rng
        self.round: Round = 0
        self._next_wake: Round = 1
        self._known: Set[NodeId] = set()
        self._halted = False
        self._enforce_kt0 = enforce_kt0

    # ------------------------------------------------------------------
    # Sending and sampling
    # ------------------------------------------------------------------

    def send(self, dst: NodeId, message: Message) -> None:
        """Queue ``message`` for ``dst``.

        Messages on the same ordered edge are transmitted one per round
        (CONGEST); distinct destinations go out in parallel.
        """
        if self._halted:
            raise ProtocolViolation(
                f"node {self.node_id} sent after halting"
            )
        if dst == self.node_id:
            raise ProtocolViolation(f"node {self.node_id} sent to itself")
        if not 0 <= dst < self.n:
            raise ProtocolViolation(f"invalid destination {dst}")
        if self._enforce_kt0 and dst not in self._known:
            raise KnowledgeViolation(
                f"KT0: node {self.node_id} addressed unknown node {dst}"
            )
        self._network._enqueue(self.node_id, dst, message)

    def send_many(self, dsts: Sequence[NodeId], message: Message) -> None:
        """Queue the same message for every destination in ``dsts``."""
        for dst in dsts:
            self.send(dst, message)

    def sample_nodes(self, k: int) -> List[NodeId]:
        """Sample ``k`` distinct uniform ports (other nodes) — KT0 style.

        In a complete anonymous network, choosing ``k`` distinct random
        ports is exactly choosing ``k`` distinct random other nodes; the
        sampled handles become legal send addresses.
        """
        if not 0 <= k <= self.n - 1:
            raise ProtocolViolation(
                f"cannot sample {k} of {self.n - 1} ports"
            )
        population = range(self.n)
        sampled: List[NodeId] = []
        seen = {self.node_id}
        # Rejection sampling: k is always o(n) in these protocols, but fall
        # back to random.sample when k is a large fraction of n.
        if k > (self.n - 1) // 2:
            candidates = [i for i in population if i != self.node_id]
            sampled = self.rng.sample(candidates, k)
        else:
            randrange = self.rng.randrange
            seen_add = seen.add
            append = sampled.append
            n = self.n
            while len(sampled) < k:
                pick = randrange(n)
                if pick not in seen:
                    seen_add(pick)
                    append(pick)
        self._known.update(sampled)
        return sampled

    def all_ports(self) -> List[NodeId]:
        """All ``n - 1`` ports of this node (KT0-legal: a node may always
        send through every one of its own ports, e.g. to broadcast).

        The handles become legal send addresses.
        """
        ports = [u for u in range(self.n) if u != self.node_id]
        self._known.update(ports)
        return ports

    def learn(self, node: NodeId) -> None:
        """Record that this node legitimately knows ``node``.

        Called by the engine for message senders; protocols may also call
        it when a learned handle is carried inside a payload they received
        (forwarded introductions are allowed in KT0: knowledge travels with
        messages).
        """
        self._known.add(node)

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------

    def idle(self) -> None:
        """Sleep until a message arrives (cancels any scheduled wake)."""
        self._next_wake = NEVER

    def wake_at(self, round_: Round) -> None:
        """Ensure :meth:`Protocol.on_round` runs in round ``round_``."""
        if round_ <= self.round:
            raise ProtocolViolation(
                f"wake_at({round_}) is not in the future (round {self.round})"
            )
        self._next_wake = round_

    def halt(self) -> None:
        """Permanently stop participating (the node keeps its outputs)."""
        self._halted = True
        self._next_wake = NEVER

    @property
    def halted(self) -> bool:
        """True once :meth:`halt` has been called."""
        return self._halted
