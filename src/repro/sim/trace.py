"""Structured execution traces.

Tracing is optional (it costs memory proportional to the message count) and
is consumed by :mod:`repro.lowerbound`, which rebuilds the paper's
*communication graph* and *influence clouds* from the recorded sends.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Set, Tuple

from ..types import NodeId, Round


class TraceEvent:
    """One traced event.

    ``kind`` is one of ``"send"``, ``"deliver"``, ``"drop"``, ``"expire"``,
    ``"crash"``.  ``"drop"`` marks a message lost by the adversary's
    keep-filter in its sender's crash round; ``"expire"`` marks a message
    whose receiver had already crashed by delivery time.  For message
    events ``src``/``dst``/``message_kind`` are set; for crash events only
    ``src``.  ``round`` is always the round of the matching *send*
    (deliveries, drops, and expiries are keyed by the round their message
    was put on the wire); for ``"deliver"`` events ``round_received``
    additionally records the round the receiver saw the message — the
    model's one-round latency demands ``round + 1``, relaxed to
    ``[round + 1, round + 1 + Δ]`` under a Δ-bounded
    :class:`~repro.sim.delivery.DeliverySchedule`
    (:func:`repro.sim.validate.validate_run` enforces the bound).
    ``"expire"`` events of *delayed* messages also carry
    ``round_received`` — the arrival round at which the dead receiver was
    discovered, or the post-horizon round of a message still in flight
    when the run ended.

    A ``__slots__`` class (not a dataclass): traced runs construct one
    event per send/delivery, so the event itself must stay cheap.
    """

    __slots__ = ("round", "kind", "src", "dst", "message_kind", "round_received")

    def __init__(
        self,
        round: Round,
        kind: str,
        src: NodeId,
        dst: Optional[NodeId] = None,
        message_kind: Optional[str] = None,
        round_received: Optional[Round] = None,
    ) -> None:
        self.round = round
        self.kind = kind
        self.src = src
        self.dst = dst
        self.message_kind = message_kind
        self.round_received = round_received

    def _key(self) -> Tuple:
        return (
            self.round,
            self.kind,
            self.src,
            self.dst,
            self.message_kind,
            self.round_received,
        )

    def __repr__(self) -> str:
        return (
            f"TraceEvent(round={self.round!r}, kind={self.kind!r}, "
            f"src={self.src!r}, dst={self.dst!r}, "
            f"message_kind={self.message_kind!r}, "
            f"round_received={self.round_received!r})"
        )

    def __eq__(self, other: object) -> bool:
        if isinstance(other, TraceEvent):
            return self._key() == other._key()
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._key())

    def __reduce__(self):
        return (TraceEvent, self._key())


@dataclass
class Trace:
    """Append-only event log of one run."""

    events: List[TraceEvent] = field(default_factory=list)
    enabled: bool = True

    def record(self, event: TraceEvent) -> None:
        """Append one event (no-op when disabled)."""
        if self.enabled:
            self.events.append(event)

    # -- queries used by the lower-bound tooling ------------------------

    def sends(self) -> Iterator[TraceEvent]:
        """All send events, in order."""
        return (e for e in self.events if e.kind == "send")

    def deliveries(self) -> Iterator[TraceEvent]:
        """All delivery events, in order."""
        return (e for e in self.events if e.kind == "deliver")

    def drops(self) -> Iterator[TraceEvent]:
        """All drop events (lost in the sender's crash round), in order."""
        return (e for e in self.events if e.kind == "drop")

    def expiries(self) -> Iterator[TraceEvent]:
        """All expire events (receiver already dead), in order."""
        return (e for e in self.events if e.kind == "expire")

    def crashes(self) -> Iterator[TraceEvent]:
        """All crash events, in order."""
        return (e for e in self.events if e.kind == "crash")

    def delivered_edges(self) -> Iterator[Tuple[NodeId, NodeId, Round]]:
        """``(src, dst, round)`` for every delivered message."""
        for event in self.deliveries():
            assert event.dst is not None
            yield event.src, event.dst, event.round

    def communicating_nodes(self) -> Set[NodeId]:
        """Nodes that sent or received at least one delivered message."""
        nodes: Set[NodeId] = set()
        for src, dst, _ in self.delivered_edges():
            nodes.add(src)
            nodes.add(dst)
        return nodes

    def message_count(self) -> int:
        """Number of send events recorded."""
        return sum(1 for _ in self.sends())

    def __len__(self) -> int:
        return len(self.events)
