"""Trace validator: model-level invariants checked on a finished run.

Every execution of the Section II machine must satisfy a handful of
protocol-independent laws.  ``validate_run`` replays a traced
:class:`~repro.sim.network.RunResult` and returns the list of violations
(empty = clean).  The test-suite runs it under randomized protocols and
adversaries; downstream users can run it on their own protocols as a
cheap model-conformance check.

Checked invariants:

* **conservation** — the exact identity ``sent == delivered + dropped +
  expired`` holds on the trace, the metrics agree with the trace on every
  one of the four counts, and ``sum(per_round_messages)`` equals
  ``messages_sent`` (no send escapes per-round attribution);
* **CONGEST rate** — at most one message per ordered edge per round;
* **crash finality** — no node sends after its crash round, dropped
  messages occur only in their sender's crash round, and expired messages
  only go to receivers already crashed by delivery time;
* **delivery latency** — every delivery/drop is resolved in the round of
  its matching send, and a delivery reaches its receiver within the run's
  delay bound: ``round_sent + 1 <= round_received <= round_sent + 1 + Δ``
  (``Δ = RunResult.max_delay``; the synchronous model is the Δ=0 case,
  where the bound collapses to ``round_received == round_sent + 1``);
* **no self-messages** and all endpoints in ``[0, n)``;
* **fault discipline** — only members of the (final) faulty set crash.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from ..types import NodeId, Round
from .network import RunResult


def validate_run(result: RunResult) -> List[str]:
    """Return the model-invariant violations of a traced run (empty = ok)."""
    if result.trace is None:
        raise ValueError("run was not traced; pass collect_trace=True")
    violations: List[str] = []
    trace = result.trace

    sends = list(trace.sends())
    deliveries = list(trace.deliveries())
    drops = [e for e in trace.events if e.kind == "drop"]
    expires = [e for e in trace.events if e.kind == "expire"]
    crashes = {e.src: e.round for e in trace.crashes()}

    # Conservation: the exact identity on the trace, and the metrics
    # agreeing with the trace on every count.
    metrics = result.metrics
    if len(sends) != metrics.messages_sent:
        violations.append(
            f"trace has {len(sends)} sends, metrics counted "
            f"{metrics.messages_sent}"
        )
    if len(deliveries) != metrics.messages_delivered:
        violations.append(
            f"trace has {len(deliveries)} deliveries, metrics counted "
            f"{metrics.messages_delivered}"
        )
    if len(drops) != metrics.messages_dropped:
        violations.append(
            f"trace has {len(drops)} drops, metrics counted "
            f"{metrics.messages_dropped}"
        )
    if len(expires) != metrics.messages_expired:
        violations.append(
            f"trace has {len(expires)} expiries, metrics counted "
            f"{metrics.messages_expired}"
        )
    if len(sends) != len(deliveries) + len(drops) + len(expires):
        violations.append(
            f"conservation broken: {len(sends)} sends != "
            f"{len(deliveries)} deliveries + {len(drops)} drops + "
            f"{len(expires)} expiries"
        )
    max_delay = result.max_delay
    if expires and not crashes and max_delay == 0:
        # Under Δ>0 a run can end with messages in flight, which expire
        # without any crash; synchronously an expiry implies a dead node.
        violations.append(
            f"{len(expires)} messages expired but nothing ever crashed"
        )
    per_round_total = sum(metrics.per_round_messages)
    if per_round_total != metrics.messages_sent:
        violations.append(
            f"per-round attribution broken: per_round_messages sums to "
            f"{per_round_total}, messages_sent is {metrics.messages_sent}"
        )

    # Per-event laws.
    seen_edges: Set[Tuple[Round, NodeId, NodeId]] = set()
    outcome_edges: Dict[Tuple[Round, NodeId, NodeId], str] = {}
    for event in sends:
        assert event.dst is not None
        if event.src == event.dst:
            violations.append(f"round {event.round}: self-message at {event.src}")
        if not (0 <= event.src < result.n and 0 <= event.dst < result.n):
            violations.append(
                f"round {event.round}: endpoint out of range "
                f"({event.src} -> {event.dst})"
            )
        key = (event.round, event.src, event.dst)
        if key in seen_edges:
            violations.append(
                f"round {event.round}: two messages on edge "
                f"{event.src} -> {event.dst} (CONGEST violation)"
            )
        seen_edges.add(key)
        crash_round = crashes.get(event.src)
        if crash_round is not None and event.round > crash_round:
            violations.append(
                f"round {event.round}: dead node {event.src} "
                f"(crashed round {crash_round}) sent a message"
            )

    for event in deliveries + drops + expires:
        key = (event.round, event.src, event.dst)
        if key not in seen_edges:
            # The trace keys deliveries/drops by their send round, so an
            # unmatched key is also a latency violation: the outcome was
            # resolved in a round its message was not on the wire.
            violations.append(
                f"round {event.round}: {event.kind} without a matching send "
                f"on {event.src} -> {event.dst}"
            )
        previous = outcome_edges.get(key)
        if previous is not None:
            violations.append(
                f"round {event.round}: message {event.src} -> {event.dst} "
                f"both {previous} and {event.kind}"
            )
        outcome_edges[key] = event.kind

    # Delivery latency: the model delivers at the start of round r + 1;
    # a Δ-bounded schedule may stretch that to any round in
    # [r + 1, r + 1 + Δ], never earlier, never later.
    for event in deliveries:
        if event.round_received is None:
            violations.append(
                f"round {event.round}: delivery {event.src} -> {event.dst} "
                f"has no recorded arrival round"
            )
        elif not (
            event.round + 1 <= event.round_received <= event.round + 1 + max_delay
        ):
            violations.append(
                f"round {event.round}: delivery {event.src} -> {event.dst} "
                f"arrived in round {event.round_received}, expected a round "
                f"in [{event.round + 1}, {event.round + 1 + max_delay}]"
            )

    for event in drops:
        crash_round = crashes.get(event.src)
        if crash_round != event.round:
            violations.append(
                f"round {event.round}: drop from {event.src} outside its "
                f"crash round ({crash_round})"
            )

    # An expiry is legal only when the receiver had crashed before the
    # message's arrival round, or (Δ>0 only) when the arrival round lies
    # past the last executed round — the run ended with the message still
    # in flight.  Synchronously the arrival is always ``round + 1``, so
    # this collapses to "the receiver crashed by the end of the send
    # round".  Delayed expiries record their arrival in ``round_received``.
    for event in expires:
        arrival = (
            event.round_received
            if event.round_received is not None
            else event.round + 1
        )
        if not (event.round + 1 <= arrival <= event.round + 1 + max_delay):
            violations.append(
                f"round {event.round}: expiry {event.src} -> {event.dst} "
                f"resolved at round {arrival}, outside "
                f"[{event.round + 1}, {event.round + 1 + max_delay}]"
            )
            continue
        crash_round = crashes.get(event.dst)
        if crash_round is not None and crash_round < arrival:
            continue  # receiver was dead when the message arrived
        if arrival > result.rounds:
            continue  # run ended with the message still in flight
        violations.append(
            f"round {event.round}: message {event.src} -> {event.dst} "
            f"expired but the receiver crashed in round {crash_round}"
        )

    # Fault discipline.
    for node, round_ in crashes.items():
        if node not in result.faulty:
            violations.append(
                f"round {round_}: non-faulty node {node} crashed"
            )
    if dict(result.crashed) != crashes:
        violations.append("trace crashes disagree with RunResult.crashed")

    return violations
