"""Trace validator: model-level invariants checked on a finished run.

Every execution of the Section II machine must satisfy a handful of
protocol-independent laws.  ``validate_run`` replays a traced
:class:`~repro.sim.network.RunResult` and returns the list of violations
(empty = clean).  The test-suite runs it under randomized protocols and
adversaries; downstream users can run it on their own protocols as a
cheap model-conformance check.

Checked invariants:

* **conservation** — every send is delivered, dropped, or evaporated
  (receiver already dead); the trace and the metrics agree on the counts;
* **CONGEST rate** — at most one message per ordered edge per round;
* **crash finality** — no node sends after its crash round, and dropped
  messages occur only in their sender's crash round;
* **delivery latency** — every delivery/drop is resolved in the round of
  its matching send, and a delivery reaches its receiver exactly one round
  after the send (``round_received == round_sent + 1``);
* **no self-messages** and all endpoints in ``[0, n)``;
* **fault discipline** — only members of the (final) faulty set crash.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from ..types import NodeId, Round
from .network import RunResult


def validate_run(result: RunResult) -> List[str]:
    """Return the model-invariant violations of a traced run (empty = ok)."""
    if result.trace is None:
        raise ValueError("run was not traced; pass collect_trace=True")
    violations: List[str] = []
    trace = result.trace

    sends = list(trace.sends())
    deliveries = list(trace.deliveries())
    drops = [e for e in trace.events if e.kind == "drop"]
    crashes = {e.src: e.round for e in trace.crashes()}

    # Conservation, trace-internal and against the metrics.
    if len(sends) != result.metrics.messages_sent:
        violations.append(
            f"trace has {len(sends)} sends, metrics counted "
            f"{result.metrics.messages_sent}"
        )
    if len(deliveries) != result.metrics.messages_delivered:
        violations.append(
            f"trace has {len(deliveries)} deliveries, metrics counted "
            f"{result.metrics.messages_delivered}"
        )
    evaporated = len(sends) - len(deliveries) - len(drops)
    if evaporated < 0:
        violations.append(
            f"more deliveries+drops ({len(deliveries)}+{len(drops)}) than "
            f"sends ({len(sends)})"
        )
    if evaporated > 0 and not crashes:
        violations.append(
            f"{evaporated} messages evaporated but nothing ever crashed"
        )

    # Per-event laws.
    seen_edges: Set[Tuple[Round, NodeId, NodeId]] = set()
    outcome_edges: Dict[Tuple[Round, NodeId, NodeId], str] = {}
    for event in sends:
        assert event.dst is not None
        if event.src == event.dst:
            violations.append(f"round {event.round}: self-message at {event.src}")
        if not (0 <= event.src < result.n and 0 <= event.dst < result.n):
            violations.append(
                f"round {event.round}: endpoint out of range "
                f"({event.src} -> {event.dst})"
            )
        key = (event.round, event.src, event.dst)
        if key in seen_edges:
            violations.append(
                f"round {event.round}: two messages on edge "
                f"{event.src} -> {event.dst} (CONGEST violation)"
            )
        seen_edges.add(key)
        crash_round = crashes.get(event.src)
        if crash_round is not None and event.round > crash_round:
            violations.append(
                f"round {event.round}: dead node {event.src} "
                f"(crashed round {crash_round}) sent a message"
            )

    for event in deliveries + drops:
        key = (event.round, event.src, event.dst)
        if key not in seen_edges:
            # The trace keys deliveries/drops by their send round, so an
            # unmatched key is also a latency violation: the outcome was
            # resolved in a round its message was not on the wire.
            violations.append(
                f"round {event.round}: {event.kind} without a matching send "
                f"on {event.src} -> {event.dst}"
            )
        previous = outcome_edges.get(key)
        if previous is not None:
            violations.append(
                f"round {event.round}: message {event.src} -> {event.dst} "
                f"both {previous} and {event.kind}"
            )
        outcome_edges[key] = event.kind

    # Delivery latency: the model delivers at the start of round r + 1.
    for event in deliveries:
        if event.round_received is None:
            violations.append(
                f"round {event.round}: delivery {event.src} -> {event.dst} "
                f"has no recorded arrival round"
            )
        elif event.round_received != event.round + 1:
            violations.append(
                f"round {event.round}: delivery {event.src} -> {event.dst} "
                f"arrived in round {event.round_received}, expected "
                f"{event.round + 1}"
            )

    for event in drops:
        crash_round = crashes.get(event.src)
        if crash_round != event.round:
            violations.append(
                f"round {event.round}: drop from {event.src} outside its "
                f"crash round ({crash_round})"
            )

    # Fault discipline.
    for node, round_ in crashes.items():
        if node not in result.faulty:
            violations.append(
                f"round {round_}: non-faulty node {node} crashed"
            )
    if dict(result.crashed) != crashes:
        violations.append("trace crashes disagree with RunResult.crashed")

    return violations
