"""Seeded, splittable randomness.

Every run of the simulator is driven by one master seed.  Each node, the
adversary, and the engine itself receive *independent* deterministic
streams derived from that seed, so that

* runs are exactly reproducible from ``(seed, parameters)``;
* changing how often one component draws randomness does not perturb the
  draws seen by any other component (crucial when comparing adversaries).

Streams are plain :class:`random.Random` instances seeded by hashing the
master seed with a stable label.
"""

from __future__ import annotations

import hashlib
import random
from typing import Iterator


def derive_seed(master_seed: int, *labels: object) -> int:
    """Derive a 64-bit child seed from ``master_seed`` and a label path.

    The derivation is stable across processes and Python versions (it does
    not use :func:`hash`, which is salted).
    """
    digest = hashlib.sha256()
    digest.update(str(int(master_seed)).encode("ascii"))
    for label in labels:
        digest.update(b"/")
        digest.update(repr(label).encode("utf-8"))
    return int.from_bytes(digest.digest()[:8], "big")


class RngFactory:
    """Factory producing independent named random streams from one seed."""

    def __init__(self, master_seed: int) -> None:
        self.master_seed = int(master_seed)

    def stream(self, *labels: object) -> random.Random:
        """Return a fresh :class:`random.Random` for the given label path."""
        return random.Random(derive_seed(self.master_seed, *labels))

    def node_stream(self, node_id: int) -> random.Random:
        """Return the private random stream of node ``node_id``."""
        return self.stream("node", node_id)

    def adversary_stream(self) -> random.Random:
        """Return the adversary's random stream."""
        return self.stream("adversary")

    def engine_stream(self) -> random.Random:
        """Return the engine's random stream (port wiring etc.)."""
        return self.stream("engine")

    def spawn(self, *labels: object) -> "RngFactory":
        """Return a sub-factory rooted at ``labels`` (for nested components)."""
        return RngFactory(derive_seed(self.master_seed, *labels))


def seed_sequence(master_seed: int, count: int) -> Iterator[int]:
    """Yield ``count`` independent trial seeds derived from ``master_seed``.

    Used by Monte-Carlo sweeps: trial ``i`` of an experiment always sees the
    same seed regardless of how many trials run.
    """
    for i in range(count):
        yield derive_seed(master_seed, "trial", i)
