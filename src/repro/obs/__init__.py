"""Run observability: provenance, phase timing, live progress, reports.

The paper's claims are *counting* claims, so the campaigns that measure
them must themselves be measurable.  This subpackage is the layer the
engine, sweeps, fuzzer, pool, and CLI thread through:

* :mod:`repro.obs.provenance` — a :class:`Manifest` capturing the full
  reproducibility envelope of a campaign (seed, grid, git SHA, versions,
  machine, argv), written alongside results and embedded in checkpoint
  journals;
* :mod:`repro.obs.timing` — :class:`PhaseTimers` with a near-zero-cost
  disabled path, instrumenting the engine's step/transmit/crash/deliver
  round phases and the pool's dispatch/reassembly;
* :mod:`repro.obs.progress` — an opt-in stderr heartbeat
  (:class:`ProgressReporter`) with throughput, ETA, retry/quarantine
  counts, and worker utilisation;
* :mod:`repro.obs.report` — ``repro report``: manifest + journal +
  merged metrics rendered as one campaign summary.
"""

from .progress import (
    NULL_PROGRESS,
    ProgressReporter,
    ensure_progress,
    format_duration,
    render_progress_line,
)
from .provenance import (
    MANIFEST_RECORD_KIND,
    Manifest,
    capture_manifest,
    is_manifest_record,
    load_manifest,
)
from .report import (
    Campaign,
    is_structural_record,
    journal_counts,
    load_campaign,
    merge_journal_metrics,
    merge_supervisor_stats,
    render_campaign_report,
)
from .timing import (
    ENGINE_PHASES,
    NULL_TIMERS,
    PHASE_CRASH,
    PHASE_DELIVER,
    PHASE_POOL_DISPATCH,
    PHASE_POOL_REASSEMBLY,
    PHASE_STEP,
    PHASE_TRANSMIT,
    PhaseTimers,
)

__all__ = [
    "Campaign",
    "ENGINE_PHASES",
    "MANIFEST_RECORD_KIND",
    "Manifest",
    "NULL_PROGRESS",
    "NULL_TIMERS",
    "PHASE_CRASH",
    "PHASE_DELIVER",
    "PHASE_POOL_DISPATCH",
    "PHASE_POOL_REASSEMBLY",
    "PHASE_STEP",
    "PHASE_TRANSMIT",
    "PhaseTimers",
    "ProgressReporter",
    "capture_manifest",
    "ensure_progress",
    "format_duration",
    "is_manifest_record",
    "is_structural_record",
    "journal_counts",
    "load_campaign",
    "load_manifest",
    "merge_journal_metrics",
    "merge_supervisor_stats",
    "render_campaign_report",
    "render_progress_line",
]
