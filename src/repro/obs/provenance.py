"""Provenance manifests: the reproducibility envelope of a campaign.

A :class:`Manifest` records everything needed to re-run (or audit) a
Monte-Carlo campaign after the fact: the command and its argv, the master
seed and grid, the git revision the code was at, package/python versions,
and machine facts.  Campaign drivers write it *alongside* their results
(``<results>.manifest.json``) and, when a checkpoint journal is in play,
also embed it as a ``{"kind": "manifest", ...}`` record so a bare journal
file is self-describing (``repro report journal.jsonl``).

Capture is best-effort by design: a missing ``git`` binary or a non-repo
checkout degrades to ``{"sha": None, ...}`` instead of failing the
campaign — provenance must never be the reason an experiment dies.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Union

#: Journal records carrying a manifest are tagged with this ``kind``.
MANIFEST_RECORD_KIND = "manifest"

#: Manifest schema version (bump on incompatible layout changes).
MANIFEST_SCHEMA = 1


def _git_info(cwd: Optional[str] = None) -> Dict[str, Any]:
    """Best-effort git revision facts (``sha``/``branch``/``dirty``)."""
    info: Dict[str, Any] = {"sha": None, "branch": None, "dirty": None}

    def run(*argv: str) -> Optional[str]:
        try:
            completed = subprocess.run(
                ["git", *argv],
                cwd=cwd,
                capture_output=True,
                text=True,
                timeout=5,
            )
        except (OSError, subprocess.SubprocessError):
            return None
        if completed.returncode != 0:
            return None
        return completed.stdout.strip()

    sha = run("rev-parse", "HEAD")
    if sha is None:
        return info
    info["sha"] = sha
    info["branch"] = run("rev-parse", "--abbrev-ref", "HEAD")
    status = run("status", "--porcelain")
    info["dirty"] = bool(status) if status is not None else None
    return info


def _machine_info() -> Dict[str, Any]:
    return {
        "platform": platform.platform(),
        "cpu_count": os.cpu_count(),
        "hostname": platform.node(),
    }


def _python_info() -> Dict[str, Any]:
    return {
        "version": platform.python_version(),
        "implementation": platform.python_implementation(),
    }


def _package_info() -> Dict[str, Any]:
    try:
        from .. import __version__
    except Exception:  # pragma: no cover - broken partial install
        __version__ = None
    return {"name": "repro", "version": __version__}


@dataclass
class Manifest:
    """The full reproducibility envelope of one campaign."""

    #: Which driver produced the campaign (``sweep``, ``fuzz``, ``run``...).
    command: str
    #: The process argv, verbatim.
    argv: List[str] = field(default_factory=list)
    #: Master seed of the campaign (``None`` when not seed-driven).
    master_seed: Optional[int] = None
    #: Grid / configuration of the campaign, JSON-shaped.
    config: Dict[str, Any] = field(default_factory=dict)
    #: ISO-8601 UTC creation timestamp.
    created_at: str = ""
    git: Dict[str, Any] = field(default_factory=dict)
    package: Dict[str, Any] = field(default_factory=dict)
    python: Dict[str, Any] = field(default_factory=dict)
    machine: Dict[str, Any] = field(default_factory=dict)
    #: Free-form extras (e.g. the journal path the campaign writes).
    extra: Dict[str, Any] = field(default_factory=dict)
    schema: int = MANIFEST_SCHEMA

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": self.schema,
            "command": self.command,
            "argv": list(self.argv),
            "master_seed": self.master_seed,
            "config": dict(self.config),
            "created_at": self.created_at,
            "git": dict(self.git),
            "package": dict(self.package),
            "python": dict(self.python),
            "machine": dict(self.machine),
            "extra": dict(self.extra),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Manifest":
        seed = data.get("master_seed")
        return cls(
            command=str(data.get("command", "")),
            argv=[str(a) for a in data.get("argv", [])],
            master_seed=None if seed is None else int(seed),
            config=dict(data.get("config", {})),
            created_at=str(data.get("created_at", "")),
            git=dict(data.get("git", {})),
            package=dict(data.get("package", {})),
            python=dict(data.get("python", {})),
            machine=dict(data.get("machine", {})),
            extra=dict(data.get("extra", {})),
            schema=int(data.get("schema", MANIFEST_SCHEMA)),
        )

    def journal_record(self) -> Dict[str, Any]:
        """The journal-embeddable form (tagged, no ``status``/``key``, so
        the resilient executor's resume loader never mistakes it for a
        trial record)."""
        record = self.to_dict()
        record["kind"] = MANIFEST_RECORD_KIND
        return record

    def write(self, path: Union[str, Path]) -> Path:
        """Write the manifest as pretty JSON; returns the path written."""
        path = Path(path)
        if path.parent != Path(""):
            path.parent.mkdir(parents=True, exist_ok=True)
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, indent=2, sort_keys=True, default=str)
            handle.write("\n")
        return path


def is_manifest_record(record: Mapping[str, Any]) -> bool:
    """True when a journal record is an embedded manifest."""
    return record.get("kind") == MANIFEST_RECORD_KIND


def capture_manifest(
    command: str,
    master_seed: Optional[int] = None,
    config: Optional[Mapping[str, Any]] = None,
    argv: Optional[List[str]] = None,
    extra: Optional[Mapping[str, Any]] = None,
) -> Manifest:
    """Capture the current process's reproducibility envelope.

    ``argv`` defaults to ``sys.argv``; pass an explicit list when
    capturing on behalf of a library caller.
    """
    return Manifest(
        command=command,
        argv=list(sys.argv if argv is None else argv),
        master_seed=master_seed,
        config=dict(config or {}),
        created_at=time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        git=_git_info(),
        package=_package_info(),
        python=_python_info(),
        machine=_machine_info(),
        extra=dict(extra or {}),
    )


def load_manifest(path: Union[str, Path]) -> Manifest:
    """Read a manifest previously written with :meth:`Manifest.write`."""
    with open(path, "r", encoding="utf-8") as handle:
        return Manifest.from_dict(json.load(handle))
