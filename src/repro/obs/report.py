"""Campaign reports: manifest + journal + merged metrics, human-readable.

``repro report <campaign>`` (and :func:`render_campaign_report`) folds the
three observability artifacts of a campaign into one summary:

* the **provenance manifest** (who/what/where: seed, argv, git, versions);
* the **journal** (per-trial outcomes: status counts, attempts, retries,
  corrupt lines);
* **merged metrics** aggregated over the journalled trial values
  (messages/bits/rounds, success rate, and phase timings when the
  campaign ran with profiling enabled).

``<campaign>`` may be either the journal (``.jsonl``) or the manifest
(``.json``); the loader finds the sibling artifact through the embedded
``{"kind": "manifest"}`` record, the manifest's recorded journal path, or
the ``<journal>.manifest.json`` naming convention.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Union

from .provenance import Manifest, is_manifest_record, load_manifest

#: Journal statuses treated as "the trial produced a value".  "cached"
#: is the campaign service's journal status for a trial answered from
#: its result cache — same serialised value as a fresh run, no execution.
_OK_STATUSES = ("ok", "resumed", "cached")


def is_structural_record(record: Mapping[str, Any]) -> bool:
    """True for embedded non-trial records (manifest, supervisor stats).

    Structural records carry a ``kind`` tag instead of a trial
    ``key``/``status``; they describe the campaign, not a trial.
    """
    try:
        return "kind" in record
    except TypeError:  # pragma: no cover - non-mapping defensive guard
        return False


@dataclass
class Campaign:
    """Everything :func:`render_campaign_report` needs, already loaded."""

    manifest: Optional[Manifest] = None
    records: List[Dict[str, Any]] = field(default_factory=list)
    manifest_path: Optional[Path] = None
    journal_path: Optional[Path] = None
    corrupt_lines: int = 0
    #: v1 records (journalled before per-record checksums) loaded as-is.
    unverified_records: int = 0

    @property
    def trial_records(self) -> List[Dict[str, Any]]:
        """Journal records describing trials (structural records excluded)."""
        return [r for r in self.records if not is_structural_record(r)]

    @property
    def supervisor_records(self) -> List[Dict[str, Any]]:
        """Embedded ``{"kind": "supervisor"}`` stats records, in order."""
        from ..parallel.supervisor import is_supervisor_record

        return [r for r in self.records if is_supervisor_record(r)]


def load_campaign(path: Union[str, Path]) -> Campaign:
    """Load a campaign from its journal *or* manifest path.

    Raises ``FileNotFoundError`` when ``path`` does not exist; a campaign
    missing one of the two artifacts still loads (the report renders what
    is available).
    """
    from ..exec.journal import Journal

    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(f"no campaign artifact at {path}")
    campaign = Campaign()

    def read_journal(journal_path: Path) -> None:
        journal = Journal(journal_path)
        campaign.records = journal.load()
        campaign.corrupt_lines = journal.corrupt_lines
        campaign.unverified_records = journal.unverified_records
        campaign.journal_path = journal_path
        if campaign.manifest is None:
            for record in campaign.records:
                if is_manifest_record(record):
                    campaign.manifest = Manifest.from_dict(record)
                    campaign.manifest_path = journal_path

    looks_like_manifest = False
    if path.suffix == ".json":
        try:
            manifest = load_manifest(path)
            looks_like_manifest = bool(manifest.command) or bool(manifest.argv)
        except (ValueError, OSError):
            looks_like_manifest = False
        if looks_like_manifest:
            campaign.manifest = manifest
            campaign.manifest_path = path

    if looks_like_manifest:
        # Find the journal: the manifest records it, or strip the
        # ``.manifest.json`` suffix convention.
        candidates = []
        recorded = campaign.manifest.extra.get("journal") if campaign.manifest else None
        if recorded:
            candidates.append(Path(recorded))
            candidates.append(path.parent / Path(recorded).name)
        if path.name.endswith(".manifest.json"):
            candidates.append(path.with_name(path.name[: -len(".manifest.json")]))
        for candidate in candidates:
            if candidate.exists() and candidate != path:
                read_journal(candidate)
                break
    else:
        read_journal(path)
        if campaign.manifest is None:
            sibling = path.with_name(path.name + ".manifest.json")
            if sibling.exists():
                campaign.manifest = load_manifest(sibling)
                campaign.manifest_path = sibling
    return campaign


# ----------------------------------------------------------------------
# Aggregation
# ----------------------------------------------------------------------


def merge_journal_metrics(records: List[Mapping[str, Any]]) -> Dict[str, Any]:
    """Fold the journalled trial values into campaign-level aggregates.

    Works on the serialised (``summary()``-shaped) values the executor
    journals: numeric fields are summed and averaged, booleans become
    rates, and ``phase_seconds`` dicts are summed key-wise.  Trials whose
    value is not a mapping (or that produced none) are skipped.
    """
    values = [
        record["value"]
        for record in records
        if record.get("status") in _OK_STATUSES
        and isinstance(record.get("value"), Mapping)
    ]
    aggregate: Dict[str, Any] = {"trials_with_values": len(values)}
    if not values:
        return aggregate
    numeric: Dict[str, List[float]] = {}
    boolean: Dict[str, List[bool]] = {}
    phase_totals: Dict[str, float] = {}
    for value in values:
        for key, item in value.items():
            if key == "phase_seconds" and isinstance(item, Mapping):
                for phase, seconds in item.items():
                    if isinstance(seconds, (int, float)):
                        phase_totals[phase] = phase_totals.get(phase, 0.0) + float(
                            seconds
                        )
            elif isinstance(item, bool):
                boolean.setdefault(key, []).append(item)
            elif isinstance(item, (int, float)):
                numeric.setdefault(key, []).append(float(item))
    for key, items in sorted(numeric.items()):
        aggregate[key] = {
            "total": round(sum(items), 6),
            "mean": round(sum(items) / len(items), 6),
            "max": round(max(items), 6),
        }
    for key, items in sorted(boolean.items()):
        aggregate[key] = {"rate": round(sum(items) / len(items), 4), "count": len(items)}
    if phase_totals:
        aggregate["phase_seconds"] = {
            phase: round(seconds, 6) for phase, seconds in sorted(phase_totals.items())
        }
    return aggregate


def journal_counts(records: List[Mapping[str, Any]]) -> Dict[str, int]:
    """Status histogram plus retry accounting over trial records."""
    counts: Dict[str, int] = {}
    retries = 0
    for record in records:
        if is_structural_record(record):
            continue
        status = str(record.get("status", "unknown"))
        counts[status] = counts.get(status, 0) + 1
        attempts = record.get("attempts")
        if isinstance(attempts, int) and attempts > 1:
            retries += attempts - 1
    counts["retries"] = retries
    return counts


#: Supervisor counters rendered by the report, in display order.
_SUPERVISOR_COUNTERS = (
    "pool_rebuilds",
    "worker_deaths",
    "hung_chunks",
    "redispatched_chunks",
    "redispatched_trials",
    "abandoned_trials",
    "dispatched_chunks",
)


def merge_supervisor_stats(
    records: List[Mapping[str, Any]],
) -> Dict[str, Any]:
    """Fold embedded supervisor records into campaign totals.

    A resumed campaign appends one stats record per run; the report sums
    the counters and ORs the ``interrupted`` flags.
    """
    totals: Dict[str, Any] = {name: 0 for name in _SUPERVISOR_COUNTERS}
    totals["interrupted"] = False
    totals["runs"] = len(records)
    for record in records:
        for name in _SUPERVISOR_COUNTERS:
            value = record.get(name)
            if isinstance(value, (int, float)):
                totals[name] += int(value)
        totals["interrupted"] = totals["interrupted"] or bool(
            record.get("interrupted")
        )
    return totals


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------


def _render_manifest(manifest: Manifest) -> List[str]:
    git = manifest.git or {}
    sha = git.get("sha") or "<unknown>"
    if git.get("dirty"):
        sha += " (dirty)"
    lines = [
        f"  command:     {manifest.command or '<unknown>'}",
        f"  created:     {manifest.created_at or '<unknown>'}",
        f"  argv:        {' '.join(manifest.argv) or '<unknown>'}",
        f"  master seed: {manifest.master_seed}",
        f"  git:         {sha}"
        + (f" [{git['branch']}]" if git.get("branch") else ""),
        f"  package:     {manifest.package.get('name', 'repro')}"
        f" {manifest.package.get('version') or '<unknown>'}",
        f"  python:      {manifest.python.get('version') or '<unknown>'}"
        f" ({manifest.python.get('implementation') or '?'})",
        f"  machine:     {manifest.machine.get('platform') or '<unknown>'}"
        f" · {manifest.machine.get('cpu_count') or '?'} core(s)",
    ]
    if manifest.config:
        lines.append("  config:")
        for key in sorted(manifest.config):
            lines.append(f"    {key} = {manifest.config[key]!r}")
    return lines


def _render_counts(
    counts: Mapping[str, int], corrupt: int, unverified: int = 0
) -> List[str]:
    retries = counts.get("retries", 0)
    statuses = {k: v for k, v in counts.items() if k != "retries"}
    total = sum(statuses.values())
    lines = [f"  trials journalled: {total}"]
    for status in sorted(statuses):
        lines.append(f"    {status}: {statuses[status]}")
    lines.append(f"  retries (attempts beyond the first): {retries}")
    if corrupt:
        lines.append(f"  corrupt journal lines skipped: {corrupt}")
    if unverified:
        lines.append(
            f"  unverified records (pre-checksum v1 format): {unverified}"
        )
    return lines


def _render_supervision(totals: Mapping[str, Any]) -> List[str]:
    labels = {
        "pool_rebuilds": "pool rebuilds",
        "worker_deaths": "worker deaths (non-zero exit)",
        "hung_chunks": "hung chunks (missed deadline)",
        "redispatched_chunks": "chunks redispatched",
        "redispatched_trials": "trials redispatched",
        "abandoned_trials": "trials abandoned (recorded failed)",
        "dispatched_chunks": "chunks dispatched",
    }
    lines = []
    runs = totals.get("runs", 0)
    if runs > 1:
        lines.append(f"  supervised runs merged: {runs}")
    for name in _SUPERVISOR_COUNTERS:
        lines.append(f"  {labels[name]}: {totals.get(name, 0)}")
    if totals.get("interrupted"):
        lines.append("  interrupted: yes (SIGINT/SIGTERM; resumable)")
    return lines


def _render_aggregate(aggregate: Mapping[str, Any]) -> List[str]:
    lines = [f"  trials with values: {aggregate.get('trials_with_values', 0)}"]
    for key in sorted(aggregate):
        if key in ("trials_with_values", "phase_seconds"):
            continue
        stats = aggregate[key]
        if not isinstance(stats, Mapping):
            continue
        if "rate" in stats:
            lines.append(f"  {key}: rate {stats['rate']} over {stats['count']} trial(s)")
        else:
            lines.append(
                f"  {key}: total {stats['total']:g}, mean {stats['mean']:g},"
                f" max {stats['max']:g}"
            )
    phases = aggregate.get("phase_seconds")
    if isinstance(phases, Mapping) and phases:
        lines.append("  phase timings (summed over trials):")
        width = max(len(str(p)) for p in phases)
        for phase, seconds in phases.items():
            lines.append(f"    {str(phase).ljust(width)}  {seconds:.6f}s")
    return lines


def render_campaign_report(campaign: Campaign) -> str:
    """Render one campaign into the ``repro report`` text format."""
    title = "campaign report"
    if campaign.manifest is not None and campaign.manifest.command:
        title += f" — {campaign.manifest.command}"
    lines = [title, "=" * len(title), ""]

    lines.append("provenance")
    if campaign.manifest is not None:
        lines.extend(_render_manifest(campaign.manifest))
    else:
        lines.append("  <no manifest found>")
    lines.append("")

    lines.append("journal")
    trial_records = campaign.trial_records
    if campaign.journal_path is not None:
        lines.append(f"  path: {campaign.journal_path}")
    if trial_records or campaign.journal_path is not None:
        lines.extend(
            _render_counts(
                journal_counts(campaign.records),
                campaign.corrupt_lines,
                campaign.unverified_records,
            )
        )
    else:
        lines.append("  <no journal found>")
    lines.append("")

    supervisor_records = campaign.supervisor_records
    if supervisor_records:
        lines.append("supervision")
        lines.extend(
            _render_supervision(merge_supervisor_stats(supervisor_records))
        )
        lines.append("")

    lines.append("merged metrics")
    if trial_records:
        lines.extend(_render_aggregate(merge_journal_metrics(trial_records)))
    else:
        lines.append("  <no trial values to merge>")
    return "\n".join(lines) + "\n"
