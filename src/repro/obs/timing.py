"""Phase timers: where does a run's wall clock go?

:class:`PhaseTimers` accumulates wall-clock seconds per named *phase*.
The engine instruments its four round phases (:data:`PHASE_STEP`,
:data:`PHASE_TRANSMIT`, :data:`PHASE_CRASH`, :data:`PHASE_DELIVER`) and
the process pool its dispatch/reassembly phases
(:data:`PHASE_POOL_DISPATCH`, :data:`PHASE_POOL_REASSEMBLY`).

The no-op path is load-bearing: timers default to *disabled*, hot loops
gate every ``perf_counter`` call on the single :attr:`PhaseTimers.enabled`
boolean, and the disabled methods return immediately — the tracked
round-loop benchmark (``BENCH_sim.json``) asserts the disabled path stays
within 5% of the uninstrumented engine (``run_bench.py
--check-obs-overhead``).

Totals surface as ``Metrics.phase_seconds`` (and therefore
``Metrics.summary()`` / ``RunResult.phase_seconds``), merge across trials
via :meth:`repro.sim.metrics.Metrics.merge`, and render in ``repro
report``.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, Iterator

#: Engine round phases (see ``Network._execute_round``).
PHASE_STEP = "step"
PHASE_TRANSMIT = "transmit"
PHASE_CRASH = "crash"
PHASE_DELIVER = "deliver"

#: Process-pool phases (see :mod:`repro.parallel.pool`).
PHASE_POOL_DISPATCH = "pool.dispatch"
PHASE_POOL_REASSEMBLY = "pool.reassembly"

#: The engine's four round phases, in execution order.
ENGINE_PHASES = (PHASE_STEP, PHASE_TRANSMIT, PHASE_CRASH, PHASE_DELIVER)


class PhaseTimers:
    """Per-phase wall-clock accumulator with a cheap disabled mode.

    Hot loops are expected to read :attr:`enabled` once and skip their
    ``perf_counter`` bookkeeping entirely when it is false; calling
    :meth:`add` / :meth:`timed` on a disabled instance is also a no-op,
    so library code never needs ``if timers is not None`` guards.
    """

    __slots__ = ("enabled", "totals", "counts")

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        #: phase -> accumulated seconds.
        self.totals: Dict[str, float] = {}
        #: phase -> number of recorded intervals.
        self.counts: Dict[str, int] = {}

    def add(self, phase: str, seconds: float) -> None:
        """Accumulate ``seconds`` against ``phase`` (no-op when disabled)."""
        if not self.enabled:
            return
        self.totals[phase] = self.totals.get(phase, 0.0) + seconds
        self.counts[phase] = self.counts.get(phase, 0) + 1

    @contextmanager
    def timed(self, phase: str) -> Iterator[None]:
        """Context manager timing its body into ``phase``.

        Convenient for coarse phases (pool dispatch, reassembly); the
        engine's per-round phases use explicit ``perf_counter`` deltas
        instead to keep the disabled path branch-only.
        """
        if not self.enabled:
            yield
            return
        started = time.perf_counter()
        try:
            yield
        finally:
            self.add(phase, time.perf_counter() - started)

    def as_dict(self, precision: int = 9) -> Dict[str, float]:
        """Totals as a sorted ``{phase: seconds}`` dict (JSON-friendly)."""
        return {
            phase: round(total, precision)
            for phase, total in sorted(self.totals.items())
        }

    def clear(self) -> None:
        """Forget all accumulated intervals (keeps the enabled flag)."""
        self.totals.clear()
        self.counts.clear()

    def __repr__(self) -> str:  # pragma: no cover - diagnostics only
        state = "enabled" if self.enabled else "disabled"
        return f"PhaseTimers({state}, {self.as_dict(precision=6)})"


#: Shared disabled instance used as the default by the engine and pool;
#: it never accumulates state, so sharing is safe.
NULL_TIMERS = PhaseTimers(enabled=False)
