"""Live progress heartbeat for long campaigns.

A :class:`ProgressReporter` turns per-trial events into an opt-in stderr
heartbeat: trials completed/attempted, throughput, ETA, failure/retry/
quarantine counts, and worker utilisation under ``jobs=N``.  It is
deliberately boring technology — throttled plain-text lines, one per
``interval`` seconds, safe to tee into CI logs — and the disabled
instance costs one attribute check per event, so drivers thread it
unconditionally.

All campaign drivers accept a ``progress`` argument: ``False`` (silent,
the default), ``True`` (heartbeat to stderr), or a ready-made reporter
(tests inject a fake clock and an in-memory stream).
"""

from __future__ import annotations

import sys
import time
from typing import Any, Callable, Optional, TextIO, Union

#: What drivers accept: a flag or a ready-made reporter.
ProgressSpec = Union[bool, None, "ProgressReporter"]


def format_duration(seconds: float) -> str:
    """``75.4`` → ``"1m15s"``; sub-minute values keep one decimal."""
    if seconds < 0 or seconds != seconds:  # negative or NaN
        return "?"
    if seconds < 60:
        return f"{seconds:.1f}s"
    minutes, secs = divmod(int(seconds + 0.5), 60)
    hours, minutes = divmod(minutes, 60)
    if hours:
        return f"{hours}h{minutes:02d}m"
    return f"{minutes}m{secs:02d}s"


def render_progress_line(
    label: str,
    completed: int,
    total: Optional[int],
    elapsed: float,
    attempted: Optional[int] = None,
    failed: int = 0,
    retries: int = 0,
    quarantined: int = 0,
    workers: Optional[int] = None,
    busy: Optional[int] = None,
    restarts: int = 0,
) -> str:
    """Render one heartbeat line (pure function, unit-testable).

    ``attempted`` counts trial executions (> ``completed`` under retries);
    ``total`` may be unknown (time-budgeted fuzzing), which suppresses the
    percentage and ETA fields.
    """
    parts = []
    if total:
        percent = 100.0 * completed / total
        parts.append(f"{completed}/{total} ({percent:.0f}%)")
    else:
        parts.append(f"{completed} done")
    # A true zero is a real value here (e.g. every trial served from
    # cache/resume without an execution) — only equality with
    # ``completed`` suppresses the field, never falsiness.
    if attempted is not None and attempted != completed:
        parts.append(f"attempted {attempted}")
    if elapsed > 0 and completed > 0:
        rate = completed / elapsed
        parts.append(f"{rate:.1f}/s")
        if total and completed < total:
            parts.append(f"ETA {format_duration((total - completed) / rate)}")
    if failed:
        parts.append(f"failed {failed}")
    if retries:
        parts.append(f"retries {retries}")
    if quarantined:
        parts.append(f"quarantined {quarantined}")
    if restarts:
        parts.append(f"pool-restarts {restarts}")
    if workers and workers > 1:
        shown_busy = workers if busy is None else min(busy, workers)
        parts.append(f"workers {shown_busy}/{workers}")
    parts.append(f"elapsed {format_duration(elapsed)}")
    return f"[{label}] " + " | ".join(parts)


class ProgressReporter:
    """Throttled stderr heartbeat fed by campaign drivers.

    Counters are cumulative; drivers call :meth:`advance` with deltas as
    outcomes arrive and :meth:`finish` once at the end (the final line is
    always emitted, throttle or not).  A disabled reporter ignores every
    call, so callers never branch.
    """

    def __init__(
        self,
        total: Optional[int] = None,
        label: str = "trials",
        stream: Optional[TextIO] = None,
        interval: float = 1.0,
        enabled: bool = True,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.total = total
        self.label = label
        self.stream = stream
        self.interval = interval
        self.enabled = enabled
        self.clock = clock
        self.completed = 0
        self.attempted = 0
        self.failed = 0
        self.retries = 0
        self.quarantined = 0
        self.restarts = 0
        self.workers: Optional[int] = None
        self.busy: Optional[int] = None
        #: Monotonic instant of the first *enabled* event — ``None`` until
        #: one happens, so a reporter constructed disabled and enabled
        #: mid-campaign measures elapsed/ETA from when it started seeing
        #: events, not from construction (let alone from 0.0).
        self.started: Optional[float] = None
        if enabled:
            self.started = clock()
        self._last_emit = float("-inf")
        self.lines_emitted = 0

    # -- driver API ------------------------------------------------------

    def _now(self) -> float:
        """Current clock, starting the elapsed baseline on first use."""
        now = self.clock()
        if self.started is None:
            self.started = now
        return now

    def set_workers(self, workers: int, busy: Optional[int] = None) -> None:
        """Record pool width (and optionally how many workers are busy)."""
        if not self.enabled:
            return
        self._now()
        self.workers = workers
        self.busy = busy

    def advance(
        self,
        completed: int = 0,
        attempted: int = 0,
        failed: int = 0,
        retries: int = 0,
        quarantined: int = 0,
        busy: Optional[int] = None,
        restarts: int = 0,
    ) -> None:
        """Bump counters by deltas and emit a heartbeat if one is due."""
        if not self.enabled:
            return
        self.completed += completed
        self.attempted += attempted
        self.failed += failed
        self.retries += retries
        self.quarantined += quarantined
        self.restarts += restarts
        if busy is not None:
            self.busy = busy
        self.maybe_emit()

    def maybe_emit(self) -> None:
        """Emit a line when at least ``interval`` passed since the last."""
        if not self.enabled:
            return
        now = self._now()
        if now - self._last_emit >= self.interval:
            self._emit(now)

    def finish(self) -> None:
        """Emit the final line unconditionally."""
        if not self.enabled:
            return
        self._emit(self._now())

    # -- internals -------------------------------------------------------

    def elapsed(self) -> float:
        """Seconds since the first enabled event (0.0 before any)."""
        if self.started is None:
            return 0.0
        return max(0.0, self.clock() - self.started)

    def render(self) -> str:
        """The current heartbeat line (without emitting it)."""
        return render_progress_line(
            label=self.label,
            completed=self.completed,
            total=self.total,
            elapsed=self.elapsed(),
            attempted=self.attempted,
            failed=self.failed,
            retries=self.retries,
            quarantined=self.quarantined,
            workers=self.workers,
            busy=self.busy,
            restarts=self.restarts,
        )

    def snapshot(self) -> dict:
        """The current counters as a ``{"kind": "progress"}`` record.

        This is the JSON twin of :meth:`render`: campaign services stream
        it over the wire (sealed like a journal v2 record) so clients get
        machine-readable progress instead of scraping heartbeat lines.
        """
        return {
            "kind": "progress",
            "label": self.label,
            "completed": self.completed,
            "total": self.total,
            "attempted": self.attempted,
            "failed": self.failed,
            "retries": self.retries,
            "quarantined": self.quarantined,
            "restarts": self.restarts,
            "workers": self.workers,
            "busy": self.busy,
            "elapsed_seconds": round(self.elapsed(), 6),
        }

    def _emit(self, now: float) -> None:
        self._last_emit = now
        stream = self.stream if self.stream is not None else sys.stderr
        stream.write(self.render() + "\n")
        try:
            stream.flush()
        except (OSError, ValueError):  # pragma: no cover - closed stream
            pass
        self.lines_emitted += 1


#: Shared disabled reporter (never mutates, safe to share).
NULL_PROGRESS = ProgressReporter(enabled=False)


def ensure_progress(
    progress: ProgressSpec,
    total: Optional[int] = None,
    label: str = "trials",
    **kwargs: Any,
) -> ProgressReporter:
    """Normalise a driver's ``progress`` argument into a reporter.

    ``True`` builds a stderr heartbeat, ``False``/``None`` the shared
    disabled reporter; an existing reporter passes through (its ``total``
    is filled in when the caller knows it and the reporter does not).
    """
    if isinstance(progress, ProgressReporter):
        if progress.total is None and total is not None:
            progress.total = total
        return progress
    if progress:
        return ProgressReporter(total=total, label=label, **kwargs)
    return NULL_PROGRESS
