"""Exception hierarchy for the repro package."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class ConfigurationError(ReproError):
    """A parameter combination is outside the model's validity range."""


class CongestViolation(ReproError):
    """A protocol tried to send a message exceeding the CONGEST bit budget."""


class KnowledgeViolation(ReproError):
    """A protocol addressed a node it could not know under KT0 anonymity."""


class SimulationError(ReproError):
    """The engine reached an inconsistent state (a bug, not a protocol fault)."""


class ProtocolViolation(ReproError):
    """A protocol broke an engine contract (e.g. sent after deciding to halt)."""


class BudgetExceeded(ReproError):
    """A hard message/round budget was exhausted (used by lower-bound tooling)."""


class TrialFailed(ReproError):
    """A harness trial raised (or kept raising after retries).

    Wraps the underlying exception; :attr:`attempts` counts how many times
    the trial was tried before giving up.
    """

    def __init__(self, message: str, attempts: int = 1) -> None:
        super().__init__(message)
        self.attempts = attempts


class TrialTimeout(TrialFailed):
    """A harness trial exceeded its wall-clock budget."""


class OracleViolation(ReproError):
    """A fuzzed run broke a protocol-level safety oracle (see repro.chaos)."""
