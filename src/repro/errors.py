"""Exception hierarchy for the repro package."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class ConfigurationError(ReproError):
    """A parameter combination is outside the model's validity range."""


class CongestViolation(ReproError):
    """A protocol tried to send a message exceeding the CONGEST bit budget."""


class KnowledgeViolation(ReproError):
    """A protocol addressed a node it could not know under KT0 anonymity."""


class SimulationError(ReproError):
    """The engine reached an inconsistent state (a bug, not a protocol fault)."""


class ProtocolViolation(ReproError):
    """A protocol broke an engine contract (e.g. sent after deciding to halt)."""


class BudgetExceeded(ReproError):
    """A hard message/round budget was exhausted (used by lower-bound tooling)."""


class TrialFailed(ReproError):
    """A harness trial raised (or kept raising after retries).

    Wraps the underlying exception; :attr:`attempts` counts how many times
    the trial was tried before giving up.  When the failure crossed a
    process boundary the wrapper also carries *where* it happened:
    :attr:`trial_index` (position in the campaign), :attr:`spec` (the
    :class:`~repro.parallel.spec.TrialSpec`, when known), and
    :attr:`worker_pid` (the pool worker that ran it).
    """

    def __init__(
        self,
        message: str,
        attempts: int = 1,
        trial_index: "int | None" = None,
        spec: "object | None" = None,
        worker_pid: "int | None" = None,
    ) -> None:
        super().__init__(message)
        self.attempts = attempts
        self.trial_index = trial_index
        self.spec = spec
        self.worker_pid = worker_pid


class TrialTimeout(TrialFailed):
    """A harness trial exceeded its wall-clock budget."""


class BackendUnavailable(ReproError):
    """A requested engine backend cannot run in this environment.

    Raised when ``backend="vec"`` is requested but numpy is not installed
    (install the ``perf`` extra: ``pip install repro[perf]``).
    """


class VecUnsupported(ReproError):
    """The vectorized backend cannot reproduce this configuration exactly.

    Raised *before any side effects* when a run uses a feature the vec
    engine does not model (adaptive adversaries, delivery delays, traces,
    message budgets, Byzantine faults, or a committee overflow).  Callers
    fall back to the reference engine, so users only see this when they
    request ``backend="vec"`` with ``strict=True`` semantics (tests).
    """


class WireError(ReproError):
    """A real-network trial (:mod:`repro.net`) failed at the system layer.

    Raised by the wire coordinator for transport-level faults the model
    does not contain: a node process that never connected, heartbeat
    silence from an unscripted death, a frame-count mismatch, or a
    sender-side delivery filter diverging from the coordinator's replay.
    The driver converts it into a journalled failed trial — never a hang.
    """


class OracleViolation(ReproError):
    """A fuzzed run broke a protocol-level safety oracle (see repro.chaos)."""


class ScriptError(ReproError):
    """A chaos script (CrashScript JSON) is malformed or unsupported.

    Raised by the loaders with a message naming the offending entry, so a
    hand-edited or future-version script fails with context instead of a
    bare ``KeyError``.
    """


class CampaignInterrupted(ReproError):
    """The parent caught SIGINT/SIGTERM and stopped at a trial boundary.

    The checkpoint journal (when one was configured) is flushed and
    consistent, so the campaign resumes with ``--resume`` from exactly
    the trials that had not completed.  :attr:`signum` is the signal that
    triggered the shutdown (``None`` for programmatic requests).
    """

    def __init__(self, message: str, signum: "int | None" = None) -> None:
        super().__init__(message)
        self.signum = signum
