"""Shared primitive types for the repro package.

The simulator models an anonymous complete network, so node identifiers
(`NodeId`) are *engine-internal* handles: protocols must acquire them only
through :meth:`repro.sim.node.Context.sample_nodes` (port sampling) or from
the ``sender`` field of a delivered message (replying along the arrival
port).  This mirrors the KT0 knowledge model of the paper.
"""

from __future__ import annotations

import enum

#: Engine-internal node handle.  Semantically a port, see module docstring.
NodeId = int

#: 1-based synchronous round number.
Round = int

#: A rank drawn uniformly from ``[1, n**4]``; doubles as the node ID in the
#: paper's algorithms (Section IV-A).
Rank = int


class NodeState(enum.Enum):
    """Leader-election output state of a node (paper, Definition 1)."""

    UNDECIDED = "undecided"
    ELECTED = "elected"
    NON_ELECTED = "non_elected"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"NodeState.{self.name}"


class Decision(enum.Enum):
    """Binary-agreement output state of a node (paper, Definition 2)."""

    UNDECIDED = "undecided"
    ZERO = 0
    ONE = 1

    @classmethod
    def of(cls, bit: int) -> "Decision":
        """Return the decision for input bit ``bit`` (0 or 1)."""
        if bit == 0:
            return cls.ZERO
        if bit == 1:
            return cls.ONE
        raise ValueError(f"binary input must be 0 or 1, got {bit!r}")

    @property
    def bit(self) -> int:
        """The decided bit; raises if undecided."""
        if self is Decision.UNDECIDED:
            raise ValueError("node is undecided")
        return int(self.value)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Decision.{self.name}"


class Knowledge(enum.Enum):
    """Initial topology knowledge model (paper, Section II)."""

    #: Nodes know nothing about their neighbours (anonymous network).
    KT0 = "KT0"
    #: Nodes know the IDs of their neighbours and the connecting ports.
    KT1 = "KT1"
