"""Adversary interface.

The engine consults the adversary twice:

* once before the run, :meth:`Adversary.select_faulty` — the *static*
  choice of the faulty set (paper, Section II: "a static adversary ...
  selects the faulty nodes before the execution starts");
* every round, :meth:`Adversary.plan_round` — the *adaptive* choice of
  which faulty nodes crash this round and which subset of each crashing
  node's outgoing messages is still delivered.

The adversary is omniscient: the :class:`RoundView` exposes the messages
faulty nodes are sending this round and (for fully adaptive strategies)
the protocol objects themselves.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, List, Mapping, Optional, Sequence, Set

from ..types import NodeId, Round

if TYPE_CHECKING:  # pragma: no cover - type-only imports (avoid cycles)
    from ..sim.message import Envelope
    from ..sim.node import Protocol


@dataclass(frozen=True)
class CrashOrder:
    """Instruction to crash one node this round.

    ``keep`` decides, per outgoing envelope of the crashing node in its
    crash round, whether the message is still delivered.  The two common
    extremes have named constructors.
    """

    keep: Callable[["Envelope"], bool]

    @staticmethod
    def drop_all() -> "CrashOrder":
        """Crash losing every message of the crash round."""
        return CrashOrder(keep=lambda envelope: False)

    @staticmethod
    def keep_all() -> "CrashOrder":
        """Crash after the crash round's messages are all delivered."""
        return CrashOrder(keep=lambda envelope: True)

    @staticmethod
    def keep_fraction(fraction: float, rng: random.Random) -> "CrashOrder":
        """Deliver each crash-round message independently w.p. ``fraction``."""
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fraction must be in [0,1], got {fraction}")
        return CrashOrder(keep=lambda envelope: rng.random() < fraction)

    @staticmethod
    def keep_destinations(kept: Set[NodeId]) -> "CrashOrder":
        """Deliver only messages addressed to nodes in ``kept``."""
        return CrashOrder(keep=lambda envelope: envelope.dst in kept)


@dataclass
class RoundView:
    """What the adversary sees when planning a round."""

    round: Round
    n: int
    #: Faulty nodes that have not crashed yet.
    faulty_alive: Set[NodeId]
    #: Nodes already crashed, with their crash round.
    crashed: Dict[NodeId, Round]
    #: This round's outgoing envelopes of each faulty alive node (for a
    #: dynamic-selection adversary: of *every* sending node).
    outboxes: Mapping[NodeId, Sequence["Envelope"]]
    #: All protocol instances (index = node id); adaptive strategies may
    #: inspect but must not mutate them.
    protocols: Sequence["Protocol"] = field(default_factory=list)
    #: How many more nodes a dynamic-selection adversary may corrupt.
    budget_remaining: int = 0

    def sending_faulty(self) -> List[NodeId]:
        """Faulty alive nodes that are sending at least one message now."""
        return [u for u in self.faulty_alive if self.outboxes.get(u)]


class Adversary:
    """Base adversary: fault-free (never selects, never crashes)."""

    def select_faulty(
        self,
        n: int,
        max_faulty: int,
        rng: random.Random,
        inputs: Optional[Sequence[int]] = None,
    ) -> Set[NodeId]:
        """Choose the static faulty set (size ``<= max_faulty``).

        ``inputs`` carries the agreement input bits when relevant — the
        static adversary assigns inputs and faults together in the paper's
        model, so it may correlate them.
        """
        return set()

    #: Whether this adversary selects its victims *during* the execution
    #: (an *adaptive-selection* adversary).  The paper's model is static
    #: selection (False); the adaptive variant exists so experiment E14
    #: can demonstrate why the distinction matters.  When True, the engine
    #: allows :meth:`plan_round` to crash any node, charging each new
    #: victim against the fault budget.
    dynamic_selection: bool = False

    def plan_round(self, view: RoundView, rng: random.Random) -> Dict[NodeId, CrashOrder]:
        """Return the nodes crashing this round with their delivery filters.

        Keys must be members of ``view.faulty_alive`` — unless
        :attr:`dynamic_selection` is True, in which case any alive node may
        be targeted while the fault budget lasts.
        """
        return {}

    def done(self, view: RoundView) -> bool:
        """True when the adversary will issue no further crashes.

        The engine may fast-forward quiescent suffixes of a run only once
        this returns True, so strategies with late scheduled crashes must
        report accurately.  The default is conservative: done when every
        faulty node has crashed.
        """
        return not view.faulty_alive

    # -- convenience ----------------------------------------------------

    def name(self) -> str:
        """Short human-readable name (used in experiment tables)."""
        return type(self).__name__
