"""Concrete adversary strategies.

Each strategy is one way an adaptive crash adversary can attack the
protocols.  The portfolio covers the failure modes the paper's proofs
reason about:

* :class:`NoFaults` — the fault-free baseline environment.
* :class:`EagerCrash` — everything faulty crashes in round 1 dropping all
  messages (the "all initiators dead" scenario of Lemma 4).
* :class:`LazyCrash` — faulty nodes survive the whole run and crash in its
  last round (tests the "leader may crash after election" footnote).
* :class:`RandomCrash` — each faulty node crashes in an independently
  random round with a random subset of its last messages delivered.
* :class:`StaggeredCrash` — one crash every ``k`` rounds, in a fixed
  order (the proof's "a single node may crash in each iteration").
* :class:`SplitDeliveryCrash` — crashing nodes deliver to exactly half of
  their destinations, maximising view divergence between receivers.
* :class:`AdaptiveMinProposerCrash` — fully adaptive: watches the wire and
  crashes, among faulty senders, the one currently sending the *smallest*
  rank/value, mid-broadcast, delivering to half its referees.  This is the
  natural worst case for the Section IV-A algorithm (kill the would-be
  leader every iteration).

Every strategy here issues *crashes* only.  To additionally assign some
nodes omission or Byzantine behaviour, wrap any of these in
:class:`repro.faults.byzantine.ByzantineAdversary` with a per-node
:class:`~repro.faults.byzantine.ByzantinePlan` — the wrapped strategy
keeps planning crashes for the non-Byzantine remainder of the fault
budget.
"""

from __future__ import annotations

import random
from typing import Dict, Optional, Sequence, Set

from ..types import NodeId
from .adversary import Adversary, CrashOrder, RoundView


def _uniform_faulty(
    n: int, max_faulty: int, rng: random.Random
) -> Set[NodeId]:
    """The default static choice: a uniform random faulty set of full size."""
    if max_faulty <= 0:
        return set()
    return set(rng.sample(range(n), min(max_faulty, n)))


class NoFaults(Adversary):
    """Fault-free environment: empty faulty set, no crashes."""

    def select_faulty(self, n, max_faulty, rng, inputs=None):
        return set()

    def done(self, view: RoundView) -> bool:
        return True

    def name(self) -> str:
        return "no-faults"


class EagerCrash(Adversary):
    """All faulty nodes crash in round 1, losing every round-1 message."""

    def select_faulty(self, n, max_faulty, rng, inputs=None):
        return _uniform_faulty(n, max_faulty, rng)

    def plan_round(self, view: RoundView, rng: random.Random):
        if view.round != 1:
            return {}
        return {u: CrashOrder.drop_all() for u in view.faulty_alive}

    def done(self, view: RoundView) -> bool:
        return view.round > 1 or not view.faulty_alive

    def name(self) -> str:
        return "eager"


class LazyCrash(Adversary):
    """Faulty nodes behave correctly until ``crash_round``, then crash.

    With ``crash_round=None`` they never crash at all (pure "faulty but
    well-behaved" run — the adversary footnote of Definition 1).
    """

    def __init__(self, crash_round: Optional[int] = None) -> None:
        self.crash_round = crash_round

    def select_faulty(self, n, max_faulty, rng, inputs=None):
        return _uniform_faulty(n, max_faulty, rng)

    def plan_round(self, view: RoundView, rng: random.Random):
        if self.crash_round is None or view.round != self.crash_round:
            return {}
        return {u: CrashOrder.drop_all() for u in view.faulty_alive}

    def done(self, view: RoundView) -> bool:
        if self.crash_round is None:
            return True
        return view.round > self.crash_round or not view.faulty_alive

    def name(self) -> str:
        return f"lazy@{self.crash_round}" if self.crash_round else "lazy-never"


class RandomCrash(Adversary):
    """Each faulty node crashes in a random round of ``[1, horizon]``.

    In its crash round, each of its wire messages is delivered
    independently with probability ``keep_probability``.
    """

    def __init__(self, horizon: int, keep_probability: float = 0.5) -> None:
        if horizon < 1:
            raise ValueError(f"horizon must be >= 1, got {horizon}")
        if not 0.0 <= keep_probability <= 1.0:
            raise ValueError(f"keep_probability must be in [0,1]")
        self.horizon = horizon
        self.keep_probability = keep_probability
        self._schedule: Dict[NodeId, int] = {}

    def select_faulty(self, n, max_faulty, rng, inputs=None):
        faulty = _uniform_faulty(n, max_faulty, rng)
        self._schedule = {u: rng.randint(1, self.horizon) for u in faulty}
        return faulty

    def plan_round(self, view: RoundView, rng: random.Random):
        orders = {}
        for u in view.faulty_alive:
            if self._schedule.get(u) == view.round:
                orders[u] = CrashOrder.keep_fraction(self.keep_probability, rng)
        return orders

    def done(self, view: RoundView) -> bool:
        return view.round > self.horizon or not view.faulty_alive

    def name(self) -> str:
        return f"random@{self.horizon}"


class StaggeredCrash(Adversary):
    """One faulty node crashes every ``period`` rounds, dropping everything.

    Mirrors the convergence argument of Theorem 4.1 ("a single node may
    crash in each iteration").
    """

    def __init__(self, period: int = 4, start_round: int = 1) -> None:
        if period < 1:
            raise ValueError(f"period must be >= 1, got {period}")
        self.period = period
        self.start_round = start_round
        self._order: Sequence[NodeId] = ()

    def select_faulty(self, n, max_faulty, rng, inputs=None):
        faulty = _uniform_faulty(n, max_faulty, rng)
        order = sorted(faulty)
        rng.shuffle(order)
        self._order = order
        return faulty

    def plan_round(self, view: RoundView, rng: random.Random):
        since = view.round - self.start_round
        if since < 0 or since % self.period != 0:
            return {}
        index = since // self.period
        if index >= len(self._order):
            return {}
        victim = self._order[index]
        if victim not in view.faulty_alive:
            return {}
        return {victim: CrashOrder.drop_all()}

    def done(self, view: RoundView) -> bool:
        if not view.faulty_alive:
            return True
        last = self.start_round + self.period * (len(self._order) - 1)
        return view.round > last

    def name(self) -> str:
        return f"staggered/{self.period}"


class SplitDeliveryCrash(Adversary):
    """Like :class:`RandomCrash`, but a crashing node delivers to exactly
    the lexicographically smaller half of its destinations.

    This maximises the chance that two receivers end up with inconsistent
    views of the crashed sender, the core difficulty of Section IV-A.
    """

    def __init__(self, horizon: int) -> None:
        if horizon < 1:
            raise ValueError(f"horizon must be >= 1, got {horizon}")
        self.horizon = horizon
        self._schedule: Dict[NodeId, int] = {}

    def select_faulty(self, n, max_faulty, rng, inputs=None):
        faulty = _uniform_faulty(n, max_faulty, rng)
        self._schedule = {u: rng.randint(1, self.horizon) for u in faulty}
        return faulty

    def plan_round(self, view: RoundView, rng: random.Random):
        orders = {}
        for u in view.faulty_alive:
            if self._schedule.get(u) != view.round:
                continue
            outbox = view.outboxes.get(u, [])
            destinations = sorted(envelope.dst for envelope in outbox)
            kept = set(destinations[: len(destinations) // 2])
            orders[u] = CrashOrder.keep_destinations(kept)
        return orders

    def done(self, view: RoundView) -> bool:
        return view.round > self.horizon or not view.faulty_alive

    def name(self) -> str:
        return f"split@{self.horizon}"


class AdaptiveMinProposerCrash(Adversary):
    """Fully adaptive attack on rank-based protocols.

    Every ``period`` rounds it inspects the wire: among faulty senders it
    crashes the one whose outgoing messages carry the smallest integer
    field (the would-be minimum-rank leader, or the value-0 propagator in
    the agreement protocol), delivering to only half of its destinations.
    """

    def __init__(self, period: int = 1) -> None:
        if period < 1:
            raise ValueError(f"period must be >= 1, got {period}")
        self.period = period
        self._budget: int = 0

    def select_faulty(self, n, max_faulty, rng, inputs=None):
        faulty = _uniform_faulty(n, max_faulty, rng)
        self._budget = len(faulty)
        return faulty

    @staticmethod
    def _min_field(view: RoundView, node: NodeId) -> Optional[int]:
        values = [
            value
            for envelope in view.outboxes.get(node, [])
            for value in envelope.message.fields
            if value is not None
        ]
        return min(values) if values else None

    def plan_round(self, view: RoundView, rng: random.Random):
        if view.round % self.period != 0:
            return {}
        scored = []
        for u in view.sending_faulty():
            smallest = self._min_field(view, u)
            if smallest is not None:
                scored.append((smallest, u))
        if not scored:
            return {}
        _, victim = min(scored)
        outbox = view.outboxes.get(victim, [])
        destinations = sorted(envelope.dst for envelope in outbox)
        kept = set(destinations[: len(destinations) // 2])
        return {victim: CrashOrder.keep_destinations(kept)}

    def done(self, view: RoundView) -> bool:
        # Adaptive: may strike whenever a faulty node is still sending, but
        # once the network is quiescent nothing it does is observable.
        return True

    def name(self) -> str:
        return "adaptive-min"


class RefereeCrash(Adversary):
    """Attacks Lemma 3: crashes the *referees* of candidates.

    Watches round-1 registrations and crashes, among the faulty nodes,
    precisely those that were sampled as referees (they are identifiable:
    faulty referees receive registrations in round 2 and forward rank
    lists from round 2 on — this adversary crashes them before they can,
    dropping everything).  Lemma 3's w.h.p. guarantee — every candidate
    pair keeps a common *non-faulty* referee — is exactly what the
    protocol needs to survive this strategy.
    """

    def __init__(self, crash_round: int = 2) -> None:
        if crash_round < 1:
            raise ValueError(f"crash_round must be >= 1, got {crash_round}")
        self.crash_round = crash_round

    def select_faulty(self, n, max_faulty, rng, inputs=None):
        return _uniform_faulty(n, max_faulty, rng)

    def plan_round(self, view: RoundView, rng: random.Random):
        if view.round != self.crash_round:
            return {}
        # Faulty nodes acting as referees are exactly the faulty senders
        # at the start of the forwarding phase.
        victims = view.sending_faulty()
        return {u: CrashOrder.drop_all() for u in victims}

    def done(self, view: RoundView) -> bool:
        return view.round > self.crash_round or not view.faulty_alive

    def name(self) -> str:
        return f"referee-crash@{self.crash_round}"


class CandidateHunter(Adversary):
    """Adaptive-*selection* adversary: corrupts whoever speaks first.

    The paper's model fixes the faulty set before the execution (static
    selection).  This strategy shows why: it watches round 1, corrupts
    exactly the nodes that send (the self-selected candidates) up to the
    fault budget, and crashes them dropping everything.  Against it, the
    committee approach fails whenever the committee fits inside the
    budget — experiment E14 measures the collapse.
    """

    dynamic_selection = True

    def __init__(self, rounds: int = 3) -> None:
        if rounds < 1:
            raise ValueError(f"rounds must be >= 1, got {rounds}")
        self.rounds = rounds

    def select_faulty(self, n, max_faulty, rng, inputs=None):
        return set()  # selection happens adaptively

    def plan_round(self, view: RoundView, rng: random.Random):
        if view.round > self.rounds:
            return {}
        budget = view.budget_remaining + len(view.faulty_alive)
        orders: Dict[NodeId, CrashOrder] = {}
        for sender in sorted(view.outboxes):
            if sender in view.crashed:
                continue
            if len(orders) >= budget:
                break
            orders[sender] = CrashOrder.drop_all()
        return orders

    def done(self, view: RoundView) -> bool:
        return view.round > self.rounds

    def name(self) -> str:
        return f"candidate-hunter@{self.rounds}"


def standard_portfolio(horizon: int) -> Sequence[Adversary]:
    """The adversary portfolio used across tests and experiments."""
    return (
        NoFaults(),
        EagerCrash(),
        LazyCrash(crash_round=max(1, horizon - 1)),
        RandomCrash(horizon=horizon),
        StaggeredCrash(period=4),
        SplitDeliveryCrash(horizon=horizon),
        AdaptiveMinProposerCrash(),
    )


def named_adversary(name: str, horizon: int) -> Adversary:
    """Instantiate a portfolio adversary by short name (CLI/experiments)."""
    table = {
        "none": NoFaults(),
        "eager": EagerCrash(),
        "lazy": LazyCrash(crash_round=max(1, horizon - 1)),
        "random": RandomCrash(horizon=horizon),
        "staggered": StaggeredCrash(period=4),
        "split": SplitDeliveryCrash(horizon=horizon),
        "adaptive": AdaptiveMinProposerCrash(),
        "hunter": CandidateHunter(),
        "referees": RefereeCrash(),
    }
    try:
        return table[name]
    except KeyError:
        raise ValueError(
            f"unknown adversary {name!r}; choose from {sorted(table)}"
        ) from None
