"""Crash-fault adversaries (the paper's fault model, Section II).

A *static* adversary selects up to ``f <= (1 - alpha) n`` faulty nodes
before the execution starts; during the execution it *adaptively* decides
in which round each faulty node crashes and which subset of that node's
final-round messages is delivered.  Non-faulty nodes never crash.

The theorems hold against every such adversary, so the test-suite and the
benchmarks run each protocol against a portfolio of strategies, including
the natural worst cases suggested by the proofs (crash the current minimum
proposer mid-broadcast, deliver to half the referees, ...).
"""

from .adversary import Adversary, CrashOrder, RoundView
from .strategies import (
    AdaptiveMinProposerCrash,
    CandidateHunter,
    EagerCrash,
    LazyCrash,
    NoFaults,
    RandomCrash,
    RefereeCrash,
    SplitDeliveryCrash,
    StaggeredCrash,
    named_adversary,
    standard_portfolio,
)

__all__ = [
    "AdaptiveMinProposerCrash",
    "Adversary",
    "CandidateHunter",
    "CrashOrder",
    "EagerCrash",
    "LazyCrash",
    "NoFaults",
    "RandomCrash",
    "RefereeCrash",
    "RoundView",
    "SplitDeliveryCrash",
    "StaggeredCrash",
    "named_adversary",
    "standard_portfolio",
]
