"""Crash-fault adversaries (the paper's fault model, Section II).

A *static* adversary selects up to ``f <= (1 - alpha) n`` faulty nodes
before the execution starts; during the execution it *adaptively* decides
in which round each faulty node crashes and which subset of that node's
final-round messages is delivered.  Non-faulty nodes never crash.

The theorems hold against every such adversary, so the test-suite and the
benchmarks run each protocol against a portfolio of strategies, including
the natural worst cases suggested by the proofs (crash the current minimum
proposer mid-broadcast, deliver to half the referees, ...).

Beyond crashes, :mod:`repro.faults.byzantine` provides the stronger rungs
of the fault hierarchy — selective omission and actively lying (Byzantine)
nodes — assignable per node through a
:class:`~repro.faults.byzantine.ByzantinePlan` and composable with any
crash strategy via :class:`~repro.faults.byzantine.ByzantineAdversary`.
Its names are re-exported here lazily (it depends on the protocol layer,
which depends on this package — eager import would cycle).
"""

from typing import TYPE_CHECKING

from .adversary import Adversary, CrashOrder, RoundView
from .strategies import (
    AdaptiveMinProposerCrash,
    CandidateHunter,
    EagerCrash,
    LazyCrash,
    NoFaults,
    RandomCrash,
    RefereeCrash,
    SplitDeliveryCrash,
    StaggeredCrash,
    named_adversary,
    standard_portfolio,
)

if TYPE_CHECKING:  # pragma: no cover - static-analysis view of the lazy names
    from .byzantine import (  # noqa: F401
        AGREEMENT_MODES,
        BYZANTINE_MODES,
        ELECTION_MODES,
        ByzantineAdversary,
        ByzantinePlan,
        Equivocator,
        RankForger,
        SelectiveOmission,
        ZeroForger,
        agreement_attackers,
        election_attackers,
        plan_factory,
    )

#: Names resolved lazily from :mod:`repro.faults.byzantine` (PEP 562).
_BYZANTINE_EXPORTS = (
    "AGREEMENT_MODES",
    "BYZANTINE_MODES",
    "ELECTION_MODES",
    "ByzantineAdversary",
    "ByzantinePlan",
    "Equivocator",
    "RankForger",
    "SelectiveOmission",
    "ZeroForger",
    "agreement_attackers",
    "election_attackers",
    "plan_factory",
)


def __getattr__(name: str):
    if name in _BYZANTINE_EXPORTS:
        from . import byzantine

        return getattr(byzantine, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "AdaptiveMinProposerCrash",
    "Adversary",
    "CandidateHunter",
    "CrashOrder",
    "EagerCrash",
    "LazyCrash",
    "NoFaults",
    "RandomCrash",
    "RefereeCrash",
    "RoundView",
    "SplitDeliveryCrash",
    "StaggeredCrash",
    "named_adversary",
    "standard_portfolio",
    *_BYZANTINE_EXPORTS,
]
