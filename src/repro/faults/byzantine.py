"""First-class Byzantine and omission faults.

The paper's model (and :mod:`repro.faults.adversary`) is *crash* faults: a
faulty node follows the protocol until it stops.  This module adds the two
stronger rungs of the classic fault hierarchy:

* **omission** — :class:`SelectiveOmission` wraps any honest protocol and
  silently drops a deterministic fraction of its outgoing messages; the
  node still computes honestly, it just fails to speak;
* **Byzantine** — attacker protocols that actively lie:
  :class:`ZeroForger` (agreement: injects a value it does not hold,
  breaking validity), :class:`RankForger` (election: claims the guaranteed
  minimum rank, stealing the election), :class:`Equivocator` (election:
  tells each half of its referees a different rank, splitting views).

A :class:`ByzantinePlan` assigns a per-node misbehaviour mode; it composes
with any crash strategy through :class:`ByzantineAdversary`, so a single
run can mix crashing, omitting, and lying nodes under one fault budget —
this is the "selectable per-node alongside crashes" model of ROADMAP
item 5.  Everything is deterministic: omission coins hash a recorded salt
(:func:`repro.rng.derive_seed`), never an RNG at send time, so fuzzed
plans replay and shrink exactly.

The attackers only do things any KT0 node could do (send well-formed
CONGEST messages through sampled ports); no engine rules are bent.  The
measured collapse of the paper's guarantees under these attackers is the
content of experiment E15 and motivates why sub-linear *Byzantine*
agreement is open (the runners live in :mod:`repro.extensions.byzantine`).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Set

from ..core.agreement import MSG_VALUE, AgreementProtocol
from ..core.leader_election import (
    MSG_CONFIRM,
    MSG_PROPOSE,
    MSG_RANK,
    LeaderElectionProtocol,
)
from ..errors import ConfigurationError
from ..rng import derive_seed
from ..sim.message import Message
from ..sim.node import Protocol
from ..types import NodeId
from .adversary import Adversary, CrashOrder, RoundView

#: Modes a :class:`ByzantinePlan` may assign to a node, by protocol family.
ELECTION_MODES = ("rank_forger", "equivocator", "omission")
AGREEMENT_MODES = ("zero_forger", "omission")
#: All recognised per-node misbehaviour modes.
BYZANTINE_MODES = ("zero_forger", "rank_forger", "equivocator", "omission")

#: Resolution of the deterministic omission coin.
_OMISSION_BUCKETS = 1 << 20


# ----------------------------------------------------------------------
# Attacker protocols (moved here from extensions/byzantine.py, which
# re-exports them; the E15 measurement runners stay there)
# ----------------------------------------------------------------------


class ZeroForger(AgreementProtocol):
    """Byzantine agreement candidate: forges a 0 despite holding a 1."""

    def on_start(self, ctx) -> None:
        self.is_candidate = True  # always joins the committee
        self._referees = ctx.sample_nodes(self.params.referee_count)
        # Lie: register a 0 regardless of the real input bit.
        forged = Message(MSG_VALUE, (0,))
        for referee in self._referees:
            ctx.send(referee, forged)
        self._sent_zero = True
        ctx.idle()


class RankForger(LeaderElectionProtocol):
    """Byzantine election candidate: claims rank 1 (the guaranteed
    minimum, hence the guaranteed winner)."""

    def _draw_rank(self, ctx) -> int:
        return 1  # the smallest admissible rank always wins

    def on_start(self, ctx) -> None:
        super().on_start(ctx)
        if not self.is_candidate:
            # A Byzantine node always volunteers.
            self.is_candidate = True
            self._rank_list = {self.rank}
            self._referees = ctx.sample_nodes(self.params.referee_count)
            announce = Message(MSG_RANK, (self.rank,))
            for referee in self._referees:
                ctx.send(referee, announce)
            ctx.wake_at(self.schedule.iteration_start)


class Equivocator(LeaderElectionProtocol):
    """Byzantine election candidate: tells each half of its referees a
    different rank, then supports both, splitting the committee's view."""

    def on_start(self, ctx) -> None:
        super().on_start(ctx)
        self.is_candidate = True
        if not self._referees:
            self._referees = ctx.sample_nodes(self.params.referee_count)
        self._low_rank = 2
        self._high_rank = self.params.rank_space - 1
        half = len(self._referees) // 2
        for referee in self._referees[:half]:
            ctx.send(referee, Message(MSG_RANK, (self._low_rank,)))
        for referee in self._referees[half:]:
            ctx.send(referee, Message(MSG_RANK, (self._high_rank,)))
        ctx.wake_at(self.schedule.iteration_start)

    def on_round(self, ctx, inbox) -> None:
        # Keep referees confused: claim both identities as own proposals.
        half = len(self._referees) // 2
        if ctx.round >= self.schedule.iteration_start and ctx.round % 4 == 0:
            for referee in self._referees[:half]:
                ctx.send(referee, Message(MSG_PROPOSE, (self._low_rank, self._low_rank)))
            for referee in self._referees[half:]:
                ctx.send(
                    referee,
                    Message(MSG_CONFIRM, (self._high_rank, self._high_rank)),
                )
        # Still act as a referee for others (delegating the passive logic).
        proposals = [
            d.fields for d in inbox if d.kind in (MSG_PROPOSE, MSG_CONFIRM)
        ]
        registrations = [
            (d.sender, d.fields[0]) for d in inbox if d.kind == MSG_RANK
        ]
        if registrations:
            self._referee_register(ctx, registrations)
        if proposals:
            self._referee_aggregate(ctx, proposals)
        ctx.wake_at(ctx.round + 4)


# ----------------------------------------------------------------------
# Selective omission
# ----------------------------------------------------------------------


class _OmittingContext:
    """Context proxy that silently swallows a fraction of outgoing sends.

    The coin is ``derive_seed(salt, dst, round)`` — deterministic per
    (destination, round), so a replay of the same plan omits the same
    messages.  Everything else delegates to the real
    :class:`~repro.sim.node.Context`.
    """

    __slots__ = ("_ctx", "_threshold", "_salt")

    def __init__(self, ctx, fraction: float, salt: int) -> None:
        self._ctx = ctx
        self._threshold = int(fraction * _OMISSION_BUCKETS)
        self._salt = salt

    def send(self, dst: NodeId, message: Message) -> None:
        coin = derive_seed(self._salt, dst, self._ctx.round) % _OMISSION_BUCKETS
        if coin < self._threshold:
            return  # omitted: the node believes it spoke, nobody heard
        self._ctx.send(dst, message)

    def send_many(self, dsts: Sequence[NodeId], message: Message) -> None:
        # Must route through the proxy's send (the real context's
        # send_many would bypass the omission coin).
        for dst in dsts:
            self.send(dst, message)

    def __getattr__(self, name: str):
        return getattr(self._ctx, name)


class SelectiveOmission(Protocol):
    """Wrap an honest protocol so it drops part of its outgoing traffic.

    The inner protocol runs unmodified — same state machine, same RNG
    draws — but each of its sends is suppressed with probability
    ``fraction`` (deterministically, keyed on ``salt``).  Attribute reads
    fall through to the inner protocol, so result evaluators see the usual
    ``state`` / ``decision`` / ``rank`` attributes.
    """

    def __init__(self, inner: Protocol, fraction: float, salt: int) -> None:
        if not 0.0 <= fraction <= 1.0:
            raise ConfigurationError(
                f"omission fraction must be in [0,1], got {fraction}"
            )
        self.inner = inner
        self.fraction = fraction
        self.salt = salt

    def _wrap(self, ctx) -> _OmittingContext:
        return _OmittingContext(ctx, self.fraction, self.salt)

    def on_start(self, ctx) -> None:
        self.inner.on_start(self._wrap(ctx))

    def on_round(self, ctx, inbox) -> None:
        self.inner.on_round(self._wrap(ctx), inbox)

    def on_stop(self, ctx) -> None:
        self.inner.on_stop(self._wrap(ctx))

    def __getattr__(self, name: str):
        return getattr(self.inner, name)


# ----------------------------------------------------------------------
# Per-node fault plans
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ByzantinePlan:
    """Per-node misbehaviour assignment (the Byzantine side of a run).

    ``modes`` maps a node id to one of :data:`BYZANTINE_MODES`.  The plan
    is inert data: :func:`plan_factory` turns it into a protocol factory,
    :class:`ByzantineAdversary` charges it against the fault budget.  Like
    :class:`~repro.chaos.script.CrashScript`, a plan is structurally
    editable (for the shrinker) and JSON round-trippable (for the chaos
    journal).
    """

    modes: Mapping[NodeId, str] = field(default_factory=dict)
    #: Probability that a :class:`SelectiveOmission` node drops any one
    #: outgoing message.
    omission_fraction: float = 0.75
    #: Salt for the deterministic omission coins.
    salt: int = 0

    def __post_init__(self) -> None:
        for node, mode in self.modes.items():
            if mode not in BYZANTINE_MODES:
                raise ConfigurationError(
                    f"unknown byzantine mode {mode!r} for node {node}; "
                    f"choose from {BYZANTINE_MODES}"
                )
        if not 0.0 <= self.omission_fraction <= 1.0:
            raise ConfigurationError(
                f"omission_fraction must be in [0,1], "
                f"got {self.omission_fraction}"
            )

    @property
    def nodes(self) -> Set[NodeId]:
        """The Byzantine node set (counts against the fault budget)."""
        return set(self.modes)

    def __len__(self) -> int:
        return len(self.modes)

    # -- structural edits (used by the shrinker) -----------------------

    def without_node(self, node: NodeId) -> "ByzantinePlan":
        """The same plan with ``node`` honest again."""
        modes = {u: m for u, m in self.modes.items() if u != node}
        return ByzantinePlan(
            modes=modes,
            omission_fraction=self.omission_fraction,
            salt=self.salt,
        )

    def with_mode(self, node: NodeId, mode: str) -> "ByzantinePlan":
        """The same plan with ``node`` reassigned to ``mode``."""
        modes = dict(self.modes)
        modes[node] = mode
        return ByzantinePlan(
            modes=modes,
            omission_fraction=self.omission_fraction,
            salt=self.salt,
        )

    # -- serialisation --------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe form; inverse of :meth:`from_dict`."""
        return {
            "modes": {str(u): mode for u, mode in sorted(self.modes.items())},
            "omission_fraction": self.omission_fraction,
            "salt": self.salt,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "ByzantinePlan":
        modes_raw = data.get("modes", {})
        return cls(
            modes={int(u): str(m) for u, m in dict(modes_raw).items()},  # type: ignore[arg-type]
            omission_fraction=float(data.get("omission_fraction", 0.75)),  # type: ignore[arg-type]
            salt=int(data.get("salt", 0)),  # type: ignore[arg-type]
        )


#: A per-node protocol constructor.
ProtocolFactory = Callable[[NodeId], Protocol]


def plan_factory(
    plan: ByzantinePlan,
    honest_factory: ProtocolFactory,
    attacker_factories: Optional[Mapping[str, ProtocolFactory]] = None,
) -> ProtocolFactory:
    """Wrap ``honest_factory`` so plan-designated nodes misbehave.

    ``attacker_factories`` maps protocol-family-specific modes (e.g.
    ``rank_forger``) to constructors; ``omission`` needs none — it wraps
    the honest instance.  An unmapped non-omission mode is a configuration
    error naming the node, so a plan sampled for the wrong protocol family
    fails loudly instead of running half-honest.
    """
    attackers = dict(attacker_factories or {})

    def factory(u: NodeId) -> Protocol:
        mode = plan.modes.get(u)
        if mode is None:
            return honest_factory(u)
        if mode == "omission":
            return SelectiveOmission(
                honest_factory(u),
                plan.omission_fraction,
                derive_seed(plan.salt, "omission", u),
            )
        maker = attackers.get(mode)
        if maker is None:
            raise ConfigurationError(
                f"byzantine mode {mode!r} (node {u}) is not available for "
                f"this protocol family; known modes: "
                f"{('omission',) + tuple(sorted(attackers))}"
            )
        return maker(u)

    return factory


def election_attackers(params, schedule) -> Dict[str, ProtocolFactory]:
    """Attacker constructors for the leader-election family."""
    return {
        "rank_forger": lambda u: RankForger(u, params, schedule),
        "equivocator": lambda u: Equivocator(u, params, schedule),
    }


def agreement_attackers(
    params, schedule, inputs: Sequence[int]
) -> Dict[str, ProtocolFactory]:
    """Attacker constructors for the agreement family."""
    return {
        "zero_forger": lambda u: ZeroForger(u, params, schedule, inputs[u]),
    }


# ----------------------------------------------------------------------
# Budget-charged composition with crash adversaries
# ----------------------------------------------------------------------


class ByzantineAdversary(Adversary):
    """Compose a :class:`ByzantinePlan` with any crash adversary.

    The Byzantine nodes join the static faulty set (they *are* faulty —
    the paper's budget ``f <= (1 - alpha) n`` covers all misbehaviour),
    but they never crash: their damage happens at the protocol layer.  The
    wrapped crash adversary sees a view without them and plans crashes for
    the remaining budget, so one run mixes lying, omitting, and crashing
    nodes under a single fault budget.
    """

    def __init__(
        self, plan: ByzantinePlan, crash: Optional[Adversary] = None
    ) -> None:
        self.plan = plan
        self.crash = crash if crash is not None else Adversary()
        self._byzantine = frozenset(plan.modes)
        self.dynamic_selection = self.crash.dynamic_selection

    def select_faulty(
        self,
        n: int,
        max_faulty: int,
        rng: random.Random,
        inputs: Optional[Sequence[int]] = None,
    ) -> Set[NodeId]:
        byzantine = set(self._byzantine)
        if len(byzantine) > max_faulty:
            raise ConfigurationError(
                f"byzantine plan assigns {len(byzantine)} nodes, fault "
                f"budget is {max_faulty}"
            )
        remaining = max_faulty - len(byzantine)
        crash_faulty = (
            set(self.crash.select_faulty(n, remaining, rng, inputs))
            - byzantine
        )
        return byzantine | crash_faulty

    def _crash_view(self, view: RoundView) -> RoundView:
        """The wrapped adversary's view: Byzantine nodes are not crashable."""
        byzantine = self._byzantine
        return RoundView(
            round=view.round,
            n=view.n,
            faulty_alive={u for u in view.faulty_alive if u not in byzantine},
            crashed=view.crashed,
            outboxes=view.outboxes,
            protocols=view.protocols,
            budget_remaining=view.budget_remaining,
        )

    def plan_round(
        self, view: RoundView, rng: random.Random
    ) -> Dict[NodeId, CrashOrder]:
        orders = self.crash.plan_round(self._crash_view(view), rng)
        # Defence in depth: a buggy strategy must not crash a Byzantine
        # node (they stay up and keep lying).
        return {u: o for u, o in orders.items() if u not in self._byzantine}

    def done(self, view: RoundView) -> bool:
        # Byzantine nodes never crash, so only the crash part gates the
        # quiescence fast-forward.
        return self.crash.done(self._crash_view(view))

    def name(self) -> str:
        return f"byz[{len(self._byzantine)}]+{self.crash.name()}"
