"""repro — fault-tolerant leader election and agreement with sublinear
message complexity.

A from-scratch reproduction of:

    Manish Kumar and Anisur Rahaman Molla,
    "On the Message Complexity of Fault-Tolerant Computation:
    Leader Election and Agreement",
    PODC 2021 (brief announcement); IEEE TPDS 34(4), 2023.

The package contains the paper's randomized protocols (:mod:`repro.core`),
the synchronous crash-fault network model they run on (:mod:`repro.sim`,
:mod:`repro.faults`), the comparison baselines of the paper's Table I
(:mod:`repro.baselines`), empirical machinery for the message-complexity
lower bounds (:mod:`repro.lowerbound`), and the measurement/experiment
harness (:mod:`repro.analysis`, :mod:`repro.experiments`).

Quickstart
----------

>>> from repro import elect_leader, agree
>>> result = elect_leader(n=256, alpha=0.5, seed=7, adversary="random")
>>> result.success
True
>>> result = agree(n=256, alpha=0.5, inputs="mixed", seed=7)
>>> result.decision in (0, 1)
True
"""

from .params import CongestBudget, Params, alpha_floor, default_params, max_faulty
from .types import Decision, Knowledge, NodeState

__version__ = "1.9.0"

__all__ = [
    "CongestBudget",
    "Decision",
    "Knowledge",
    "NodeState",
    "Params",
    "agree",
    "alpha_floor",
    "default_params",
    "elect_leader",
    "max_faulty",
    "__version__",
]


def __getattr__(name):
    # Lazy re-exports: the high-level entry points live in repro.core,
    # which pulls in the whole simulator; `import repro` alone stays light.
    if name in ("elect_leader", "agree"):
        from . import core

        return getattr(core, name)
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
