"""Beyond the paper: explorations of its stated open problems.

Section VI lists open questions; two of them are explorable on this
code base and live here:

* :mod:`~repro.extensions.byzantine` — open problem (3), "whether a
  sub-linear message bound agreement protocol is possible in the presence
  of Byzantine node failure": run the crash-fault protocols against
  actively lying nodes and measure exactly which guarantee breaks and how
  fast.  (Spoiler: a single forger suffices — which is why the question
  is open.)
* :mod:`~repro.extensions.general_graphs` — open problem (2), "extend the
  study of the message complexity of the problem in general graphs": a
  random-walk-based implicit leader election in the style of
  Gilbert-Robinson-Sourav [43] on non-complete topologies, measured
  against the complete-graph protocol.
"""

from .byzantine import (
    BYZANTINE_ATTACKS,
    ByzantineOutcome,
    run_byzantine_agreement,
    run_byzantine_election,
)
from .general_graphs import (
    WalkLeaderElectionOutcome,
    walk_based_leader_election,
)

__all__ = [
    "BYZANTINE_ATTACKS",
    "ByzantineOutcome",
    "WalkLeaderElectionOutcome",
    "run_byzantine_agreement",
    "run_byzantine_election",
    "walk_based_leader_election",
]
