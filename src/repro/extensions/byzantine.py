"""Byzantine stress tests (paper, open problem 3).

The paper's protocols assume *crash* faults: a faulty node follows the
protocol until it halts.  This module measures what happens when faulty
nodes instead lie, by swapping their protocol instances for attackers:

* ``zero_forger`` (agreement) — a faulty candidate injects a ``0`` it does
  not hold.  One successful forger violates *validity*: the committee
  agrees on a value that is nobody's input.
* ``rank_forger`` (election) — a faulty candidate claims rank 1, the
  smallest possible.  The protocol elects the minimum surviving rank, so
  the forger wins almost surely, destroying the "leader non-faulty w.p.
  alpha" guarantee (the forged leader can then go silent, leaving the
  network effectively leaderless).
* ``equivocator`` (election) — a faulty candidate tells half its referees
  one rank and the other half another, splitting views without crashing.

These attackers only do things any KT0 node could do (send well-formed
CONGEST messages through sampled ports); no engine rules are bent.  The
measured collapse is the content of experiment E15 and motivates why
sub-linear *Byzantine* agreement is open.

The attacker protocol classes were promoted to
:mod:`repro.faults.byzantine` (first-class fault model, per-node plans,
budget-charged composition with crash adversaries); they are re-exported
here so existing imports keep working.  This module keeps the E15
measurement runners.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set

from ..core.agreement import AgreementProtocol
from ..core.leader_election import LeaderElectionProtocol
from ..core.runner import make_inputs
from ..core.schedule import AgreementSchedule, LeaderElectionSchedule
from ..faults.byzantine import (  # noqa: F401  (re-exported compatibility names)
    Equivocator,
    RankForger,
    SelectiveOmission,
    ZeroForger,
)
from ..params import CongestBudget, Params
from ..rng import RngFactory
from ..sim.metrics import Metrics
from ..sim.network import Network
from ..types import Decision, NodeState

#: Attack names accepted by the runners.
BYZANTINE_ATTACKS = ("zero_forger", "rank_forger", "equivocator")


@dataclass
class ByzantineOutcome:
    """Outcome of a run with actively lying faulty nodes."""

    n: int
    alpha: float
    attack: str
    byzantine: Set[int]
    metrics: Metrics
    #: Agreement outputs of honest nodes (agreement attacks).
    decisions: Dict[int, Decision]
    #: Honest inputs (agreement attacks).
    inputs: Sequence[int]
    #: Honest ELECTED nodes / Byzantine ELECTED nodes (election attacks).
    honest_elected: List[int]
    byzantine_elected: List[int]
    #: Leader-rank beliefs of honest candidates (election attacks).
    beliefs: Dict[int, Optional[int]]
    #: Ranks claimed by the attackers (election attacks).
    forged_ranks: Set[int]

    # -- agreement verdicts ---------------------------------------------

    @property
    def honest_bits(self) -> List[int]:
        return [
            d.bit for d in self.decisions.values() if d is not Decision.UNDECIDED
        ]

    @property
    def agreement_holds(self) -> bool:
        """Honest nodes decided and agree."""
        bits = self.honest_bits
        return bool(bits) and len(set(bits)) == 1

    @property
    def validity_holds(self) -> bool:
        """Every honest decision is some *honest* node's input."""
        honest_inputs = {
            bit for u, bit in enumerate(self.inputs) if u not in self.byzantine
        }
        return all(bit in honest_inputs for bit in self.honest_bits)

    # -- election verdicts ------------------------------------------------

    @property
    def byzantine_won(self) -> bool:
        """Honest candidates unanimously believe a forged rank."""
        if not self.beliefs:
            return False
        values = {v for v in self.beliefs.values() if v is not None}
        if len(values) != 1:
            return False
        return values.pop() in self.forged_ranks

    @property
    def election_intact(self) -> bool:
        """The honest guarantee survived: exactly one honest ELECTED node
        whose rank is not forged."""
        return len(self.honest_elected) == 1 and not self.byzantine_won


def _select_byzantine(n: int, count: int, seed: int) -> Set[int]:
    rng = RngFactory(seed).stream("byzantine")
    return set(rng.sample(range(n), count))


def run_byzantine_agreement(
    n: int,
    alpha: float,
    byzantine_count: int,
    seed: int = 0,
    inputs: str = "all1",
    params: Optional[Params] = None,
) -> ByzantineOutcome:
    """Agreement with ``byzantine_count`` zero-forging nodes.

    Default inputs are all-1 so any decided 0 is provably forged.
    """
    params = params or Params(n=n, alpha=alpha)
    schedule = AgreementSchedule.from_params(params)
    input_bits = make_inputs(n, inputs, seed)
    byzantine = _select_byzantine(n, byzantine_count, seed)

    def factory(u: int):
        if u in byzantine:
            return ZeroForger(u, params, schedule, input_bits[u])
        return AgreementProtocol(u, params, schedule, input_bits[u])

    network = Network(
        n, factory, seed=seed, congest=CongestBudget(n), inputs=input_bits
    )
    run = network.run(schedule.last_round)
    outcome = ByzantineOutcome(
        n=n,
        alpha=alpha,
        attack="zero_forger",
        byzantine=byzantine,
        metrics=run.metrics,
        decisions={},
        inputs=input_bits,
        honest_elected=[],
        byzantine_elected=[],
        beliefs={},
        forged_ranks=set(),
    )
    for u in range(n):
        if u in byzantine:
            continue
        protocol: AgreementProtocol = run.protocol(u)  # type: ignore[assignment]
        outcome.decisions[u] = protocol.decision
    return outcome


def run_byzantine_election(
    n: int,
    alpha: float,
    byzantine_count: int,
    seed: int = 0,
    attack: str = "rank_forger",
    params: Optional[Params] = None,
) -> ByzantineOutcome:
    """Leader election with forging or equivocating Byzantine nodes."""
    if attack not in ("rank_forger", "equivocator"):
        raise ValueError(f"unknown election attack {attack!r}")
    params = params or Params(n=n, alpha=alpha)
    schedule = LeaderElectionSchedule.from_params(params)
    byzantine = _select_byzantine(n, byzantine_count, seed)
    attacker = RankForger if attack == "rank_forger" else Equivocator

    def factory(u: int):
        if u in byzantine:
            return attacker(u, params, schedule)
        return LeaderElectionProtocol(u, params, schedule)

    network = Network(n, factory, seed=seed, congest=CongestBudget(n))
    run = network.run(schedule.last_round)
    outcome = ByzantineOutcome(
        n=n,
        alpha=alpha,
        attack=attack,
        byzantine=byzantine,
        metrics=run.metrics,
        decisions={},
        inputs=[],
        honest_elected=[],
        byzantine_elected=[],
        beliefs={},
        forged_ranks=(
            {1}
            if attack == "rank_forger"
            else {2, params.rank_space - 1}
        ),
    )
    for u in range(n):
        protocol: LeaderElectionProtocol = run.protocol(u)  # type: ignore[assignment]
        if u in byzantine:
            if protocol.state is NodeState.ELECTED:
                outcome.byzantine_elected.append(u)
            continue
        if protocol.is_candidate:
            outcome.beliefs[u] = protocol.leader_rank
        if protocol.state is NodeState.ELECTED:
            outcome.honest_elected.append(u)
    return outcome
