"""Leader election on general graphs (paper, open problem 2).

The Section IV-A protocol needs the complete topology: a candidate can
*directly* sample referee ports among all ``n`` nodes.  On a general graph
the analogous primitive is a random walk of length ``~ t_mix`` — after
mixing, the walk's endpoint is (nearly) a uniform sample.  Gilbert,
Robinson and Sourav [43] turn this into implicit leader election with
``Õ(sqrt(n) * t_mix)`` messages on well-connected graphs.

This module implements that walk-based election in its simplified core:

1. every node draws a rank and becomes a candidate w.p. ``c log n / n``;
2. **announce** — each candidate releases ``2 (n log n)^(1/2)`` tokens
   carrying its rank; each token walks ``L ~ t_mix`` steps, and every
   visited node remembers the largest rank that ever walked through it;
3. **query** — each candidate releases the same number of fresh tokens;
   each walks ``L`` steps, reads the largest recorded rank at its
   endpoint, and walks home (``L`` more steps);
4. a candidate that saw only its own rank outputs ELECTED; by a birthday
   argument, two candidates' endpoint sets intersect w.h.p., so the
   maximum rank wins everywhere.

The walks are simulated directly on a ``networkx`` graph (one message per
walk step — the engine in :mod:`repro.sim` is specialised to the complete
anonymous topology, and shoehorning arbitrary graphs into it would model
neither model faithfully).  Fault-free, like [43].
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, List, Optional

import networkx as nx

from ..rng import RngFactory


@dataclass
class WalkLeaderElectionOutcome:
    """Outcome of one walk-based election on a general graph."""

    n: int
    graph_kind: str
    candidates: List[int]
    elected: List[int]
    messages: int
    rounds: int
    ranks: Dict[int, int]

    @property
    def success(self) -> bool:
        """Exactly one node output ELECTED."""
        return len(self.elected) == 1

    @property
    def winner_rank(self) -> Optional[int]:
        """Rank of the winner, if unique."""
        if not self.success:
            return None
        return self.ranks[self.elected[0]]


def build_graph(kind: str, n: int, rng: random.Random) -> nx.Graph:
    """Build a named test topology.

    ``complete``, ``regular`` (random 8-regular — an expander w.h.p.),
    ``torus`` (2-d grid with wraparound; large mixing time), ``ring``
    (worst-case mixing).
    """
    if kind == "complete":
        return nx.complete_graph(n)
    if kind == "regular":
        degree = min(8, n - 1)
        if (degree * n) % 2:
            degree -= 1
        return nx.random_regular_graph(degree, n, seed=rng.randint(0, 2**31))
    if kind == "torus":
        side = int(math.isqrt(n))
        graph = nx.grid_2d_graph(side, side, periodic=True)
        return nx.convert_node_labels_to_integers(graph)
    if kind == "ring":
        return nx.cycle_graph(n)
    raise ValueError(f"unknown graph kind {kind!r}")


def mixing_walk_length(kind: str, n: int, factor: float = 2.0) -> int:
    """Closed-form walk length ``~ t_mix`` per topology class.

    Expanders mix in ``O(log n)``; the torus in ``O(n)`` (side length
    squared); the ring needs ``Theta(n^2)`` and is only offered for tiny
    ``n``.  See :func:`estimate_mixing_time` for the spectral estimate
    computed from an actual graph.
    """
    if kind in ("complete", "regular"):
        return max(2, math.ceil(factor * math.log(n) ** 2))
    if kind == "torus":
        return max(2, math.ceil(factor * n))
    if kind == "ring":
        return max(2, math.ceil(factor * n * n / 4))
    raise ValueError(f"unknown graph kind {kind!r}")


def estimate_mixing_time(graph: nx.Graph, epsilon: float = 0.25) -> int:
    """Spectral estimate of the lazy-walk mixing time.

    For the lazy random walk, ``t_mix(eps) ~ log(n/eps) / gap`` where
    ``gap`` is the spectral gap of the lazy transition matrix — estimated
    here from the normalized Laplacian's second-smallest eigenvalue
    (``gap = lambda_2 / 2`` for the lazy walk).  Exact enough to *size*
    walks on unfamiliar topologies; the closed forms above are used for
    the named test graphs.
    """
    from ..optdeps import require_numpy

    np = require_numpy("estimate_mixing_time")

    n = graph.number_of_nodes()
    if n < 2:
        raise ValueError("need at least 2 nodes")
    if not nx.is_connected(graph):
        raise ValueError("mixing time undefined: graph is disconnected")
    laplacian = nx.normalized_laplacian_matrix(graph).todense()
    eigenvalues = np.sort(np.linalg.eigvalsh(laplacian))
    gap = float(eigenvalues[1]) / 2.0  # lazy walk halves the gap
    if gap <= 0:
        raise ValueError("zero spectral gap")
    return max(1, math.ceil(math.log(n / epsilon) / gap))


def _walk(graph: nx.Graph, start: int, length: int, rng: random.Random) -> int:
    """Lazy random walk of ``length`` steps; returns the endpoint."""
    node = start
    for _ in range(length):
        if rng.random() < 0.5:  # laziness removes periodicity
            continue
        neighbours = list(graph.neighbors(node))
        if not neighbours:
            return node
        node = rng.choice(neighbours)
    return node


def walk_based_leader_election(
    n: int,
    graph_kind: str = "regular",
    seed: int = 0,
    candidate_factor: float = 6.0,
    token_factor: float = 2.0,
    walk_factor: float = 2.0,
) -> WalkLeaderElectionOutcome:
    """Run the [43]-style walk-based implicit election.

    Messages are counted as one per walk step (each step traverses one
    edge); rounds as the two walk phases' lengths.
    """
    if n < 8:
        raise ValueError(f"need n >= 8, got {n}")
    rngs = RngFactory(seed)
    graph_rng = rngs.stream("graph")
    graph = build_graph(graph_kind, n, graph_rng)
    actual_n = graph.number_of_nodes()
    walk_length = mixing_walk_length(graph_kind, actual_n, walk_factor)

    node_rng = rngs.stream("nodes")
    candidate_probability = min(
        1.0, candidate_factor * math.log(actual_n) / actual_n
    )
    ranks = {u: node_rng.randint(1, actual_n**4) for u in graph.nodes}
    candidates = [
        u for u in graph.nodes if node_rng.random() < candidate_probability
    ]
    tokens = max(
        1, math.ceil(token_factor * math.sqrt(actual_n * math.log(actual_n)))
    )

    messages = 0
    recorded: Dict[int, int] = {}  # node -> max announced rank

    # Phase 1: announce.
    walk_rng = rngs.stream("walks")
    for candidate in candidates:
        for _ in range(tokens):
            endpoint = _walk(graph, candidate, walk_length, walk_rng)
            messages += walk_length
            if recorded.get(endpoint, 0) < ranks[candidate]:
                recorded[endpoint] = ranks[candidate]

    # Phase 2: query (walk out, read, walk home).
    elected: List[int] = []
    for candidate in candidates:
        best_seen = ranks[candidate]
        for _ in range(tokens):
            endpoint = _walk(graph, candidate, walk_length, walk_rng)
            messages += 2 * walk_length  # out + home
            best_seen = max(best_seen, recorded.get(endpoint, 0))
        if best_seen == ranks[candidate]:
            elected.append(candidate)

    return WalkLeaderElectionOutcome(
        n=actual_n,
        graph_kind=graph_kind,
        candidates=candidates,
        elected=elected,
        messages=messages,
        rounds=3 * walk_length,
        ranks=ranks,
    )
