"""Command-line interface: ``python -m repro <command>`` (or ``repro``).

Commands
--------

``run E9 [--quick]``
    Run one experiment (or ``all``) and print its measured table + checks.
``elect --n 512 --alpha 0.5 [--adversary random] [--seed 0]``
    One leader-election run, summary printed.
``agree --n 512 --alpha 0.5 [--inputs mixed] [--adversary random]``
    One agreement run, summary printed.
``params --n 1024 --alpha 0.25``
    Show the derived sampling parameters and bounds for a configuration.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .analysis.tables import format_table
from .core.runner import agree, elect_leader
from .experiments.registry import all_experiments, get_experiment
from .params import Params


def _cmd_run(args: argparse.Namespace) -> int:
    if args.experiment.lower() == "all":
        experiments = all_experiments()
    else:
        experiments = [get_experiment(args.experiment)]
    failed = 0
    reports = []
    for experiment in experiments:
        report = experiment.run(quick=args.quick)
        reports.append(report)
        print(report.render())
        print()
        failed += 0 if report.passed else 1
    if args.json:
        import json

        with open(args.json, "w") as handle:
            json.dump([r.to_dict() for r in reports], handle, indent=2, default=str)
        print(f"wrote {args.json}")
    return 1 if failed else 0


def _cmd_elect(args: argparse.Namespace) -> int:
    result = elect_leader(
        n=args.n, alpha=args.alpha, seed=args.seed, adversary=args.adversary
    )
    print(format_table([result.summary()], title="leader election"))
    return 0 if result.success else 1


def _cmd_agree(args: argparse.Namespace) -> int:
    result = agree(
        n=args.n,
        alpha=args.alpha,
        inputs=args.inputs,
        seed=args.seed,
        adversary=args.adversary,
    )
    print(format_table([result.summary()], title="agreement"))
    return 0 if result.success else 1


def _cmd_params(args: argparse.Namespace) -> int:
    params = Params(n=args.n, alpha=args.alpha)
    rows = [
        {"quantity": "candidate probability", "value": params.candidate_probability},
        {"quantity": "expected committee |C|", "value": params.expected_candidates},
        {"quantity": "referees per candidate", "value": params.referee_count},
        {"quantity": "iterations", "value": params.iterations},
        {"quantity": "max faulty", "value": params.max_faulty},
        {"quantity": "LE message bound (no const)", "value": params.le_message_bound()},
        {
            "quantity": "agreement message bound (no const)",
            "value": params.agreement_message_bound(),
        },
        {
            "quantity": "lower bound (no const)",
            "value": params.lower_bound_messages(),
        },
        {"quantity": "LE sublinear regime", "value": params.le_sublinear()},
        {"quantity": "agreement sublinear regime", "value": params.agreement_sublinear()},
    ]
    print(format_table(rows, title=f"parameters for n={args.n}, alpha={args.alpha}"))
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from .experiments.report import generate_report

    only = [e.upper() for e in args.only] if args.only else None
    markdown = generate_report(quick=args.quick, only=only)
    with open(args.output, "w") as handle:
        handle.write(markdown)
    print(f"wrote {args.output}")
    return 0 if "**FAIL**" not in markdown else 1


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Fault-tolerant leader election & agreement (Kumar-Molla) reproduction",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run an experiment (E1..E16 or 'all')")
    run.add_argument("experiment")
    run.add_argument("--quick", action="store_true", help="small sizes/trials")
    run.add_argument("--json", default=None, help="also write results as JSON")
    run.set_defaults(func=_cmd_run)

    elect = sub.add_parser("elect", help="one leader-election run")
    elect.add_argument("--n", type=int, default=512)
    elect.add_argument("--alpha", type=float, default=0.5)
    elect.add_argument("--seed", type=int, default=0)
    elect.add_argument("--adversary", default="random")
    elect.set_defaults(func=_cmd_elect)

    agree_cmd = sub.add_parser("agree", help="one agreement run")
    agree_cmd.add_argument("--n", type=int, default=512)
    agree_cmd.add_argument("--alpha", type=float, default=0.5)
    agree_cmd.add_argument("--seed", type=int, default=0)
    agree_cmd.add_argument("--inputs", default="mixed")
    agree_cmd.add_argument("--adversary", default="random")
    agree_cmd.set_defaults(func=_cmd_agree)

    params_cmd = sub.add_parser("params", help="show derived parameters")
    params_cmd.add_argument("--n", type=int, required=True)
    params_cmd.add_argument("--alpha", type=float, required=True)
    params_cmd.set_defaults(func=_cmd_params)

    report = sub.add_parser(
        "report", help="run all experiments and write EXPERIMENTS.md"
    )
    report.add_argument("--quick", action="store_true")
    report.add_argument("-o", "--output", default="EXPERIMENTS.md")
    report.add_argument(
        "--only", nargs="*", default=None, help="experiment ids to include"
    )
    report.set_defaults(func=_cmd_report)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
