"""Command-line interface: ``python -m repro <command>`` (or ``repro``).

Commands
--------

``run E9 [--quick] [--jobs N]``
    Run one experiment (or ``all``) and print its measured table + checks.
``sweep --task election --n 64,128 --alpha 0.5 --trials 5 [--jobs N]``
    Monte-Carlo a parameter grid (optionally over a process pool) and
    print per-point aggregates.  ``--task ben_or`` sweeps the
    delay-tolerant Ben-Or baseline (``--max-delay`` sets Δ).
``elect --n 512 --alpha 0.5 [--adversary random] [--seed 0]``
    One leader-election run, summary printed.
``agree --n 512 --alpha 0.5 [--inputs mixed] [--adversary random]``
    One agreement run, summary printed.
``params --n 1024 --alpha 0.25``
    Show the derived sampling parameters and bounds for a configuration.
``fuzz --seeds 50 [--protocol election] [--budget-seconds 30] [--jobs N]``
    Adversary fuzzing: random crash schedules checked against the safety
    oracles; failures are shrunk and written as replayable scripts.
    ``--byzantine MODES`` and ``--max-delay Δ`` enable the extended
    grammar (per-node Byzantine plans, bounded-delay delivery); oracle
    violations the sampled faults excuse are journalled as *findings*
    rather than campaign failures (``docs/FAULTS.md``).
``replay script.json [--protocol election] [--seed 0]``
    Re-run a recorded crash script deterministically.
``report campaign.jsonl``
    Render a campaign's provenance manifest, journal counts, supervision
    events, and merged metrics (without the positional argument,
    ``report`` keeps its classic behaviour: run all experiments and
    write EXPERIMENTS.md).
``journal fsck campaign.jsonl [--repair]``
    Verify a checkpoint journal's per-record checksums and sequence
    numbers; ``--repair`` quarantines corrupt lines into a ``.corrupt``
    sidecar and rewrites the journal atomically.
``lint [paths ...] [--format text|json|sarif]``
    Run the project's AST-based determinism & invariant linter
    (``docs/LINT.md``) over ``paths`` (default ``src``).  Exit 0 when
    clean, 1 on findings, 2 on configuration errors.
``serve --port 8750 [--cache-dir DIR] [--jobs N]``
    Start the campaign service (``docs/SERVE.md``): an HTTP/JSON queue
    that schedules submitted sweeps on the supervised pool, answers
    previously-computed trials from a persistent result cache, and
    streams sealed journal-v2 records over chunked JSONL.
``wire elect|agree|flood --n 8 [--script s.json] [--backend wire|loopback]``
    Run a protocol on the real-network backend (``docs/NET.md``): one OS
    process per node over localhost TCP, heartbeat failure detection,
    and CrashScript-driven SIGKILL fault injection with per-node
    journals.
``wire parity [--sizes 8 16 32] [--backend wire|loopback]``
    The sim-vs-wire parity oracle: for each grid cell the wire run's
    message accounting and outcome must equal the simulator's exactly.

``--jobs N`` fans trials out over N worker processes; ``--jobs 0``
auto-detects the core count.  Results are deterministic and identical
to ``--jobs 1`` for the same seed.  Parallel resilient campaigns run
supervised (see ``docs/RESILIENCE.md``): killed workers and hung pools
are rebuilt and their chunks redispatched, and Ctrl-C / SIGTERM stops at
a trial boundary with a resumable journal (exit code 130; rerun with
``--resume``).

Observability (see ``docs/OBSERVABILITY.md``): ``--progress`` adds a
stderr heartbeat to ``run``/``sweep``/``fuzz``; every ``sweep`` and
``fuzz`` campaign writes a provenance manifest (``--manifest`` overrides
the default path); ``sweep --profile`` records per-phase engine timings.
"""

from __future__ import annotations

import argparse
import json
import sys
import threading
from typing import List, Optional

from .analysis.tables import format_table
from .core.runner import agree, elect_leader
from .experiments.registry import all_experiments, get_experiment
from .params import Params


def _cmd_run(args: argparse.Namespace) -> int:
    if args.experiment.lower() == "all":
        experiments = all_experiments()
    else:
        experiments = [get_experiment(args.experiment)]
    resilient = (
        args.resume
        or args.journal is not None
        or args.trial_timeout is not None
        or args.retries > 0
        or args.jobs != 1
    )
    if resilient:
        from .experiments.harness import run_experiments_resilient
        from .obs import capture_manifest

        journal = args.journal or ".repro-run.journal.jsonl"
        manifest = capture_manifest(
            command="run",
            master_seed=None,
            config={
                "experiment": args.experiment,
                "quick": args.quick,
                "jobs": args.jobs,
                "retries": args.retries,
                "trial_timeout": args.trial_timeout,
                "resume": args.resume,
            },
            extra={"journal": journal},
        )
        manifest.write(f"{journal}.manifest.json")
        from .parallel import GracefulShutdown

        with GracefulShutdown() as shutdown:
            reports, counts = run_experiments_resilient(
                experiments,
                quick=args.quick,
                journal_path=journal,
                resume=args.resume,
                timeout_seconds=args.trial_timeout,
                retries=args.retries,
                jobs=args.jobs,
                progress=args.progress,
                manifest=manifest,
                shutdown=shutdown,
            )
        failed = 0
        for report in reports:
            print(report.render())
            print()
            failed += 0 if report.passed else 1
        print(
            f"experiments: {counts['attempted']} attempted,"
            f" {counts['completed']} completed, {counts['failed']} failed"
            f" (journal: {journal})"
        )
        _print_supervision(counts)
    else:
        failed = 0
        reports = []
        for experiment in experiments:
            report = experiment.run(quick=args.quick)
            reports.append(report)
            print(report.render())
            print()
            failed += 0 if report.passed else 1
    if args.json:
        with open(args.json, "w") as handle:
            json.dump([r.to_dict() for r in reports], handle, indent=2, default=str)
        print(f"wrote {args.json}")
    return 1 if failed else 0


def _print_supervision(counts: dict) -> None:
    """Print supervisor counters when the pool had to be rescued."""
    extra = {
        key: value
        for key, value in counts.items()
        if key not in ("attempted", "completed", "failed")
    }
    if extra:
        print(
            "supervision: "
            + ", ".join(f"{key}={value}" for key, value in sorted(extra.items()))
        )


def _cmd_fuzz(args: argparse.Namespace) -> int:
    from .chaos import FuzzScenario, fuzz
    from .obs import capture_manifest

    if args.protocol == "both":
        protocols = ("election", "agreement")
    elif args.protocol == "all":
        protocols = ("election", "agreement", "ben_or")
    else:
        protocols = (args.protocol,)
    scenarios = [
        FuzzScenario(protocol=protocol, n=args.n, alpha=args.alpha)
        for protocol in protocols
    ]
    byzantine_modes: tuple = ()
    if args.byzantine:
        from .faults.byzantine import BYZANTINE_MODES

        if args.byzantine == "all":
            byzantine_modes = BYZANTINE_MODES
        else:
            byzantine_modes = tuple(
                part.strip()
                for part in args.byzantine.split(",")
                if part.strip()
            )
    config = None
    if byzantine_modes or args.max_delay:
        from .chaos import GrammarConfig

        # Extended grammar: Byzantine plans and/or delay schedules ride on
        # the sampled scripts (modes are intersected per protocol family).
        config = GrammarConfig(
            byzantine_modes=byzantine_modes, max_delay=args.max_delay
        )
    manifest_path = args.manifest or (
        f"{args.journal}.manifest.json"
        if args.journal
        else "repro-fuzz.manifest.json"
    )
    manifest = capture_manifest(
        command="fuzz",
        master_seed=args.seed,
        config={
            "protocols": list(protocols),
            "n": args.n,
            "alpha": args.alpha,
            "seeds": args.seeds,
            "budget_seconds": args.budget_seconds,
            "shrink": not args.no_shrink,
            "jobs": args.jobs,
            "max_delay": args.max_delay,
            "byzantine": list(byzantine_modes),
        },
        extra={"journal": args.journal} if args.journal else None,
    )
    manifest.write(manifest_path)
    report = fuzz(
        scenarios,
        seeds=args.seeds,
        master_seed=args.seed,
        budget_seconds=args.budget_seconds,
        config=config,
        shrink_failures=not args.no_shrink,
        jobs=args.jobs,
        progress=args.progress,
        journal=args.journal,
        manifest=manifest,
    )
    print(
        f"fuzzed {report.attempted} case(s) across {len(scenarios)} scenario(s)"
        f" in {report.elapsed_seconds:.1f}s: {len(report.failures)} failure(s),"
        f" {len(report.findings)} fragile finding(s)"
    )
    for case in report.failures:
        print(f"  seed={case.seed} protocol={case.scenario.protocol}"
              f" signature={'/'.join(case.signature)}")
        for violation in case.violations:
            print(f"    {violation}")
    for case in report.findings:
        print(f"  [finding] seed={case.seed}"
              f" protocol={case.scenario.protocol}"
              f" signature={'/'.join(case.signature)}"
              f" script={case.script.name()}")
    recorded = report.failures + report.findings
    if args.out and recorded:
        with open(args.out, "w") as handle:
            json.dump([case.to_dict() for case in recorded], handle, indent=2)
        print(
            f"wrote {len(report.failures)} failing and "
            f"{len(report.findings)} finding case(s) to {args.out}"
        )
    return 1 if report.failures else 0


def _cmd_replay(args: argparse.Namespace) -> int:
    from .chaos import CrashScript, FuzzCase, FuzzScenario, run_scenario

    with open(args.script) as handle:
        data = json.load(handle)
    if isinstance(data, list):
        # Output of ``repro fuzz --out``: a list of failing cases.
        cases = [FuzzCase.from_dict(entry) for entry in data]
    elif "scenario" in data:
        cases = [FuzzCase.from_dict(data)]
    else:
        # A bare CrashScript: scenario parameters come from the flags.
        scenario = FuzzScenario(protocol=args.protocol, n=args.n, alpha=args.alpha)
        cases = [
            FuzzCase(
                scenario=scenario,
                seed=args.seed,
                script=CrashScript.from_dict(data),
            )
        ]
    exit_code = 0
    for case in cases:
        violations, _ = run_scenario(case.scenario, case.seed, case.script)
        status = "CLEAN" if not violations else "VIOLATION"
        print(
            f"[{status}] protocol={case.scenario.protocol} seed={case.seed}"
            f" script={case.script.label or '<unnamed>'}"
        )
        for violation in violations:
            print(f"  {violation}")
        exit_code = exit_code or (1 if violations else 0)
    return exit_code


def _parse_axis(text: str, cast) -> List:
    """Parse a comma-separated grid axis (``"64,128"`` → ``[64, 128]``)."""
    values = [cast(part.strip()) for part in text.split(",") if part.strip()]
    if not values:
        raise SystemExit(f"empty grid axis: {text!r}")
    return values


def _cmd_sweep(args: argparse.Namespace) -> int:
    import functools
    from statistics import mean

    from .analysis.sweeps import collect, sweep
    from .obs import capture_manifest
    from .parallel import agreement_trial, ben_or_trial, election_trial

    task = {
        "election": election_trial,
        "agreement": agreement_trial,
        "ben_or": ben_or_trial,
    }[args.task]
    if args.max_delay:
        if args.task != "ben_or":
            raise SystemExit(
                "--max-delay requires --task ben_or (the delay-tolerant "
                "protocol); election/agreement assume synchronous delivery"
            )
        task = functools.partial(task, max_delay=args.max_delay)
    if args.profile:
        # functools.partial of a module-level task stays picklable, so
        # profiled trials still fan out over the pool.
        task = functools.partial(task, profile=True)
    backend = args.backend if args.backend != "ref" else None
    if backend and args.task == "ben_or":
        raise SystemExit(
            "--backend vec supports the election/agreement tasks only "
            "(Ben-Or is not vectorized)"
        )
    if backend and args.profile:
        raise SystemExit(
            "--backend vec cannot be combined with --profile (phase "
            "timers require the reference engine)"
        )
    grid = {
        "n": _parse_axis(args.n, int),
        "alpha": _parse_axis(args.alpha, float),
        "adversary": _parse_axis(args.adversary, str),
    }
    resilient = (
        args.resume
        or args.journal is not None
        or args.trial_timeout is not None
        or args.retries > 0
    )
    journal = (
        (args.journal or ".repro-sweep.journal.jsonl") if resilient else None
    )
    manifest_path = args.manifest or (
        f"{args.out}.manifest.json" if args.out else "repro-sweep.manifest.json"
    )
    extra = {}
    if args.out:
        extra["out"] = args.out
    if journal:
        extra["journal"] = journal
    manifest = capture_manifest(
        command="sweep",
        master_seed=args.seed,
        config={
            "task": args.task,
            "grid": grid,
            "max_delay": args.max_delay,
            "trials": args.trials,
            "jobs": args.jobs,
            "profile": args.profile,
            "retries": args.retries,
            "trial_timeout": args.trial_timeout,
            "resume": args.resume,
            "backend": args.backend,
        },
        extra=extra or None,
    )
    manifest.write(manifest_path)
    sweep_counts = None
    if resilient:
        from .analysis.sweeps import resilient_sweep
        from .parallel import GracefulShutdown

        with GracefulShutdown() as shutdown:
            result = resilient_sweep(
                task,
                grid,
                trials=args.trials,
                master_seed=args.seed,
                journal_path=journal,
                resume=args.resume,
                timeout_seconds=args.trial_timeout,
                retries=args.retries,
                jobs=args.jobs,
                progress=args.progress,
                manifest=manifest,
                shutdown=shutdown,
                backend=backend,
            )
        rows = result.rows()
        sweep_counts = result.counts()
    else:
        rows = sweep(
            task,
            grid,
            trials=args.trials,
            master_seed=args.seed,
            jobs=args.jobs,
            progress=args.progress,
            backend=backend,
        )

    def reduce(results: List[dict]) -> dict:
        if not results:
            # Every trial of this point failed (resilient mode keeps the
            # row with its accounting instead of crashing the reduce).
            return {
                "trials": 0,
                "success_rate": 0.0,
                "mean_messages": 0,
                "max_messages": 0,
                "mean_rounds": 0,
            }
        row = {
            "trials": len(results),
            "success_rate": round(
                sum(1 for r in results if r["success"]) / len(results), 4
            ),
            "mean_messages": round(mean(r["messages"] for r in results), 1),
            "max_messages": max(r["messages"] for r in results),
            "mean_rounds": round(mean(r["rounds"] for r in results), 1),
        }
        if args.profile:
            totals: dict = {}
            for r in results:
                for phase, seconds in (r.get("phase_seconds") or {}).items():
                    totals[phase] = totals.get(phase, 0.0) + seconds
            row["phase_seconds"] = {
                phase: round(seconds, 4) for phase, seconds in sorted(totals.items())
            }
        return row

    aggregated = collect(rows, reduce)
    print(format_table(aggregated, title=f"{args.task} sweep (jobs={args.jobs})"))
    if sweep_counts is not None:
        print(
            f"trials: {sweep_counts['attempted']} attempted,"
            f" {sweep_counts['completed']} completed,"
            f" {sweep_counts['failed']} failed (journal: {journal})"
        )
        _print_supervision(sweep_counts)
    if args.out:
        with open(args.out, "w") as handle:
            json.dump(
                {
                    "task": args.task,
                    "grid": grid,
                    "trials": args.trials,
                    "master_seed": args.seed,
                    "points": [
                        {"point": point, "results": results}
                        for point, results in rows
                    ],
                },
                handle,
                indent=2,
            )
        print(f"wrote {args.out}")
    return 0 if all(row["success_rate"] == 1.0 for row in aggregated) else 1


def _cmd_elect(args: argparse.Namespace) -> int:
    result = elect_leader(
        n=args.n,
        alpha=args.alpha,
        seed=args.seed,
        adversary=args.adversary,
        backend=args.backend,
    )
    print(format_table([result.summary()], title="leader election"))
    return 0 if result.success else 1


def _cmd_agree(args: argparse.Namespace) -> int:
    result = agree(
        n=args.n,
        alpha=args.alpha,
        inputs=args.inputs,
        seed=args.seed,
        adversary=args.adversary,
        backend=args.backend,
    )
    print(format_table([result.summary()], title="agreement"))
    return 0 if result.success else 1


def _cmd_params(args: argparse.Namespace) -> int:
    params = Params(n=args.n, alpha=args.alpha)
    rows = [
        {"quantity": "candidate probability", "value": params.candidate_probability},
        {"quantity": "expected committee |C|", "value": params.expected_candidates},
        {"quantity": "referees per candidate", "value": params.referee_count},
        {"quantity": "iterations", "value": params.iterations},
        {"quantity": "max faulty", "value": params.max_faulty},
        {"quantity": "LE message bound (no const)", "value": params.le_message_bound()},
        {
            "quantity": "agreement message bound (no const)",
            "value": params.agreement_message_bound(),
        },
        {
            "quantity": "lower bound (no const)",
            "value": params.lower_bound_messages(),
        },
        {"quantity": "LE sublinear regime", "value": params.le_sublinear()},
        {"quantity": "agreement sublinear regime", "value": params.agreement_sublinear()},
    ]
    print(format_table(rows, title=f"parameters for n={args.n}, alpha={args.alpha}"))
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    if args.campaign is not None:
        from .obs import load_campaign, render_campaign_report

        try:
            campaign = load_campaign(args.campaign)
        except FileNotFoundError as exc:
            print(str(exc), file=sys.stderr)
            return 1
        sys.stdout.write(render_campaign_report(campaign))
        return 0

    from .experiments.report import generate_report

    only = [e.upper() for e in args.only] if args.only else None
    markdown = generate_report(quick=args.quick, only=only)
    with open(args.output, "w") as handle:
        handle.write(markdown)
    print(f"wrote {args.output}")
    return 0 if "**FAIL**" not in markdown else 1


def _cmd_journal_fsck(args: argparse.Namespace) -> int:
    from .exec import fsck_journal

    try:
        report = fsck_journal(args.path, repair=args.repair)
    except FileNotFoundError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    if args.output is not None:
        with open(args.output, "w") as handle:
            handle.write(json.dumps(report.as_dict(), indent=2) + "\n")
    if args.format == "json":
        print(json.dumps(report.as_dict(), indent=2))
    else:
        print(report.render())
    # After a repair the journal is clean by construction (corrupt lines
    # are quarantined into the sidecar); without one, findings exit 1.
    return 0 if report.clean or args.repair else 1


def _cmd_serve(args: argparse.Namespace) -> int:
    from .serve import CampaignServer, CampaignService

    service = CampaignService(
        cache_dir=args.cache_dir,
        max_cache_entries=args.max_cache_entries,
        allow_task_refs=args.allow_task_refs,
        default_jobs=args.jobs,
    )
    server = CampaignServer(service, host=args.host, port=args.port)
    server.start()
    print(
        f"repro serve: listening on http://{args.host}:{server.port} "
        f"(cache: {args.cache_dir}; POST /campaigns to submit)",
        flush=True,
    )
    try:
        # The HTTP loop and the campaign worker are both daemon threads;
        # the main thread just waits for Ctrl-C / SIGTERM.
        threading.Event().wait()
    except KeyboardInterrupt:
        print("repro serve: shutting down", file=sys.stderr)
    finally:
        server.stop()
        service.close()
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from pathlib import Path

    from .lint import (
        LintConfig,
        LintConfigError,
        find_config,
        lint_paths,
        load_config,
    )

    try:
        if args.config is not None:
            config_path = Path(args.config)
            if not config_path.is_file():
                raise LintConfigError(f"no such config file: {config_path}")
        else:
            start = Path(args.paths[0]) if args.paths else Path.cwd()
            config_path = find_config(start) or find_config(Path.cwd())
        if config_path is not None:
            config = load_config(config_path)
        else:
            # No .reprolint.toml anywhere above: lint with the built-in
            # defaults (rules needing project scope simply stay quiet).
            config = LintConfig(root=Path.cwd())
        paths = [Path(p) for p in args.paths] or [Path("src")]
        report = lint_paths(paths, config)
    except LintConfigError as exc:
        print(f"repro lint: {exc}", file=sys.stderr)
        return 2
    if args.output is not None:
        with open(args.output, "w") as handle:
            handle.write(report.render_json() + "\n")
    if args.sarif is not None:
        from .lint.sarif import render_sarif

        with open(args.sarif, "w") as handle:
            handle.write(render_sarif(report) + "\n")
    if args.format == "json":
        print(report.render_json())
    elif args.format == "sarif":
        from .lint.sarif import render_sarif

        print(render_sarif(report))
    else:
        print(report.render_text())
    return report.exit_code


def _wire_spec_from_args(args: argparse.Namespace, protocol: str):
    from .chaos import CrashScript
    from .net import WireSpec

    script = None
    if getattr(args, "script", None):
        with open(args.script) as handle:
            script = CrashScript.from_dict(json.load(handle))
    kwargs = {
        "protocol": protocol,
        "n": args.n,
        "alpha": args.alpha,
        "seed": args.seed,
        "script": script,
        "heartbeat_interval": args.heartbeat_interval,
        "suspicion_threshold": args.suspicion_threshold,
        "round_timeout": args.round_timeout,
        "trial_timeout": args.trial_timeout,
    }
    if protocol != "election":
        kwargs["inputs"] = args.inputs
    if protocol == "flooding" and args.faulty_count is not None:
        kwargs["faulty_count"] = args.faulty_count
    return WireSpec(**kwargs)


def _cmd_wire_run(args: argparse.Namespace) -> int:
    from .net.driver import run_loopback_trial, run_wire_trial

    protocol = {"elect": "election", "agree": "agreement", "flood": "flooding"}[
        args.wire_command
    ]
    spec = _wire_spec_from_args(args, protocol)
    if args.backend == "loopback":
        result = run_loopback_trial(spec)
    else:
        result = run_wire_trial(spec, journal_dir=args.journal_dir)
    if not result.ok:
        print(f"wire trial FAILED: {result.reason}", file=sys.stderr)
        if result.journal_dir:
            print(f"journals: {result.journal_dir}", file=sys.stderr)
        return 2
    assert result.metrics is not None and result.outcome is not None
    summary = dict(result.metrics.summary())
    summary["backend"] = result.backend
    summary["success"] = result.outcome["success"]
    print(format_table([summary], title=f"wire {protocol} (n={spec.n})"))
    if result.journal_dir:
        print(f"journals: {result.journal_dir}")
    return 0 if result.outcome["success"] else 1


def _cmd_wire_parity(args: argparse.Namespace) -> int:
    from .net.parity import parity_grid

    overrides = {
        "heartbeat_interval": args.heartbeat_interval,
        "suspicion_threshold": args.suspicion_threshold,
        "round_timeout": args.round_timeout,
        "trial_timeout": args.trial_timeout,
    }
    reports = parity_grid(
        protocols=args.protocols,
        sizes=args.sizes,
        modes=args.modes,
        seed=args.seed,
        backend=args.backend,
        journal_dir=args.journal_dir,
        **overrides,
    )
    rows = []
    for report in reports:
        rows.append(
            {
                "protocol": report.spec.protocol,
                "n": report.spec.n,
                "mode": "scripted" if report.spec.script else "fault-free",
                "backend": report.backend,
                "parity": "OK" if report.ok else "MISMATCH",
                "messages": (
                    report.wire_metrics["messages_sent"]
                    if report.wire_metrics
                    else "-"
                ),
            }
        )
    print(format_table(rows, title="sim-vs-wire parity"))
    failed = [report for report in reports if not report.ok]
    for report in failed:
        where = (
            f"{report.spec.protocol} n={report.spec.n} "
            f"{'scripted' if report.spec.script else 'fault-free'}"
        )
        for diff in report.diffs:
            print(f"  {where}: {diff}", file=sys.stderr)
        if report.trial.journal_dir:
            print(f"  {where}: journals {report.trial.journal_dir}", file=sys.stderr)
    if args.out:
        with open(args.out, "w") as handle:
            json.dump([report.to_dict() for report in reports], handle, indent=2)
        print(f"wrote {args.out}")
    print(f"parity: {len(reports) - len(failed)}/{len(reports)} cells match")
    return 0 if not failed else 1


def _add_wire_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--heartbeat-interval",
        type=float,
        default=0.1,
        help="seconds between node heartbeats to the coordinator",
    )
    parser.add_argument(
        "--suspicion-threshold",
        type=int,
        default=30,
        help="missed-beat multiplier before a silent node is suspected "
        "(detection bound = interval * threshold)",
    )
    parser.add_argument(
        "--round-timeout",
        type=float,
        default=30.0,
        help="per-barrier deadline (frames / reports)",
    )
    parser.add_argument(
        "--trial-timeout",
        type=float,
        default=180.0,
        help="whole-trial wall-clock deadline",
    )
    parser.add_argument(
        "--journal-dir",
        default=None,
        help="directory for per-node + coordinator journals "
        "(default: a fresh temp dir)",
    )


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Fault-tolerant leader election & agreement (Kumar-Molla) reproduction",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run an experiment (E1..E16 or 'all')")
    run.add_argument("experiment")
    run.add_argument("--quick", action="store_true", help="small sizes/trials")
    run.add_argument("--json", default=None, help="also write results as JSON")
    run.add_argument(
        "--resume",
        action="store_true",
        help="skip experiments already completed in the checkpoint journal",
    )
    run.add_argument(
        "--journal",
        default=None,
        help="checkpoint journal path (default .repro-run.journal.jsonl when "
        "resilient flags are used)",
    )
    run.add_argument(
        "--trial-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-experiment wall-clock budget",
    )
    run.add_argument(
        "--retries",
        type=int,
        default=0,
        help="retries per experiment with derived seeds and backoff",
    )
    run.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for the batch (0 = auto-detect cores)",
    )
    run.add_argument(
        "--progress",
        action="store_true",
        help="stderr heartbeat (experiments done, throughput, retries)",
    )
    run.set_defaults(func=_cmd_run)

    sweep_cmd = sub.add_parser(
        "sweep", help="Monte-Carlo a parameter grid (optionally in parallel)"
    )
    sweep_cmd.add_argument(
        "--task",
        choices=("election", "agreement", "ben_or"),
        default="election",
    )
    sweep_cmd.add_argument(
        "--n", default="64,128", help="comma-separated n axis (e.g. 64,128,256)"
    )
    sweep_cmd.add_argument(
        "--alpha", default="0.5", help="comma-separated alpha axis (e.g. 0.5,0.75)"
    )
    sweep_cmd.add_argument(
        "--adversary", default="random", help="comma-separated adversary names"
    )
    sweep_cmd.add_argument("--trials", type=int, default=5, help="trials per point")
    sweep_cmd.add_argument(
        "--max-delay",
        type=int,
        default=0,
        help="delivery-delay bound Δ (ben_or task only; 0 = synchronous)",
    )
    sweep_cmd.add_argument("--seed", type=int, default=0, help="master seed")
    sweep_cmd.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes (0 = auto-detect cores; output identical to 1)",
    )
    sweep_cmd.add_argument(
        "--out", default=None, help="also write full per-trial results as JSON"
    )
    sweep_cmd.add_argument(
        "--progress",
        action="store_true",
        help="stderr heartbeat (trials done, throughput, ETA)",
    )
    sweep_cmd.add_argument(
        "--profile",
        action="store_true",
        help="record per-phase engine timings in every trial summary",
    )
    sweep_cmd.add_argument(
        "--manifest",
        default=None,
        help="provenance manifest path (default <out>.manifest.json or "
        "repro-sweep.manifest.json)",
    )
    sweep_cmd.add_argument(
        "--journal",
        default=None,
        help="checkpoint journal path; enables the resilient, supervised "
        "sweep (default .repro-sweep.journal.jsonl when resilient flags "
        "are used)",
    )
    sweep_cmd.add_argument(
        "--resume",
        action="store_true",
        help="skip trials already completed in the checkpoint journal "
        "(continue an interrupted sweep)",
    )
    sweep_cmd.add_argument(
        "--trial-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-trial wall-clock budget (also arms hung-pool deadlines)",
    )
    sweep_cmd.add_argument(
        "--retries",
        type=int,
        default=0,
        help="retries per trial with derived seeds and backoff",
    )
    sweep_cmd.add_argument(
        "--backend",
        choices=("ref", "vec"),
        default="ref",
        help="engine backend for every trial (vec: numpy vectorized "
        "engine, identical results; election/agreement tasks only)",
    )
    sweep_cmd.set_defaults(func=_cmd_sweep)

    fuzz_cmd = sub.add_parser(
        "fuzz", help="fuzz random crash schedules against the safety oracles"
    )
    fuzz_cmd.add_argument("--n", type=int, default=64)
    fuzz_cmd.add_argument("--alpha", type=float, default=0.5)
    fuzz_cmd.add_argument("--seeds", type=int, default=50, help="trials per protocol")
    fuzz_cmd.add_argument("--seed", type=int, default=0, help="master seed")
    fuzz_cmd.add_argument(
        "--protocol",
        choices=("election", "agreement", "ben_or", "both", "all"),
        default="both",
        help="protocol(s) to fuzz ('both' = the paper pair, 'all' adds "
        "the delay-tolerant ben_or baseline)",
    )
    fuzz_cmd.add_argument(
        "--max-delay",
        type=int,
        default=0,
        help="extended grammar: sample delivery-delay schedules up to Δ",
    )
    fuzz_cmd.add_argument(
        "--byzantine",
        default=None,
        metavar="MODES",
        help="extended grammar: comma-separated Byzantine modes to sample "
        "(or 'all'); violations they excuse are journalled findings",
    )
    fuzz_cmd.add_argument(
        "--budget-seconds",
        type=float,
        default=None,
        help="run until this time budget instead of a fixed seed count",
    )
    fuzz_cmd.add_argument(
        "--out", default=None, help="write failing cases (JSON) to this path"
    )
    fuzz_cmd.add_argument(
        "--no-shrink",
        action="store_true",
        help="keep failing schedules as sampled (skip minimisation)",
    )
    fuzz_cmd.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes sharding the seed stream (0 = auto-detect)",
    )
    fuzz_cmd.add_argument(
        "--progress",
        action="store_true",
        help="stderr heartbeat (trials done, failures, throughput)",
    )
    fuzz_cmd.add_argument(
        "--journal",
        default=None,
        help="write one JSONL record per fuzz trial (feeds 'repro report')",
    )
    fuzz_cmd.add_argument(
        "--manifest",
        default=None,
        help="provenance manifest path (default <journal>.manifest.json or "
        "repro-fuzz.manifest.json)",
    )
    fuzz_cmd.set_defaults(func=_cmd_fuzz)

    replay = sub.add_parser(
        "replay", help="deterministically re-run a recorded crash script"
    )
    replay.add_argument("script", help="FuzzCase JSON, fuzz --out list, or bare script")
    replay.add_argument(
        "--protocol",
        choices=("election", "agreement", "ben_or"),
        default="election",
        help="protocol for bare scripts (full cases carry their own scenario)",
    )
    replay.add_argument("--n", type=int, default=64, help="n for bare scripts")
    replay.add_argument("--alpha", type=float, default=0.5, help="alpha for bare scripts")
    replay.add_argument("--seed", type=int, default=0, help="seed for bare scripts")
    replay.set_defaults(func=_cmd_replay)

    elect = sub.add_parser("elect", help="one leader-election run")
    elect.add_argument("--n", type=int, default=512)
    elect.add_argument("--alpha", type=float, default=0.5)
    elect.add_argument("--seed", type=int, default=0)
    elect.add_argument("--adversary", default="random")
    elect.add_argument(
        "--backend",
        choices=("ref", "vec"),
        default="ref",
        help="engine backend: reference per-node engine, or the numpy "
        "vectorized engine (identical results; needs repro[perf])",
    )
    elect.set_defaults(func=_cmd_elect)

    agree_cmd = sub.add_parser("agree", help="one agreement run")
    agree_cmd.add_argument("--n", type=int, default=512)
    agree_cmd.add_argument("--alpha", type=float, default=0.5)
    agree_cmd.add_argument("--seed", type=int, default=0)
    agree_cmd.add_argument("--inputs", default="mixed")
    agree_cmd.add_argument("--adversary", default="random")
    agree_cmd.add_argument(
        "--backend",
        choices=("ref", "vec"),
        default="ref",
        help="engine backend: reference per-node engine, or the numpy "
        "vectorized engine (identical results; needs repro[perf])",
    )
    agree_cmd.set_defaults(func=_cmd_agree)

    params_cmd = sub.add_parser("params", help="show derived parameters")
    params_cmd.add_argument("--n", type=int, required=True)
    params_cmd.add_argument("--alpha", type=float, required=True)
    params_cmd.set_defaults(func=_cmd_params)

    report = sub.add_parser(
        "report",
        help="render a campaign (journal/manifest path) or, with no "
        "argument, run all experiments and write EXPERIMENTS.md",
    )
    report.add_argument(
        "campaign",
        nargs="?",
        default=None,
        help="campaign journal (.jsonl) or manifest (.json) to render",
    )
    report.add_argument("--quick", action="store_true")
    report.add_argument("-o", "--output", default="EXPERIMENTS.md")
    report.add_argument(
        "--only", nargs="*", default=None, help="experiment ids to include"
    )
    report.set_defaults(func=_cmd_report)

    journal_cmd = sub.add_parser(
        "journal", help="checkpoint-journal maintenance (docs/RESILIENCE.md)"
    )
    journal_sub = journal_cmd.add_subparsers(dest="journal_command", required=True)
    fsck = journal_sub.add_parser(
        "fsck",
        help="verify per-record checksums/sequence numbers, optionally "
        "quarantine corrupt lines",
    )
    fsck.add_argument("path", help="journal (.jsonl) to check")
    fsck.add_argument(
        "--repair",
        action="store_true",
        help="move corrupt lines to <journal>.corrupt and rewrite the "
        "journal atomically",
    )
    fsck.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format on stdout",
    )
    fsck.add_argument(
        "--output",
        default=None,
        help="also write the JSON report to this path (for CI artifacts)",
    )
    fsck.set_defaults(func=_cmd_journal_fsck)

    lint = sub.add_parser(
        "lint",
        help="AST-based determinism & invariant linter (docs/LINT.md)",
    )
    lint.add_argument(
        "paths",
        nargs="*",
        default=[],
        help="files or directories to lint (default: src)",
    )
    lint.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="report format on stdout",
    )
    lint.add_argument(
        "--config",
        default=None,
        help="path to .reprolint.toml (default: nearest one above the "
        "first lint path)",
    )
    lint.add_argument(
        "--output",
        default=None,
        help="also write the JSON report to this path (for CI artifacts)",
    )
    lint.add_argument(
        "--sarif",
        default=None,
        metavar="PATH",
        help="also write a SARIF 2.1.0 report to this path "
        "(for CI code-scanning upload)",
    )
    lint.set_defaults(func=_cmd_lint)

    serve_cmd = sub.add_parser(
        "serve",
        help="campaign service: HTTP queue + result cache + streaming "
        "(docs/SERVE.md)",
    )
    serve_cmd.add_argument(
        "--host",
        default="127.0.0.1",
        help="interface to bind (default: loopback only)",
    )
    serve_cmd.add_argument(
        "--port",
        type=int,
        default=8750,
        help="TCP port to listen on (0 picks a free port)",
    )
    serve_cmd.add_argument(
        "--cache-dir",
        default=".repro-cache",
        help="directory of the persistent trial-result cache",
    )
    serve_cmd.add_argument(
        "--max-cache-entries",
        type=int,
        default=None,
        help="LRU-evict cache entries beyond this count (default: unbounded)",
    )
    serve_cmd.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="default pool width for campaigns that do not specify one "
        "(0 = all cores)",
    )
    serve_cmd.add_argument(
        "--allow-task-refs",
        action="store_true",
        help="accept arbitrary 'module:qualname' task references instead "
        "of only registered task names (runs submitted code; trusted "
        "clients only)",
    )
    serve_cmd.set_defaults(func=_cmd_serve)

    wire_cmd = sub.add_parser(
        "wire",
        help="real-network backend: protocols over localhost TCP with "
        "SIGKILL fault injection (docs/NET.md)",
    )
    wire_sub = wire_cmd.add_subparsers(dest="wire_command", required=True)
    for name, help_text in (
        ("elect", "leader election over TCP node processes"),
        ("agree", "agreement over TCP node processes"),
        ("flood", "flooding baseline over TCP node processes"),
    ):
        wire_run = wire_sub.add_parser(name, help=help_text)
        wire_run.add_argument("--n", type=int, default=8)
        wire_run.add_argument("--alpha", type=float, default=0.75)
        if name != "elect":
            wire_run.add_argument("--inputs", default="mixed")
        if name == "flood":
            wire_run.add_argument(
                "--faulty-count",
                type=int,
                default=None,
                help="fault budget f (rounds = f + 1); default: the "
                "script's faulty set size",
            )
        wire_run.add_argument(
            "--script",
            default=None,
            help="CrashScript JSON file: scripted SIGKILLs with partial "
            "final-round delivery",
        )
        wire_run.add_argument(
            "--backend",
            choices=("wire", "loopback"),
            default="wire",
            help="wire = real node processes over TCP; loopback = the "
            "in-process twin (same accounting, no sockets)",
        )
        _add_wire_common(wire_run)
        wire_run.set_defaults(func=_cmd_wire_run)

    wire_parity = wire_sub.add_parser(
        "parity",
        help="sim-vs-wire parity oracle: identical message counts and "
        "outcomes for the same (spec, seed, script)",
    )
    wire_parity.add_argument(
        "--protocols",
        nargs="+",
        default=["election", "agreement", "flooding"],
        choices=("election", "agreement", "flooding"),
    )
    wire_parity.add_argument("--sizes", nargs="+", type=int, default=[8, 16, 32])
    wire_parity.add_argument(
        "--modes",
        nargs="+",
        default=["fault-free", "scripted"],
        choices=("fault-free", "scripted"),
    )
    wire_parity.add_argument(
        "--backend",
        choices=("wire", "loopback"),
        default="wire",
        help="wire = real node processes; loopback = in-process twin",
    )
    wire_parity.add_argument(
        "--out", default=None, help="write the full parity reports as JSON"
    )
    _add_wire_common(wire_parity)
    wire_parity.set_defaults(func=_cmd_wire_parity)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    from .errors import CampaignInterrupted

    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except CampaignInterrupted as exc:
        print(f"repro: {exc}", file=sys.stderr)
        # Conventional "terminated by signal" exit status; scripts (and
        # the chaos harness) key resumability off it.
        return 130


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
