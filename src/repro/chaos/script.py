"""Deterministic, replayable crash schedules.

A :class:`CrashScript` is the chaos layer's exchange format: an explicit
``{node: (round, filter)}`` map that *is* an
:class:`~repro.faults.adversary.Adversary` — handing it to the engine
replays exactly the recorded schedule, independent of any random stream.
Scripts round-trip through JSON, which makes failing fuzzer schedules
storable, shareable, and shrinkable (see :mod:`repro.chaos.shrink`).

Determinism is the whole point: every :class:`DeliveryFilter` decides
``keep(envelope)`` from the envelope's endpoints alone (the probabilistic
``keep_fraction`` filter hashes a recorded salt with the edge instead of
drawing from an RNG), so the same script against the same seeded network
produces the same execution, bit for bit.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Sequence, Set, Tuple, Union

from ..errors import ConfigurationError
from ..faults.adversary import Adversary, CrashOrder, RoundView
from ..rng import derive_seed
from ..sim.message import Envelope
from ..types import NodeId, Round

#: Filter kinds, mirroring the named :class:`CrashOrder` constructors.
FILTER_KINDS = ("drop_all", "keep_all", "keep_fraction", "keep_destinations")

#: Resolution of the deterministic keep_fraction coin.
_FRACTION_BUCKETS = 1 << 20


@dataclass(frozen=True)
class DeliveryFilter:
    """A deterministic per-envelope keep/lose decision for a crash round.

    ``kind`` selects the rule; ``fraction``/``salt`` parameterise
    ``keep_fraction`` and ``destinations`` parameterises
    ``keep_destinations``.  Unlike :meth:`CrashOrder.keep_fraction`, the
    fractional filter derives its coin from ``(salt, src, dst)`` — no RNG
    state, so replays and shrinks see identical drops.
    """

    kind: str
    fraction: float = 0.0
    salt: int = 0
    destinations: Tuple[NodeId, ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in FILTER_KINDS:
            raise ConfigurationError(
                f"unknown filter kind {self.kind!r}; choose from {FILTER_KINDS}"
            )
        if self.kind == "keep_fraction" and not 0.0 <= self.fraction <= 1.0:
            raise ConfigurationError(
                f"fraction must be in [0,1], got {self.fraction}"
            )

    def keep(self, envelope: Envelope) -> bool:
        """Whether the crashing sender's ``envelope`` is still delivered."""
        if self.kind == "drop_all":
            return False
        if self.kind == "keep_all":
            return True
        if self.kind == "keep_destinations":
            return envelope.dst in self.destinations
        coin = derive_seed(self.salt, envelope.src, envelope.dst)
        return (coin % _FRACTION_BUCKETS) < self.fraction * _FRACTION_BUCKETS

    def to_order(self) -> CrashOrder:
        """The engine-facing :class:`CrashOrder` applying this filter."""
        return CrashOrder(keep=self.keep)

    @property
    def severity(self) -> int:
        """How destructive the filter is (used to order shrink steps).

        ``keep_all`` (0) < partial delivery (1) < ``drop_all`` (2).
        """
        if self.kind == "keep_all":
            return 0
        if self.kind == "drop_all":
            return 2
        return 1

    # -- JSON ------------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe form (only the fields the kind uses)."""
        data: Dict[str, object] = {"kind": self.kind}
        if self.kind == "keep_fraction":
            data["fraction"] = self.fraction
            data["salt"] = self.salt
        elif self.kind == "keep_destinations":
            data["destinations"] = sorted(self.destinations)
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "DeliveryFilter":
        """Inverse of :meth:`to_dict`."""
        return cls(
            kind=str(data["kind"]),
            fraction=float(data.get("fraction", 0.0)),  # type: ignore[arg-type]
            salt=int(data.get("salt", 0)),  # type: ignore[arg-type]
            destinations=tuple(data.get("destinations", ())),  # type: ignore[arg-type]
        )


@dataclass(frozen=True)
class CrashScript(Adversary):
    """An explicit crash schedule, usable directly as an adversary.

    ``faulty`` is the static faulty set; ``crashes`` maps a node to the
    round it crashes in and the delivery filter applied to its final-round
    messages.  Faulty nodes without an entry never crash (the
    "faulty-but-well-behaved" case of Definition 1's footnote).

    The script does **not** restrict ``crashes`` to ``faulty``: a
    malformed script (crashing a non-faulty node) is deliberately
    expressible so the engine's fault-discipline check can catch it — the
    chaos tests use exactly that to prove the oracles have teeth.
    """

    faulty: Tuple[NodeId, ...] = ()
    crashes: Mapping[NodeId, Tuple[Round, DeliveryFilter]] = field(
        default_factory=dict
    )
    #: Optional provenance label (e.g. the fuzzer seed that generated it).
    label: str = ""

    # -- Adversary interface --------------------------------------------

    def select_faulty(
        self,
        n: int,
        max_faulty: int,
        rng: random.Random,
        inputs: Optional[Sequence[int]] = None,
    ) -> Set[NodeId]:
        return set(self.faulty)

    def plan_round(
        self, view: RoundView, rng: random.Random
    ) -> Dict[NodeId, CrashOrder]:
        orders: Dict[NodeId, CrashOrder] = {}
        for node, (round_, filter_) in self.crashes.items():
            if round_ == view.round and node not in view.crashed:
                orders[node] = filter_.to_order()
        return orders

    def done(self, view: RoundView) -> bool:
        return not any(
            round_ >= view.round and node not in view.crashed
            for node, (round_, _) in self.crashes.items()
        )

    def name(self) -> str:
        return self.label or f"script/{len(self.crashes)}crashes"

    # -- derived facts ---------------------------------------------------

    @property
    def last_crash_round(self) -> Round:
        """The latest scheduled crash round (0 when nothing crashes)."""
        return max((r for r, _ in self.crashes.values()), default=0)

    def size(self) -> Tuple[int, int, int]:
        """A lexicographic "how big is this schedule" measure.

        Shrinking strictly decreases it: (number of faulty nodes, number
        of crashes, total filter severity).
        """
        severity = sum(f.severity for _, f in self.crashes.values())
        return (len(self.faulty), len(self.crashes), severity)

    # -- JSON ------------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe form; inverse of :meth:`from_dict`."""
        return {
            "faulty": sorted(self.faulty),
            "crashes": {
                str(node): {"round": round_, "filter": filter_.to_dict()}
                for node, (round_, filter_) in sorted(self.crashes.items())
            },
            "label": self.label,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "CrashScript":
        """Inverse of :meth:`to_dict`."""
        crashes: Dict[NodeId, Tuple[Round, DeliveryFilter]] = {}
        for node, entry in dict(data.get("crashes", {})).items():  # type: ignore[arg-type]
            crashes[int(node)] = (
                int(entry["round"]),
                DeliveryFilter.from_dict(entry["filter"]),
            )
        return cls(
            faulty=tuple(sorted(int(u) for u in data.get("faulty", ()))),  # type: ignore[union-attr]
            crashes=crashes,
            label=str(data.get("label", "")),
        )

    def to_json(self, indent: Optional[int] = None) -> str:
        """Serialise to a JSON string."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "CrashScript":
        """Parse a script previously written by :meth:`to_json`."""
        return cls.from_dict(json.loads(text))

    # -- structural edits (used by the shrinker) -------------------------

    def without_crash(self, node: NodeId) -> "CrashScript":
        """Copy with ``node``'s crash removed (it stays faulty)."""
        crashes = {u: plan for u, plan in self.crashes.items() if u != node}
        return CrashScript(faulty=self.faulty, crashes=crashes, label=self.label)

    def without_faulty(self, node: NodeId) -> "CrashScript":
        """Copy with ``node`` removed from the faulty set and the plan."""
        faulty = tuple(u for u in self.faulty if u != node)
        crashes = {u: plan for u, plan in self.crashes.items() if u != node}
        return CrashScript(faulty=faulty, crashes=crashes, label=self.label)

    def with_filter(self, node: NodeId, filter_: DeliveryFilter) -> "CrashScript":
        """Copy with ``node``'s delivery filter replaced."""
        crashes = dict(self.crashes)
        round_, _ = crashes[node]
        crashes[node] = (round_, filter_)
        return CrashScript(faulty=self.faulty, crashes=crashes, label=self.label)

    def with_round(self, node: NodeId, round_: Round) -> "CrashScript":
        """Copy with ``node``'s crash moved to ``round_``."""
        crashes = dict(self.crashes)
        _, filter_ = crashes[node]
        crashes[node] = (round_, filter_)
        return CrashScript(faulty=self.faulty, crashes=crashes, label=self.label)


ScriptLike = Union[CrashScript, Mapping[str, object]]


def as_script(value: ScriptLike) -> CrashScript:
    """Coerce a script or its JSON dict form to a :class:`CrashScript`."""
    if isinstance(value, CrashScript):
        return value
    return CrashScript.from_dict(value)
