"""Deterministic, replayable fault schedules.

A :class:`CrashScript` is the chaos layer's exchange format: an explicit
``{node: (round, filter)}`` crash map that *is* an
:class:`~repro.faults.adversary.Adversary` — handing it to the engine
replays exactly the recorded schedule, independent of any random stream.
Scripts round-trip through JSON, which makes failing fuzzer schedules
storable, shareable, and shrinkable (see :mod:`repro.chaos.shrink`).

Version 2 of the wire format widens the script beyond crashes to the full
fault surface of the simulator:

* ``byzantine`` — a :class:`~repro.faults.byzantine.ByzantinePlan`
  assigning per-node misbehaviour modes (forging, equivocation, selective
  omission);
* ``delivery`` — a :class:`~repro.sim.delivery.DeliverySchedule` bounding
  per-message delay (partial synchrony).

Both default to "absent" (crash-only, synchronous), so every version-1
script loads unchanged.  Loading validates the schema and raises
:class:`~repro.errors.ScriptError` naming the offending entry — a
hand-edited or future-version script fails with context, never with a
bare ``KeyError``.

Determinism is the whole point: every :class:`DeliveryFilter` decides
``keep(envelope)`` from the envelope's endpoints alone (the probabilistic
``keep_fraction`` filter hashes a recorded salt with the edge instead of
drawing from an RNG), delivery delays hash a recorded salt with the
message coordinates, and omission coins do the same — so the same script
against the same seeded network produces the same execution, bit for bit.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field, replace
from typing import Dict, Mapping, Optional, Sequence, Set, Tuple, Union

from ..errors import ConfigurationError, ScriptError
from ..faults.adversary import Adversary, CrashOrder, RoundView
from ..faults.byzantine import ByzantineAdversary, ByzantinePlan
from ..rng import derive_seed
from ..sim.delivery import SYNCHRONOUS, DeliverySchedule, schedule_from_dict
from ..sim.message import Envelope
from ..types import NodeId, Round

#: Filter kinds, mirroring the named :class:`CrashOrder` constructors.
FILTER_KINDS = ("drop_all", "keep_all", "keep_fraction", "keep_destinations")

#: Resolution of the deterministic keep_fraction coin.
_FRACTION_BUCKETS = 1 << 20

#: Wire-format version written by :meth:`CrashScript.to_dict`.
SCRIPT_VERSION = 2

#: Versions :meth:`CrashScript.from_dict` accepts (v1 = crash-only).
SUPPORTED_SCRIPT_VERSIONS = (1, 2)


@dataclass(frozen=True)
class DeliveryFilter:
    """A deterministic per-envelope keep/lose decision for a crash round.

    ``kind`` selects the rule; ``fraction``/``salt`` parameterise
    ``keep_fraction`` and ``destinations`` parameterises
    ``keep_destinations``.  Unlike :meth:`CrashOrder.keep_fraction`, the
    fractional filter derives its coin from ``(salt, src, dst)`` — no RNG
    state, so replays and shrinks see identical drops.
    """

    kind: str
    fraction: float = 0.0
    salt: int = 0
    destinations: Tuple[NodeId, ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in FILTER_KINDS:
            raise ConfigurationError(
                f"unknown filter kind {self.kind!r}; choose from {FILTER_KINDS}"
            )
        if self.kind == "keep_fraction" and not 0.0 <= self.fraction <= 1.0:
            raise ConfigurationError(
                f"fraction must be in [0,1], got {self.fraction}"
            )

    def keep(self, envelope: Envelope) -> bool:
        """Whether the crashing sender's ``envelope`` is still delivered."""
        if self.kind == "drop_all":
            return False
        if self.kind == "keep_all":
            return True
        if self.kind == "keep_destinations":
            return envelope.dst in self.destinations
        coin = derive_seed(self.salt, envelope.src, envelope.dst)
        return (coin % _FRACTION_BUCKETS) < self.fraction * _FRACTION_BUCKETS

    def to_order(self) -> CrashOrder:
        """The engine-facing :class:`CrashOrder` applying this filter."""
        return CrashOrder(keep=self.keep)

    @property
    def severity(self) -> int:
        """How destructive the filter is (used to order shrink steps).

        ``keep_all`` (0) < partial delivery (1) < ``drop_all`` (2).
        """
        if self.kind == "keep_all":
            return 0
        if self.kind == "drop_all":
            return 2
        return 1

    # -- JSON ------------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe form (only the fields the kind uses)."""
        data: Dict[str, object] = {"kind": self.kind}
        if self.kind == "keep_fraction":
            data["fraction"] = self.fraction
            data["salt"] = self.salt
        elif self.kind == "keep_destinations":
            data["destinations"] = sorted(self.destinations)
        return data

    @classmethod
    def from_dict(
        cls, data: Mapping[str, object], where: str = "filter"
    ) -> "DeliveryFilter":
        """Inverse of :meth:`to_dict`.

        Raises :class:`ScriptError` naming ``where`` (the script entry
        being parsed) when the object is malformed.
        """
        if not isinstance(data, Mapping):
            raise ScriptError(
                f"{where}: expected a filter object, got {type(data).__name__}"
            )
        if "kind" not in data:
            raise ScriptError(f"{where}: missing required key 'kind'")
        kind = str(data["kind"])
        if kind not in FILTER_KINDS:
            raise ScriptError(
                f"{where}: unknown filter kind {kind!r}; "
                f"choose from {FILTER_KINDS}"
            )
        try:
            return cls(
                kind=kind,
                fraction=float(data.get("fraction", 0.0)),  # type: ignore[arg-type]
                salt=int(data.get("salt", 0)),  # type: ignore[arg-type]
                destinations=tuple(
                    int(d) for d in data.get("destinations", ())  # type: ignore[union-attr]
                ),
            )
        except (ConfigurationError, TypeError, ValueError) as exc:
            raise ScriptError(f"{where}: {exc}") from exc


@dataclass(frozen=True)
class CrashScript(Adversary):
    """An explicit fault schedule, usable directly as an adversary.

    ``faulty`` is the static *crash*-faulty set; ``crashes`` maps a node
    to the round it crashes in and the delivery filter applied to its
    final-round messages.  Faulty nodes without an entry never crash (the
    "faulty-but-well-behaved" case of Definition 1's footnote).

    ``byzantine`` assigns misbehaviour modes to further nodes (disjoint
    from ``faulty`` in grammar-sampled scripts; they are charged to the
    same fault budget by :meth:`adversary`), and ``delivery`` bounds
    per-message delay.  Both default to "absent", which is exactly the
    version-1 crash-only script.

    The script does **not** restrict ``crashes`` to ``faulty``: a
    malformed script (crashing a non-faulty node) is deliberately
    expressible so the engine's fault-discipline check can catch it — the
    chaos tests use exactly that to prove the oracles have teeth.
    """

    faulty: Tuple[NodeId, ...] = ()
    crashes: Mapping[NodeId, Tuple[Round, DeliveryFilter]] = field(
        default_factory=dict
    )
    #: Optional provenance label (e.g. the fuzzer seed that generated it).
    label: str = ""
    #: Per-node misbehaviour plan (empty = crash faults only).
    byzantine: ByzantinePlan = field(default_factory=ByzantinePlan)
    #: Message-delay bound (synchronous = the classic model).
    delivery: DeliverySchedule = SYNCHRONOUS

    # -- Adversary interface --------------------------------------------

    def select_faulty(
        self,
        n: int,
        max_faulty: int,
        rng: random.Random,
        inputs: Optional[Sequence[int]] = None,
    ) -> Set[NodeId]:
        return set(self.faulty)

    def plan_round(
        self, view: RoundView, rng: random.Random
    ) -> Dict[NodeId, CrashOrder]:
        orders: Dict[NodeId, CrashOrder] = {}
        for node, (round_, filter_) in self.crashes.items():
            if round_ == view.round and node not in view.crashed:
                orders[node] = filter_.to_order()
        return orders

    def done(self, view: RoundView) -> bool:
        return not any(
            round_ >= view.round and node not in view.crashed
            for node, (round_, _) in self.crashes.items()
        )

    def name(self) -> str:
        if self.label:
            return self.label
        parts = [f"script/{len(self.crashes)}crashes"]
        if self.byzantine.modes:
            parts.append(f"{len(self.byzantine)}byz")
        if not self.delivery.is_synchronous:
            parts.append(f"delay{self.delivery.max_delay}")
        return "+".join(parts)

    def adversary(self) -> Adversary:
        """The engine-facing adversary for this script.

        Crash-only scripts are their own adversary; a script with a
        Byzantine plan is wrapped in a
        :class:`~repro.faults.byzantine.ByzantineAdversary` so the lying
        nodes are charged against the fault budget.  (The delivery
        schedule is not an adversary concern — pass
        :attr:`delivery` to the network/runner separately.)
        """
        if self.byzantine.modes:
            return ByzantineAdversary(self.byzantine, self)
        return self

    # -- derived facts ---------------------------------------------------

    @property
    def last_crash_round(self) -> Round:
        """The latest scheduled crash round (0 when nothing crashes)."""
        return max((r for r, _ in self.crashes.values()), default=0)

    @property
    def max_delay(self) -> int:
        """Delay bound of the script's delivery schedule (0 = sync)."""
        return self.delivery.max_delay

    def size(self) -> Tuple[int, int, int]:
        """A lexicographic "how big is this schedule" measure.

        Shrinking strictly decreases it: (faulty nodes incl. Byzantine,
        crashes + Byzantine assignments, filter severity + Byzantine mode
        severity + delay bound).  For a version-1 crash-only script the
        components equal the historical (faulty, crashes, severity).
        """
        severity = sum(f.severity for _, f in self.crashes.values())
        # Omission (1) is milder than an actively lying mode (2), so a
        # mode downgrade strictly shrinks the measure.
        byz_severity = sum(
            1 if mode == "omission" else 2
            for mode in self.byzantine.modes.values()
        )
        byz = len(self.byzantine)
        return (
            len(self.faulty) + byz,
            len(self.crashes) + byz,
            severity + byz_severity + self.delivery.max_delay,
        )

    # -- JSON ------------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe form; inverse of :meth:`from_dict`.

        The ``byzantine``/``delivery`` sections are emitted only when
        non-trivial, so crash-only scripts keep their compact v1 shape
        (plus the explicit ``version`` stamp).
        """
        data: Dict[str, object] = {
            "version": SCRIPT_VERSION,
            "faulty": sorted(self.faulty),
            "crashes": {
                str(node): {"round": round_, "filter": filter_.to_dict()}
                for node, (round_, filter_) in sorted(self.crashes.items())
            },
            "label": self.label,
        }
        if self.byzantine.modes:
            data["byzantine"] = self.byzantine.to_dict()
        if not self.delivery.is_synchronous:
            data["delivery"] = self.delivery.to_dict()
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "CrashScript":
        """Inverse of :meth:`to_dict`, with schema validation.

        Raises :class:`ScriptError` naming the offending entry for any
        malformed or unsupported input.
        """
        if not isinstance(data, Mapping):
            raise ScriptError(
                f"script: expected an object, got {type(data).__name__}"
            )
        version = data.get("version", 1)
        if version not in SUPPORTED_SCRIPT_VERSIONS:
            raise ScriptError(
                f"script: unsupported version {version!r}; this build "
                f"reads versions {SUPPORTED_SCRIPT_VERSIONS}"
            )
        raw_crashes = data.get("crashes", {})
        if not isinstance(raw_crashes, Mapping):
            raise ScriptError(
                "script: 'crashes' must be an object mapping node id to "
                "{'round': ..., 'filter': ...}, got "
                f"{type(raw_crashes).__name__}"
            )
        crashes: Dict[NodeId, Tuple[Round, DeliveryFilter]] = {}
        for node, entry in raw_crashes.items():
            where = f"crashes[{node!r}]"
            try:
                node_id = int(node)
            except (TypeError, ValueError):
                raise ScriptError(
                    f"{where}: node id must be an integer"
                ) from None
            if not isinstance(entry, Mapping):
                raise ScriptError(
                    f"{where}: expected an object with 'round' and "
                    f"'filter', got {type(entry).__name__}"
                )
            for key in ("round", "filter"):
                if key not in entry:
                    raise ScriptError(f"{where}: missing required key {key!r}")
            try:
                round_ = int(entry["round"])  # type: ignore[arg-type]
            except (TypeError, ValueError):
                raise ScriptError(
                    f"{where}: 'round' must be an integer, "
                    f"got {entry['round']!r}"
                ) from None
            crashes[node_id] = (
                round_,
                DeliveryFilter.from_dict(
                    entry["filter"], where=f"{where}.filter"
                ),
            )
        try:
            faulty = tuple(sorted(int(u) for u in data.get("faulty", ())))  # type: ignore[union-attr]
        except (TypeError, ValueError) as exc:
            raise ScriptError(
                f"script: 'faulty' must be a list of node ids ({exc})"
            ) from exc
        raw_plan = data.get("byzantine")
        if raw_plan is None:
            byzantine = ByzantinePlan()
        else:
            try:
                byzantine = ByzantinePlan.from_dict(raw_plan)  # type: ignore[arg-type]
            except (ConfigurationError, TypeError, ValueError, AttributeError) as exc:
                raise ScriptError(
                    f"script: invalid 'byzantine' section: {exc}"
                ) from exc
        try:
            delivery = schedule_from_dict(data.get("delivery"))  # type: ignore[arg-type]
        except (ConfigurationError, TypeError, ValueError, AttributeError) as exc:
            raise ScriptError(
                f"script: invalid 'delivery' section: {exc}"
            ) from exc
        return cls(
            faulty=faulty,
            crashes=crashes,
            label=str(data.get("label", "")),
            byzantine=byzantine,
            delivery=delivery,
        )

    def to_json(self, indent: Optional[int] = None) -> str:
        """Serialise to a JSON string."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "CrashScript":
        """Parse a script previously written by :meth:`to_json`."""
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ScriptError(f"script: not valid JSON: {exc}") from exc
        return cls.from_dict(data)

    # -- structural edits (used by the shrinker) -------------------------
    # All edits go through dataclasses.replace, so every field — including
    # ones added in later versions — survives every edit.

    def without_crash(self, node: NodeId) -> "CrashScript":
        """Copy with ``node``'s crash removed (it stays faulty)."""
        crashes = {u: plan for u, plan in self.crashes.items() if u != node}
        return replace(self, crashes=crashes)

    def without_faulty(self, node: NodeId) -> "CrashScript":
        """Copy with ``node`` removed from the faulty set and the plan."""
        faulty = tuple(u for u in self.faulty if u != node)
        crashes = {u: plan for u, plan in self.crashes.items() if u != node}
        return replace(self, faulty=faulty, crashes=crashes)

    def with_filter(self, node: NodeId, filter_: DeliveryFilter) -> "CrashScript":
        """Copy with ``node``'s delivery filter replaced."""
        crashes = dict(self.crashes)
        round_, _ = crashes[node]
        crashes[node] = (round_, filter_)
        return replace(self, crashes=crashes)

    def with_round(self, node: NodeId, round_: Round) -> "CrashScript":
        """Copy with ``node``'s crash moved to ``round_``."""
        crashes = dict(self.crashes)
        _, filter_ = crashes[node]
        crashes[node] = (round_, filter_)
        return replace(self, crashes=crashes)

    def without_byzantine(self, node: NodeId) -> "CrashScript":
        """Copy with ``node`` honest again (dropped from the plan)."""
        return replace(self, byzantine=self.byzantine.without_node(node))

    def with_byzantine_mode(self, node: NodeId, mode: str) -> "CrashScript":
        """Copy with ``node``'s misbehaviour mode reassigned."""
        return replace(self, byzantine=self.byzantine.with_mode(node, mode))

    def with_delivery(self, delivery: DeliverySchedule) -> "CrashScript":
        """Copy with the delivery schedule replaced."""
        return replace(self, delivery=delivery)


ScriptLike = Union[CrashScript, Mapping[str, object]]


def as_script(value: ScriptLike) -> CrashScript:
    """Coerce a script or its JSON dict form to a :class:`CrashScript`."""
    if isinstance(value, CrashScript):
        return value
    return CrashScript.from_dict(value)
