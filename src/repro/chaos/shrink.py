"""Greedy schedule shrinking: from a failing schedule to a minimal one.

Given a :class:`FuzzCase` whose script provokes a violation, the shrinker
looks for the smallest schedule that still provokes a violation of the
same class (:func:`repro.chaos.fuzzer.classify`).  Candidate edits, in
order of aggressiveness:

1. **drop a crash** — the node stays faulty but never crashes;
2. **drop a faulty node** that has no crash scheduled;
3. **drop a Byzantine node** — it rejoins the honest majority;
4. **remove or halve the delay bound** — a smaller Δ is a strictly
   weaker scheduler (Δ=0 is the classic synchronous model);
5. **widen delivery** — replace a ``drop_all``/partial filter with
   ``keep_all`` (a crash that loses nothing is the mildest crash);
6. **downgrade a Byzantine mode to omission** — a node that merely goes
   quiet is milder than one that forges or equivocates;
7. **delay the crash** towards the horizon (geometric jumps, largest
   first) — later crashes give the protocol strictly more fault-free
   rounds.

Each accepted edit strictly decreases the lexicographic measure of
:meth:`CrashScript.size` (faulty+Byzantine count, crash+mode count,
severity+delay) or delays a crash, so the greedy fixpoint loop
converges; a hard evaluation cap bounds worst-case work.  Every
candidate is *re-executed* (never pattern-matched), so the minimised
script is guaranteed to reproduce.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator, List, Tuple

from ..sim.delivery import SYNCHRONOUS, UniformDelay
from ..types import Round
from .fuzzer import FuzzCase, classify, replay_case
from .script import CrashScript, DeliveryFilter

#: Hard cap on candidate re-executions per shrink (safety valve; greedy
#: descent on realistic schedules uses far fewer).
DEFAULT_MAX_EVALS = 400

#: Predicate deciding whether a candidate script still fails "the same way".
FailurePredicate = Callable[[CrashScript], bool]


@dataclass
class ShrinkResult:
    """A minimised script plus shrink statistics."""

    script: CrashScript
    evaluations: int = 0
    accepted_steps: int = 0
    #: True when the loop reached a fixpoint (no candidate still failed),
    #: False when the evaluation cap cut it short.
    converged: bool = True
    history: List[Tuple[int, int, int]] = field(default_factory=list)


def _candidates(
    script: CrashScript, max_round: Round
) -> Iterator[CrashScript]:
    """Candidate one-step reductions, most aggressive first."""
    keep_all = DeliveryFilter(kind="keep_all")
    for node in sorted(script.crashes):
        yield script.without_crash(node)
    crashing = set(script.crashes)
    for node in sorted(script.faulty):
        if node not in crashing:
            yield script.without_faulty(node)
    for node in sorted(script.byzantine.modes):
        yield script.without_byzantine(node)
    if not script.delivery.is_synchronous:
        yield script.with_delivery(SYNCHRONOUS)
        salt = getattr(script.delivery, "salt", 0)
        delay = script.delivery.max_delay // 2
        while delay >= 1:
            yield script.with_delivery(
                UniformDelay(max_delay=delay, salt=salt)
            )
            delay //= 2
    for node in sorted(script.crashes):
        _, filter_ = script.crashes[node]
        if filter_.severity > 0:
            yield script.with_filter(node, keep_all)
    for node, mode in sorted(script.byzantine.modes.items()):
        if mode != "omission":
            yield script.with_byzantine_mode(node, "omission")
    for node in sorted(script.crashes):
        round_, _ = script.crashes[node]
        # Geometric delays (largest jump first): delaying one round at a
        # time would cost one re-execution per round of the horizon.
        delta = max_round - round_
        while delta >= 1:
            yield script.with_round(node, round_ + delta)
            delta //= 2


def shrink_script(
    script: CrashScript,
    still_fails: FailurePredicate,
    max_round: Round,
    max_evals: int = DEFAULT_MAX_EVALS,
) -> ShrinkResult:
    """Greedily minimise ``script`` while ``still_fails`` holds.

    ``max_round`` bounds crash delaying (normally the run horizon).  The
    returned script always satisfies ``still_fails`` — the input script is
    assumed to (callers verify before shrinking).
    """
    result = ShrinkResult(script=script)
    improved = True
    while improved:
        improved = False
        for candidate in _candidates(result.script, max_round):
            if result.evaluations >= max_evals:
                result.converged = False
                return result
            result.evaluations += 1
            if still_fails(candidate):
                # Accepted edits strictly shrink the (faulty, crashes,
                # severity) measure or delay a crash, so this loop is finite.
                result.script = candidate
                result.accepted_steps += 1
                result.history.append(candidate.size())
                improved = True
                break
    return result


def shrink_case(case: FuzzCase, max_evals: int = DEFAULT_MAX_EVALS) -> FuzzCase:
    """Minimise a failing :class:`FuzzCase`, preserving its failure class.

    The returned case carries the shrunk script and the violations the
    shrunk script actually produces (re-observed, not inherited).
    """
    target = case.signature
    if not target:
        return case

    def still_fails(candidate: CrashScript) -> bool:
        trial = FuzzCase(
            scenario=case.scenario, seed=case.seed, script=candidate
        )
        return classify(replay_case(trial)) == target

    shrunk = shrink_script(
        case.script,
        still_fails,
        max_round=case.scenario.horizon(),
        max_evals=max_evals,
    )
    minimised = FuzzCase(
        scenario=case.scenario,
        seed=case.seed,
        script=shrunk.script,
        violations=[],
    )
    minimised.violations = replay_case(minimised)
    return minimised
