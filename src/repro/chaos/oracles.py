"""Protocol-level safety oracles for fuzzed runs.

The model validator (:func:`repro.sim.validate.validate_run`) checks the
*machine*; these oracles check the *problem definitions* on top of it:

* **leader election** (Definition 1): at most one leader among the nodes
  alive at the end of the run — and when the unique ELECTED node crashed
  after electing itself (footnote 3), still at most one such node;
* **agreement** (Definition 2): among non-faulty nodes that decided, all
  decisions are equal (agreement) and every decided value is some node's
  input (validity).

The oracles are pure *safety* conditions: a brutal schedule may prevent
any leader/decision (that costs liveness, which the paper only promises
w.h.p.), but no crash schedule whatsoever may produce two leaders or two
different decisions.  Every violation string is prefixed with
``"oracle:"`` so fuzzer reports can be classified.

**Crash-safe vs fault-fragile.**  The oracle properties above are proved
for the paper's *crash* model only.  Under a Byzantine plan (or a delay
bound, for protocols designed for synchrony) a violation is the
*measured result* — the demonstration that the guarantee does not
survive the stronger adversary — not a bug.  :func:`downgrade_fragile`
reclassifies exactly those: ``oracle:`` violations become journalled
findings, while machine-level violations (``model:`` conservation /
latency breaks, ``engine:`` exceptions) stay hard — no fault model
excuses the simulator breaking its own invariants.
"""

from __future__ import annotations

from typing import List, Sequence

from ..core.results import AgreementResult, LeaderElectionResult
from ..types import Decision


def leader_election_oracle(result: LeaderElectionResult) -> List[str]:
    """Safety violations of one leader-election outcome (empty = safe)."""
    violations: List[str] = []
    alive_leaders = sorted(result.elected_alive)
    if len(alive_leaders) > 1:
        violations.append(
            f"oracle: {len(alive_leaders)} leaders among alive nodes: "
            f"{alive_leaders}"
        )
    total_elected = len(alive_leaders) + len(result.elected_crashed)
    if len(alive_leaders) <= 1 < total_elected:
        violations.append(
            f"oracle: {total_elected} nodes ever reached ELECTED "
            f"(alive {alive_leaders}, crashed {sorted(result.elected_crashed)})"
        )
    # A leader must believe in itself: an alive ELECTED node disagreeing
    # with its own rank is a state-machine inconsistency.
    for leader in alive_leaders:
        belief = result.beliefs.get(leader)
        if belief is not None and belief != result.ranks.get(leader):
            violations.append(
                f"oracle: leader {leader} believes rank {belief}, "
                f"own rank is {result.ranks.get(leader)}"
            )
    return violations


def agreement_oracle(result: AgreementResult) -> List[str]:
    """Safety violations of one agreement outcome (empty = safe)."""
    violations: List[str] = []
    nonfaulty_alive = [
        u for u in result.decisions if u not in result.faulty
    ]
    decided = {
        u: result.decisions[u].bit
        for u in nonfaulty_alive
        if result.decisions[u] is not Decision.UNDECIDED
    }
    bits = set(decided.values())
    if len(bits) > 1:
        violations.append(
            f"oracle: non-faulty deciders disagree: "
            f"{sorted(decided.items())}"
        )
    input_bits = set(result.inputs)
    for bit in sorted(bits):
        if bit not in input_bits:
            violations.append(
                f"oracle: decided value {bit} is nobody's input "
                f"(inputs contain {sorted(input_bits)})"
            )
    return violations


#: Violation prefixes marking journalled findings rather than failures.
FRAGILE_PREFIXES = ("byzantine", "async")


def downgrade_fragile(
    violations: Sequence[str], prefix: str = "byzantine"
) -> List[str]:
    """Reclassify Byzantine-fragile oracle violations of one run.

    Rewrites the ``oracle:`` prefix to ``prefix:`` (``"byzantine"`` for
    runs with lying nodes, ``"async"`` for delayed runs of protocols that
    assume synchrony) so the fuzzer journals the violation as a finding
    instead of failing the campaign.  Machine-level violations pass
    through untouched — they must hold under every fault model.
    """
    if prefix not in FRAGILE_PREFIXES:
        raise ValueError(
            f"unknown fragile prefix {prefix!r}; "
            f"choose from {FRAGILE_PREFIXES}"
        )
    return [
        f"{prefix}:" + v[len("oracle:"):] if v.startswith("oracle:") else v
        for v in violations
    ]
