"""Adversary fuzzing: random crash schedules, safety oracles, shrinking.

The paper's theorems hold *for every* adaptive crash schedule; this
subpackage searches that space empirically.  A :class:`FuzzedAdversary`
samples schedules from a generation grammar, every run is checked against
the model validator plus protocol safety oracles, and failing schedules
are recorded as deterministic, replayable :class:`CrashScript` objects
and shrunk to minimal reproducers.

See ``docs/CHAOS.md`` for the grammar, the oracle list, and the replay
workflow (``repro fuzz`` / ``repro replay``).
"""

from .fuzzer import (
    FAST_CONSTANTS,
    PROTOCOLS,
    FuzzCase,
    FuzzReport,
    FuzzScenario,
    classify,
    default_scenarios,
    fuzz,
    fuzz_one,
    replay_case,
    run_scenario,
)
from .grammar import FuzzedAdversary, GrammarConfig, sample_filter, sample_script
from .oracles import agreement_oracle, leader_election_oracle
from .script import CrashScript, DeliveryFilter, as_script
from .shrink import ShrinkResult, shrink_case, shrink_script

__all__ = [
    "FAST_CONSTANTS",
    "PROTOCOLS",
    "CrashScript",
    "DeliveryFilter",
    "FuzzCase",
    "FuzzReport",
    "FuzzScenario",
    "FuzzedAdversary",
    "GrammarConfig",
    "ShrinkResult",
    "agreement_oracle",
    "as_script",
    "classify",
    "default_scenarios",
    "fuzz",
    "fuzz_one",
    "leader_election_oracle",
    "replay_case",
    "run_scenario",
    "sample_filter",
    "sample_script",
    "shrink_case",
    "shrink_script",
]
