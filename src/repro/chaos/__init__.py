"""Adversary fuzzing: random fault schedules, safety oracles, shrinking.

The paper's theorems hold *for every* adaptive crash schedule; this
subpackage searches that space empirically.  A :class:`FuzzedAdversary`
samples schedules from a generation grammar, every run is checked against
the model validator plus protocol safety oracles, and failing schedules
are recorded as deterministic, replayable :class:`CrashScript` objects
and shrunk to minimal reproducers.

An *extended* :class:`GrammarConfig` fuzzes beyond the paper's model:
per-node Byzantine misbehaviour plans and bounded-delay delivery
schedules ride on the same scripts (wire-format version 2).  Oracle
violations that the sampled faults excuse are journalled *findings*
rather than campaign failures — the crash-safe properties (model
validator, engine contracts, crash-only oracles) must always hold.

See ``docs/CHAOS.md`` for the grammar, the oracle list, and the replay
workflow (``repro fuzz`` / ``repro replay``); ``docs/FAULTS.md`` for the
fault hierarchy.
"""

from .fuzzer import (
    FAST_CONSTANTS,
    PROTOCOLS,
    SCENARIO_MODES,
    FuzzCase,
    FuzzReport,
    FuzzScenario,
    classify,
    default_scenarios,
    fuzz,
    fuzz_one,
    replay_case,
    run_scenario,
)
from .grammar import FuzzedAdversary, GrammarConfig, sample_filter, sample_script
from .oracles import (
    FRAGILE_PREFIXES,
    agreement_oracle,
    downgrade_fragile,
    leader_election_oracle,
)
from .script import (
    SCRIPT_VERSION,
    SUPPORTED_SCRIPT_VERSIONS,
    CrashScript,
    DeliveryFilter,
    as_script,
)
from .shrink import ShrinkResult, shrink_case, shrink_script

__all__ = [
    "FAST_CONSTANTS",
    "FRAGILE_PREFIXES",
    "PROTOCOLS",
    "SCENARIO_MODES",
    "SCRIPT_VERSION",
    "SUPPORTED_SCRIPT_VERSIONS",
    "CrashScript",
    "DeliveryFilter",
    "FuzzCase",
    "FuzzReport",
    "FuzzScenario",
    "FuzzedAdversary",
    "GrammarConfig",
    "ShrinkResult",
    "agreement_oracle",
    "as_script",
    "classify",
    "default_scenarios",
    "downgrade_fragile",
    "fuzz",
    "fuzz_one",
    "leader_election_oracle",
    "replay_case",
    "run_scenario",
    "sample_filter",
    "sample_script",
    "shrink_case",
    "shrink_script",
]
