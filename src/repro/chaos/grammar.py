"""The fuzzer's generation grammar.

A fuzzed schedule is drawn in up to five layers; the first three mirror
the paper's adversary definition (Section II), the last two widen the
fault surface beyond it:

1. **static selection** — a faulty set of random size up to the budget;
2. **crash plan** — each faulty node independently either never crashes
   (probability ``1 - crash_probability``) or crashes in a uniform round
   of ``[1, horizon]``;
3. **delivery filter** — a crashing node loses an adversary-chosen subset
   of its final-round messages: one of ``drop_all`` / ``keep_all`` /
   ``keep_fraction`` (uniform fraction, recorded salt) /
   ``keep_destinations`` (uniform random destination subset);
4. **Byzantine plan** — when :attr:`GrammarConfig.byzantine_modes` is
   non-empty, further nodes (within the same fault budget, disjoint from
   the crash-faulty set) are assigned misbehaviour modes;
5. **delivery delay** — when :attr:`GrammarConfig.max_delay` > 0, the
   whole run may get a uniform per-message delay bound (partial
   synchrony, recorded salt).

Layers 4 and 5 draw nothing when disabled, so the default configuration
consumes exactly the historical random stream — legacy ``(seed, config)``
pairs regenerate bit-identical schedules.

Every draw comes from the RNG handed in by the caller, so the realised
schedule is a pure function of that stream — the engine's adversary
stream when used through :class:`FuzzedAdversary`, which makes a fuzzed
run reproducible from ``(parameters, seed)`` alone.  The extended layers
need the schedule *before* the network exists (Byzantine nodes run
different protocol instances; the delay bound configures the network), so
they are only available through eager :func:`sample_script` calls — see
:func:`repro.chaos.fuzzer.fuzz_one`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Set, Tuple

from ..errors import ConfigurationError
from ..faults.adversary import Adversary, CrashOrder, RoundView
from ..faults.byzantine import BYZANTINE_MODES, ByzantinePlan
from ..sim.delivery import SYNCHRONOUS, DeliverySchedule, UniformDelay
from ..types import NodeId, Round
from .script import CrashScript, DeliveryFilter

#: Relative weight of each filter production in the grammar.
DEFAULT_FILTER_WEIGHTS = {
    "drop_all": 3,
    "keep_all": 1,
    "keep_fraction": 2,
    "keep_destinations": 2,
}


@dataclass(frozen=True)
class GrammarConfig:
    """Tunables of the schedule grammar."""

    #: Probability that a faulty node crashes at all.
    crash_probability: float = 0.85
    #: Weights of the four filter kinds.
    filter_weights: Dict[str, int] = None  # type: ignore[assignment]
    #: Use the full fault budget instead of a random subset of it.
    saturate_budget: bool = False
    #: Misbehaviour modes the grammar may assign (empty = crash-only).
    byzantine_modes: Tuple[str, ...] = ()
    #: Probability that a schedule includes Byzantine nodes at all
    #: (given modes are configured and budget remains).
    byzantine_probability: float = 0.5
    #: Cap on Byzantine nodes per schedule (the fault budget also caps).
    max_byzantine: int = 3
    #: Upper bound on the sampled per-message delay (0 = synchronous only).
    max_delay: int = 0
    #: Probability that a schedule is delayed at all (given max_delay > 0).
    delay_probability: float = 0.5

    def __post_init__(self) -> None:
        if not 0.0 <= self.crash_probability <= 1.0:
            raise ConfigurationError(
                f"crash_probability must be in [0,1], got {self.crash_probability}"
            )
        if self.filter_weights is None:
            object.__setattr__(self, "filter_weights", dict(DEFAULT_FILTER_WEIGHTS))
        for mode in self.byzantine_modes:
            if mode not in BYZANTINE_MODES:
                raise ConfigurationError(
                    f"unknown byzantine mode {mode!r}; "
                    f"choose from {BYZANTINE_MODES}"
                )
        if not 0.0 <= self.byzantine_probability <= 1.0:
            raise ConfigurationError(
                f"byzantine_probability must be in [0,1], "
                f"got {self.byzantine_probability}"
            )
        if self.max_byzantine < 0:
            raise ConfigurationError(
                f"max_byzantine must be >= 0, got {self.max_byzantine}"
            )
        if self.max_delay < 0:
            raise ConfigurationError(
                f"max_delay must be >= 0, got {self.max_delay}"
            )
        if not 0.0 <= self.delay_probability <= 1.0:
            raise ConfigurationError(
                f"delay_probability must be in [0,1], "
                f"got {self.delay_probability}"
            )

    @property
    def extended(self) -> bool:
        """True when layers 4/5 are active (needs eager sampling)."""
        return bool(self.byzantine_modes) or self.max_delay > 0


def sample_filter(
    rng: random.Random, n: int, config: GrammarConfig
) -> DeliveryFilter:
    """Draw one delivery filter from the grammar."""
    kinds = list(config.filter_weights)
    weights = [config.filter_weights[k] for k in kinds]
    kind = rng.choices(kinds, weights=weights)[0]
    if kind == "keep_fraction":
        return DeliveryFilter(
            kind=kind,
            fraction=rng.random(),
            salt=rng.getrandbits(32),
        )
    if kind == "keep_destinations":
        count = rng.randint(0, n - 1)
        return DeliveryFilter(
            kind=kind,
            destinations=tuple(sorted(rng.sample(range(n), count))),
        )
    return DeliveryFilter(kind=kind)


def _sample_byzantine(
    rng: random.Random,
    n: int,
    faulty: Sequence[NodeId],
    budget: int,
    config: GrammarConfig,
) -> ByzantinePlan:
    """Draw the Byzantine layer (empty plan when disabled or no room)."""
    if not config.byzantine_modes or config.max_byzantine <= 0:
        return ByzantinePlan()
    taken = set(faulty)
    headroom = min(budget - len(taken), config.max_byzantine, n - len(taken))
    if headroom <= 0 or rng.random() >= config.byzantine_probability:
        return ByzantinePlan()
    count = rng.randint(1, headroom)
    pool = [u for u in range(n) if u not in taken]
    chosen = sorted(rng.sample(pool, count))
    modes = {u: rng.choice(config.byzantine_modes) for u in chosen}
    return ByzantinePlan(
        modes=modes,
        omission_fraction=rng.uniform(0.25, 1.0),
        salt=rng.getrandbits(32),
    )


def _sample_delivery(
    rng: random.Random, config: GrammarConfig
) -> DeliverySchedule:
    """Draw the delay layer (synchronous when disabled or not chosen)."""
    if config.max_delay <= 0 or rng.random() >= config.delay_probability:
        return SYNCHRONOUS
    return UniformDelay(
        max_delay=rng.randint(1, config.max_delay),
        salt=rng.getrandbits(32),
    )


def sample_script(
    rng: random.Random,
    n: int,
    max_faulty: int,
    horizon: Round,
    config: Optional[GrammarConfig] = None,
    label: str = "",
) -> CrashScript:
    """Draw one complete fault schedule from the grammar."""
    if horizon < 1:
        raise ConfigurationError(f"horizon must be >= 1, got {horizon}")
    config = config or GrammarConfig()
    budget = min(max_faulty, n)
    count = budget if config.saturate_budget else rng.randint(0, budget)
    faulty = sorted(rng.sample(range(n), count))
    crashes: Dict[NodeId, Tuple[Round, DeliveryFilter]] = {}
    for node in faulty:
        if rng.random() >= config.crash_probability:
            continue  # faulty but well-behaved for the whole run
        crashes[node] = (
            rng.randint(1, horizon),
            sample_filter(rng, n, config),
        )
    byzantine = _sample_byzantine(rng, n, faulty, budget, config)
    delivery = _sample_delivery(rng, config)
    return CrashScript(
        faulty=tuple(faulty),
        crashes=crashes,
        label=label,
        byzantine=byzantine,
        delivery=delivery,
    )


class FuzzedAdversary(Adversary):
    """An adversary that *samples* its schedule from the grammar.

    The schedule is materialised in :meth:`select_faulty` (the first time
    the engine consults the adversary) from the engine's own adversary
    stream, then executed verbatim; :attr:`script` exposes the realised
    :class:`CrashScript` afterwards, ready to be saved, replayed, or
    shrunk.

    Only the crash layers are available here: by the time the engine
    consults the adversary the protocol instances and the delivery
    schedule are already fixed, so a config with Byzantine modes or
    delays is rejected — sample those scripts eagerly with
    :func:`sample_script` (as :func:`repro.chaos.fuzzer.fuzz_one` does)
    and hand :meth:`CrashScript.adversary` to the engine.
    """

    def __init__(
        self,
        horizon: Round,
        config: Optional[GrammarConfig] = None,
        label: str = "fuzz",
    ) -> None:
        if horizon < 1:
            raise ConfigurationError(f"horizon must be >= 1, got {horizon}")
        self.horizon = horizon
        self.config = config or GrammarConfig()
        if self.config.extended:
            raise ConfigurationError(
                "FuzzedAdversary materialises its schedule lazily, after "
                "the network exists; Byzantine/delay grammar layers must "
                "be sampled eagerly with sample_script instead"
            )
        self.label = label
        self.script: Optional[CrashScript] = None

    def select_faulty(
        self,
        n: int,
        max_faulty: int,
        rng: random.Random,
        inputs: Optional[Sequence[int]] = None,
    ) -> Set[NodeId]:
        self.script = sample_script(
            rng,
            n=n,
            max_faulty=max_faulty,
            horizon=self.horizon,
            config=self.config,
            label=self.label,
        )
        return self.script.select_faulty(n, max_faulty, rng, inputs)

    def plan_round(
        self, view: RoundView, rng: random.Random
    ) -> Dict[NodeId, CrashOrder]:
        assert self.script is not None, "select_faulty not called yet"
        return self.script.plan_round(view, rng)

    def done(self, view: RoundView) -> bool:
        assert self.script is not None, "select_faulty not called yet"
        return self.script.done(view)

    def name(self) -> str:
        return self.label
