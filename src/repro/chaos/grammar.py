"""The fuzzer's generation grammar.

A fuzzed schedule is drawn in three layers, mirroring the paper's
adversary definition (Section II):

1. **static selection** — a faulty set of random size up to the budget;
2. **crash plan** — each faulty node independently either never crashes
   (probability ``1 - crash_probability``) or crashes in a uniform round
   of ``[1, horizon]``;
3. **delivery filter** — a crashing node loses an adversary-chosen subset
   of its final-round messages: one of ``drop_all`` / ``keep_all`` /
   ``keep_fraction`` (uniform fraction, recorded salt) /
   ``keep_destinations`` (uniform random destination subset).

Every draw comes from the RNG handed in by the caller, so the realised
schedule is a pure function of that stream — the engine's adversary
stream when used through :class:`FuzzedAdversary`, which makes a fuzzed
run reproducible from ``(parameters, seed)`` alone.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Set, Tuple

from ..errors import ConfigurationError
from ..faults.adversary import Adversary, CrashOrder, RoundView
from ..types import NodeId, Round
from .script import CrashScript, DeliveryFilter

#: Relative weight of each filter production in the grammar.
DEFAULT_FILTER_WEIGHTS = {
    "drop_all": 3,
    "keep_all": 1,
    "keep_fraction": 2,
    "keep_destinations": 2,
}


@dataclass(frozen=True)
class GrammarConfig:
    """Tunables of the schedule grammar."""

    #: Probability that a faulty node crashes at all.
    crash_probability: float = 0.85
    #: Weights of the four filter kinds.
    filter_weights: Dict[str, int] = None  # type: ignore[assignment]
    #: Use the full fault budget instead of a random subset of it.
    saturate_budget: bool = False

    def __post_init__(self) -> None:
        if not 0.0 <= self.crash_probability <= 1.0:
            raise ConfigurationError(
                f"crash_probability must be in [0,1], got {self.crash_probability}"
            )
        if self.filter_weights is None:
            object.__setattr__(self, "filter_weights", dict(DEFAULT_FILTER_WEIGHTS))


def sample_filter(
    rng: random.Random, n: int, config: GrammarConfig
) -> DeliveryFilter:
    """Draw one delivery filter from the grammar."""
    kinds = list(config.filter_weights)
    weights = [config.filter_weights[k] for k in kinds]
    kind = rng.choices(kinds, weights=weights)[0]
    if kind == "keep_fraction":
        return DeliveryFilter(
            kind=kind,
            fraction=rng.random(),
            salt=rng.getrandbits(32),
        )
    if kind == "keep_destinations":
        count = rng.randint(0, n - 1)
        return DeliveryFilter(
            kind=kind,
            destinations=tuple(sorted(rng.sample(range(n), count))),
        )
    return DeliveryFilter(kind=kind)


def sample_script(
    rng: random.Random,
    n: int,
    max_faulty: int,
    horizon: Round,
    config: Optional[GrammarConfig] = None,
    label: str = "",
) -> CrashScript:
    """Draw one complete crash schedule from the grammar."""
    if horizon < 1:
        raise ConfigurationError(f"horizon must be >= 1, got {horizon}")
    config = config or GrammarConfig()
    budget = min(max_faulty, n)
    count = budget if config.saturate_budget else rng.randint(0, budget)
    faulty = sorted(rng.sample(range(n), count))
    crashes: Dict[NodeId, Tuple[Round, DeliveryFilter]] = {}
    for node in faulty:
        if rng.random() >= config.crash_probability:
            continue  # faulty but well-behaved for the whole run
        crashes[node] = (
            rng.randint(1, horizon),
            sample_filter(rng, n, config),
        )
    return CrashScript(faulty=tuple(faulty), crashes=crashes, label=label)


class FuzzedAdversary(Adversary):
    """An adversary that *samples* its schedule from the grammar.

    The schedule is materialised in :meth:`select_faulty` (the first time
    the engine consults the adversary) from the engine's own adversary
    stream, then executed verbatim; :attr:`script` exposes the realised
    :class:`CrashScript` afterwards, ready to be saved, replayed, or
    shrunk.
    """

    def __init__(
        self,
        horizon: Round,
        config: Optional[GrammarConfig] = None,
        label: str = "fuzz",
    ) -> None:
        if horizon < 1:
            raise ConfigurationError(f"horizon must be >= 1, got {horizon}")
        self.horizon = horizon
        self.config = config or GrammarConfig()
        self.label = label
        self.script: Optional[CrashScript] = None

    def select_faulty(
        self,
        n: int,
        max_faulty: int,
        rng: random.Random,
        inputs: Optional[Sequence[int]] = None,
    ) -> Set[NodeId]:
        self.script = sample_script(
            rng,
            n=n,
            max_faulty=max_faulty,
            horizon=self.horizon,
            config=self.config,
            label=self.label,
        )
        return self.script.select_faulty(n, max_faulty, rng, inputs)

    def plan_round(
        self, view: RoundView, rng: random.Random
    ) -> Dict[NodeId, CrashOrder]:
        assert self.script is not None, "select_faulty not called yet"
        return self.script.plan_round(view, rng)

    def done(self, view: RoundView) -> bool:
        assert self.script is not None, "select_faulty not called yet"
        return self.script.done(view)

    def name(self) -> str:
        return self.label
