"""Schedule-space fuzzing: the empirical analogue of "for every adversary".

The paper's guarantees (Theorems 4.1/5.1) quantify over *all* adaptive
crash schedules; the hand-written portfolio in
:mod:`repro.faults.strategies` covers seven of them.  The fuzzer samples
the schedule space at random: each trial draws a :class:`FuzzedAdversary`
schedule from the grammar, runs a protocol under it with a full trace,
and checks

* the model validator (:func:`repro.sim.validate.validate_run`), which
  now also enforces delivery latency, and
* the protocol safety oracle (:mod:`repro.chaos.oracles`),

treating any engine exception as a violation as well.  A failing trial is
packaged as a :class:`FuzzCase` — scenario parameters plus the realised
:class:`CrashScript` — shrunk to a minimal reproducer, and returned for
storage/replay (``repro fuzz`` / ``repro replay``).

With an *extended* :class:`GrammarConfig` (Byzantine modes and/or a delay
bound) each trial instead samples its script eagerly — the lying nodes
need swapped protocol instances and the delay bound configures the
network, both of which must exist before the run starts.  Oracle
violations of runs whose guarantees the sampled faults void (Byzantine
nodes; delays under synchronous-only protocols) are *findings*: shrunk
and journalled like failures, but they do not fail the campaign (see
:func:`repro.chaos.oracles.downgrade_fragile`).
"""

from __future__ import annotations

import json
import random
import time
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from ..baselines.ben_or import ben_or_consensus, ben_or_horizon
from ..core.results import AgreementResult
from ..core.runner import agree, elect_leader, make_inputs
from ..core.schedule import AgreementSchedule, LeaderElectionSchedule
from ..errors import ConfigurationError, ReproError, TrialFailed
from ..faults.adversary import Adversary
from ..faults.byzantine import AGREEMENT_MODES, ELECTION_MODES
from ..obs.progress import ProgressSpec, ensure_progress
from ..obs.provenance import Manifest
from ..params import Params
from ..rng import derive_seed
from ..sim.network import RunResult
from ..sim.validate import validate_run
from ..types import Decision, Round
from .grammar import FuzzedAdversary, GrammarConfig, sample_script
from .oracles import (
    FRAGILE_PREFIXES,
    agreement_oracle,
    downgrade_fragile,
    leader_election_oracle,
)
from .script import CrashScript, as_script

PROTOCOLS = ("election", "agreement", "ben_or")

#: Byzantine modes that make sense per protocol family; the extended
#: grammar's mode pool is intersected with this, so an agreement trial
#: never draws a rank forger.  Ben-Or shares the agreement modes: its
#: ``zero_forger`` forges decide certificates instead of input claims.
SCENARIO_MODES: Dict[str, Tuple[str, ...]] = {
    "election": ELECTION_MODES,
    "agreement": AGREEMENT_MODES,
    "ben_or": AGREEMENT_MODES,
}

#: Protocols designed for bounded-delay delivery: their oracles stay hard
#: under a delay schedule (everything else is "async"-fragile there).
DELAY_TOLERANT: Tuple[str, ...] = ("ben_or",)

#: Reduced sampling constants for high-throughput fuzzing (validated by
#: the test-suite's fast fixtures: same code paths, ~10x fewer messages).
FAST_CONSTANTS = dict(candidate_factor=3.0, referee_factor=1.5, iteration_factor=4.0)


@dataclass(frozen=True)
class FuzzScenario:
    """Everything needed to rebuild one fuzzed run except its schedule."""

    protocol: str
    n: int = 64
    alpha: float = 0.5
    inputs: Union[str, Tuple[int, ...]] = "mixed"
    fast_constants: bool = True
    extra_rounds: int = 0

    def __post_init__(self) -> None:
        if self.protocol not in PROTOCOLS:
            raise ConfigurationError(
                f"unknown protocol {self.protocol!r}; choose from {PROTOCOLS}"
            )

    def params(self) -> Params:
        constants = FAST_CONSTANTS if self.fast_constants else {}
        return Params(n=self.n, alpha=self.alpha, **constants)

    def horizon(self) -> Round:
        params = self.params()
        if self.protocol == "election":
            schedule = LeaderElectionSchedule.from_params(params)
        elif self.protocol == "ben_or":
            # Crash rounds are sampled against the synchronous timetable;
            # a delayed run stretches past it, which only means the latest
            # sampled crashes land while it is still running.
            return ben_or_horizon() + self.extra_rounds
        else:
            schedule = AgreementSchedule.from_params(params)
        return schedule.last_round + self.extra_rounds

    def to_dict(self) -> Dict[str, Any]:
        return {
            "protocol": self.protocol,
            "n": self.n,
            "alpha": self.alpha,
            "inputs": list(self.inputs)
            if not isinstance(self.inputs, str)
            else self.inputs,
            "fast_constants": self.fast_constants,
            "extra_rounds": self.extra_rounds,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FuzzScenario":
        inputs = data.get("inputs", "mixed")
        if not isinstance(inputs, str):
            inputs = tuple(int(b) for b in inputs)
        return cls(
            protocol=str(data["protocol"]),
            n=int(data.get("n", 64)),
            alpha=float(data.get("alpha", 0.5)),
            inputs=inputs,
            fast_constants=bool(data.get("fast_constants", True)),
            extra_rounds=int(data.get("extra_rounds", 0)),
        )


@dataclass
class FuzzCase:
    """A reproducer: scenario + seed + schedule (+ observed violations)."""

    scenario: FuzzScenario
    seed: int
    script: CrashScript
    violations: List[str] = field(default_factory=list)

    @property
    def signature(self) -> Tuple[str, ...]:
        """Coarse failure classes, for shrink-preservation checks."""
        return classify(self.violations)

    @property
    def is_finding(self) -> bool:
        """True when every violation is fault-fragile (journalled, not a
        campaign failure): the sampled faults void the broken guarantee."""
        signature = self.signature
        return bool(signature) and all(
            cls in FRAGILE_PREFIXES for cls in signature
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "version": 2,
            "scenario": self.scenario.to_dict(),
            "seed": self.seed,
            "script": self.script.to_dict(),
            "violations": list(self.violations),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FuzzCase":
        return cls(
            scenario=FuzzScenario.from_dict(data["scenario"]),
            seed=int(data["seed"]),
            script=as_script(data["script"]),
            violations=[str(v) for v in data.get("violations", [])],
        )

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FuzzCase":
        return cls.from_dict(json.loads(text))


def classify(violations: Sequence[str]) -> Tuple[str, ...]:
    """Sorted failure classes of a violation list.

    ``"oracle"`` for problem-definition breaks, ``"engine"`` for engine
    exceptions, ``"byzantine"``/``"async"`` for fault-fragile findings
    (oracle breaks excused by the sampled fault model), ``"model"`` for
    validator findings — shrinking preserves this set, so a minimised
    script still fails *the same way*.
    """
    known = ("oracle", "engine") + FRAGILE_PREFIXES
    classes = set()
    for violation in violations:
        prefix = violation.split(":", 1)[0].strip()
        classes.add(prefix if prefix in known else "model")
    return tuple(sorted(classes))


def run_scenario(
    scenario: FuzzScenario, seed: int, adversary: Adversary
) -> Tuple[List[str], Optional[Any]]:
    """Run one scenario under ``adversary`` and return (violations, result).

    Engine exceptions become ``"engine: ..."`` violations (the run has no
    result then); otherwise violations combine the model validator and
    the protocol oracle.

    A version-2 :class:`CrashScript` carries its own Byzantine plan and
    delivery schedule: both are handed to the runner (which swaps the
    lying nodes' protocols and configures the network), and oracle
    violations the sampled faults excuse are downgraded to journalled
    findings — consistently here, so replay and shrink classify a case
    exactly as the original fuzz trial did.
    """
    params = scenario.params()
    byzantine = None
    delivery = None
    fragile_prefix: Optional[str] = None
    if isinstance(adversary, CrashScript):
        if adversary.byzantine.modes:
            byzantine = adversary.byzantine
            fragile_prefix = "byzantine"
        if not adversary.delivery.is_synchronous:
            delivery = adversary.delivery
            if (
                fragile_prefix is None
                and scenario.protocol not in DELAY_TOLERANT
            ):
                fragile_prefix = "async"
    try:
        if scenario.protocol == "election":
            result = elect_leader(
                n=scenario.n,
                alpha=scenario.alpha,
                seed=seed,
                adversary=adversary,
                params=params,
                collect_trace=True,
                extra_rounds=scenario.extra_rounds,
                delivery=delivery,
                byzantine=byzantine,
            )
        elif scenario.protocol == "ben_or":
            result = _run_ben_or(
                scenario, seed, adversary, delivery, byzantine, params
            )
        else:
            result = agree(
                n=scenario.n,
                alpha=scenario.alpha,
                inputs=scenario.inputs,
                seed=seed,
                adversary=adversary,
                params=params,
                collect_trace=True,
                extra_rounds=scenario.extra_rounds,
                delivery=delivery,
                byzantine=byzantine,
            )
    except ReproError as exc:
        return [f"engine: {type(exc).__name__}: {exc}"], None

    run = RunResult(
        n=result.n,
        protocols=[],
        metrics=result.metrics,
        trace=result.trace,
        faulty=result.faulty,
        crashed=result.crashed,
        rounds=result.rounds,
        horizon=result.horizon,
        max_delay=result.max_delay,
    )
    violations = [f"model: {v}" for v in validate_run(run)]
    if scenario.protocol == "election":
        oracle_violations = leader_election_oracle(result)
    else:
        oracle_violations = agreement_oracle(result)
    if fragile_prefix is not None:
        oracle_violations = downgrade_fragile(
            oracle_violations, prefix=fragile_prefix
        )
    violations.extend(oracle_violations)
    return violations, result


def _run_ben_or(
    scenario: FuzzScenario,
    seed: int,
    adversary: Adversary,
    delivery,
    byzantine,
    params: Params,
) -> AgreementResult:
    """Run Ben-Or and adapt its outcome to an :class:`AgreementResult`.

    The adapter lets the ordinary agreement oracle and the model validator
    judge Ben-Or runs: decisions become :class:`~repro.types.Decision`
    values (alive nodes without one are ``UNDECIDED``, a liveness matter
    the safety oracle ignores).
    """
    input_bits = make_inputs(scenario.n, scenario.inputs, seed)
    outcome = ben_or_consensus(
        n=scenario.n,
        inputs=input_bits,
        seed=seed,
        adversary=adversary,
        faulty_count=params.max_faulty,
        delivery=delivery,
        byzantine=byzantine,
        collect_trace=True,
    )
    if isinstance(adversary, CrashScript):
        adversary_name = adversary.name()
    else:
        adversary_name = getattr(
            adversary, "label", type(adversary).__name__
        )
    decisions = {
        u: Decision.of(outcome.decisions[u])
        if u in outcome.decisions
        else Decision.UNDECIDED
        for u in range(scenario.n)
        if u not in outcome.crashed
    }
    return AgreementResult(
        n=outcome.n,
        alpha=scenario.alpha,
        seed=seed,
        adversary=str(adversary_name),
        inputs=input_bits,
        faulty=outcome.faulty,
        crashed=outcome.crashed,
        metrics=outcome.metrics,
        trace=outcome.trace,
        max_delay=outcome.max_delay,
        decisions=decisions,
    )


def replay_case(case: FuzzCase) -> List[str]:
    """Re-run a recorded case and return the violations it produces now."""
    violations, _ = run_scenario(case.scenario, case.seed, case.script)
    return violations


def _fuzz_trial(
    seed: int = 0,
    scenario: Optional[Mapping[str, Any]] = None,
    config: Optional[GrammarConfig] = None,
) -> Optional[Dict[str, Any]]:
    """Picklable pool-worker trial: one fuzz attempt → failing-case dict.

    The scenario crosses the process boundary as its ``to_dict()`` form
    and a failing case comes back the same way, so the parent's
    :class:`FuzzCase` (and its :class:`CrashScript`) is bit-identical to
    what a serial run would have recorded — ``repro replay`` of a
    parallel-found failure never depends on ``--jobs``.
    """
    assert scenario is not None
    case = fuzz_one(FuzzScenario.from_dict(scenario), seed, config=config)
    return None if case is None else case.to_dict()


def fuzz_one(
    scenario: FuzzScenario,
    seed: int,
    config: Optional[GrammarConfig] = None,
) -> Optional[FuzzCase]:
    """One fuzz trial; a :class:`FuzzCase` when it failed, else ``None``.

    Crash-only grammars sample lazily from the engine's adversary stream
    (:class:`FuzzedAdversary`); extended grammars sample the script
    eagerly from a seed-derived stream, because Byzantine protocol swaps
    and the delay bound must be fixed before the network exists.  Either
    way the realised script is a pure function of ``(scenario, seed,
    config)``.
    """
    if config is not None and config.extended:
        family = SCENARIO_MODES.get(scenario.protocol, ())
        effective = replace(
            config,
            byzantine_modes=tuple(
                mode for mode in config.byzantine_modes if mode in family
            ),
        )
        rng = random.Random(derive_seed(seed, "chaos", "script"))
        script = sample_script(
            rng,
            n=scenario.n,
            max_faulty=scenario.params().max_faulty,
            horizon=scenario.horizon(),
            config=effective,
            label=f"fuzz@{seed}",
        )
        violations, _ = run_scenario(scenario, seed, script)
        if not violations:
            return None
        return FuzzCase(
            scenario=scenario,
            seed=seed,
            script=script,
            violations=violations,
        )
    adversary = FuzzedAdversary(
        horizon=scenario.horizon(),
        config=config,
        label=f"fuzz@{seed}",
    )
    violations, _ = run_scenario(scenario, seed, adversary)
    if not violations:
        return None
    assert adversary.script is not None
    return FuzzCase(
        scenario=scenario,
        seed=seed,
        script=adversary.script,
        violations=violations,
    )


@dataclass
class FuzzReport:
    """Outcome of one fuzzing campaign."""

    attempted: int = 0
    failures: List[FuzzCase] = field(default_factory=list)
    #: Fault-fragile cases (``byzantine:``/``async:`` only): shrunk and
    #: journalled like failures, but they do not fail the campaign — they
    #: are the measured result of fuzzing beyond the crash model.
    findings: List[FuzzCase] = field(default_factory=list)
    elapsed_seconds: float = 0.0
    #: (scenario protocol, seed) pairs attempted, for reproducibility.
    trials: List[Tuple[str, int]] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        """True when no trial produced a *hard* violation (crash-safe
        oracles, model validator, engine contracts all held)."""
        return not self.failures

    def summary(self) -> Dict[str, Any]:
        return {
            "attempted": self.attempted,
            "failures": len(self.failures),
            "findings": len(self.findings),
            "clean": self.clean,
            "elapsed_seconds": round(self.elapsed_seconds, 3),
        }


def fuzz(
    scenarios: Sequence[FuzzScenario],
    seeds: int = 50,
    master_seed: int = 0,
    budget_seconds: Optional[float] = None,
    config: Optional[GrammarConfig] = None,
    shrink_failures: bool = True,
    jobs: int = 1,
    progress: ProgressSpec = False,
    journal: Optional[Any] = None,
    manifest: Optional[Manifest] = None,
) -> FuzzReport:
    """Fuzz each scenario over derived seeds (or until the time budget).

    With ``budget_seconds`` set, trials keep running round-robin over the
    scenarios until the budget expires (at least one trial per scenario
    always runs); otherwise exactly ``seeds`` trials run per scenario.
    Failures are shrunk to minimal reproducers unless
    ``shrink_failures=False``.

    ``jobs`` > 1 shards the seed stream over a process pool.  Seed
    derivation is identical to serial (so every failing case replays
    with ``jobs=1``), failures are reported in serial trial order, and
    shrinking always happens in the parent.  In budget mode parallel
    trials are dispatched in waves of ``jobs`` seed indices, with the
    budget checked between waves.

    Observability: ``progress=True`` emits a stderr heartbeat;
    ``journal`` (a path or :class:`~repro.exec.Journal`) records one
    JSONL line per trial — key, protocol, seed, status ``ok`` /
    ``violation``, and the failure signature — written by the parent
    only; ``manifest`` is embedded in the journal as a
    ``{"kind": "manifest"}`` record so ``repro report <journal>`` can
    render the campaign's provenance.
    """
    from .shrink import shrink_case

    if not scenarios:
        raise ConfigurationError("need at least one scenario")
    from ..exec.journal import Journal
    from ..parallel import resolve_jobs

    workers = resolve_jobs(jobs)
    report = FuzzReport()
    start = time.monotonic()
    if journal is not None and not isinstance(journal, Journal):
        journal = Journal(journal)
    if journal is not None:
        journal.clear()
        if manifest is not None:
            journal.append(manifest.journal_record())
    reporter = ensure_progress(
        progress,
        total=None if budget_seconds is not None else seeds * len(scenarios),
        label="fuzz",
    )

    def shrink(case: FuzzCase) -> FuzzCase:
        return shrink_case(case) if shrink_failures else case

    def journal_trial(
        scenario: FuzzScenario, trial_seed: int, case: Optional[FuzzCase]
    ) -> None:
        if journal is None:
            return
        if case is None:
            status = "ok"
        elif case.is_finding:
            status = "finding"
        else:
            status = "violation"
        record: Dict[str, Any] = {
            "key": f"{scenario.protocol}@{trial_seed}",
            "protocol": scenario.protocol,
            "seed": trial_seed,
            "attempts": 1,
            "status": status,
            "value": {"violations": 0} if case is None else None,
        }
        if case is not None:
            record["signature"] = list(case.signature)
            record["violations"] = len(case.violations)
            record["script"] = case.script.to_dict()
        journal.append(record)

    def account(
        scenario: FuzzScenario, trial_seed: int, case: Optional[FuzzCase]
    ) -> None:
        report.trials.append((scenario.protocol, trial_seed))
        report.attempted += 1
        if case is not None:
            if case.is_finding:
                report.findings.append(case)
            else:
                report.failures.append(case)
        journal_trial(scenario, trial_seed, case)
        reporter.advance(
            completed=1,
            attempted=1,
            failed=0 if case is None or case.is_finding else 1,
        )

    if workers > 1:
        from ..parallel import TrialSpec, run_trials

        reporter.set_workers(workers)

        def run_wave(indices: Sequence[int]) -> None:
            pairs = [
                (scenario, derive_seed(master_seed, "fuzz", scenario.protocol, index))
                for index in indices
                for scenario in scenarios
            ]
            specs = [
                TrialSpec(
                    index=spec_index,
                    task=_fuzz_trial,
                    seed=trial_seed,
                    point={"scenario": scenario.to_dict(), "config": config},
                )
                for spec_index, (scenario, trial_seed) in enumerate(pairs)
            ]
            try:
                payloads = run_trials(specs, jobs=workers)
            except TrialFailed:
                # Pool-level failure (a worker died, or a trial raised
                # outside the oracle net): redo the wave serially so the
                # campaign keeps its seed-for-seed accounting instead of
                # dying mid-fuzz.  A deterministic trial error reproduces
                # here with full context, exactly as under jobs=1.
                payloads = [spec.run() for spec in specs]
            for (scenario, trial_seed), payload in zip(pairs, payloads):
                case = (
                    None
                    if payload is None
                    else shrink(FuzzCase.from_dict(payload))
                )
                account(scenario, trial_seed, case)

        if budget_seconds is None:
            run_wave(range(seeds))
        else:
            index = 0
            while index == 0 or time.monotonic() - start < budget_seconds:
                run_wave(range(index, index + workers))
                index += workers
        report.elapsed_seconds = time.monotonic() - start
        reporter.finish()
        return report

    index = 0
    while True:
        if budget_seconds is None:
            if index >= seeds:
                break
        elif index > 0 and time.monotonic() - start >= budget_seconds:
            break
        for scenario in scenarios:
            trial_seed = derive_seed(master_seed, "fuzz", scenario.protocol, index)
            case = fuzz_one(scenario, trial_seed, config=config)
            account(scenario, trial_seed, None if case is None else shrink(case))
        index += 1
    report.elapsed_seconds = time.monotonic() - start
    reporter.finish()
    return report


def default_scenarios(
    n: int = 64,
    alpha: float = 0.5,
    protocols: Sequence[str] = ("election", "agreement"),
    fast_constants: bool = True,
    inputs: Union[str, Tuple[int, ...]] = "mixed",
) -> List[FuzzScenario]:
    """The standard scenario pair (leader election + agreement).

    ``ben_or`` is opt-in (pass it in ``protocols``): it is a baseline,
    not one of the paper's protocols."""
    return [
        FuzzScenario(
            protocol=protocol,
            n=n,
            alpha=alpha,
            inputs=inputs,
            fast_constants=fast_constants,
        )
        for protocol in protocols
    ]
