"""Ben-Or randomized binary consensus, delay-tolerant by construction.

The paper's protocols (and every baseline so far) assume *synchronous*
delivery: a message sent in round ``r`` arrives in round ``r + 1``.  This
module lands the repo's first protocol designed for the **bounded-delay**
model (:mod:`repro.sim.delivery`): Ben-Or's classic two-stage phase
structure decides by *counting certificates*, never by round arithmetic,
so the same state machine is correct for every delay bound Δ — only its
timetable stretches by a factor of ``1 + Δ``.

Phase ``p`` (all nodes in lockstep, each stage spanning ``1 + Δ`` rounds
so every message sent at a stage boundary has arrived by the next one):

1. **report** — broadcast ``(p, estimate)``.  A value reported by a
   strict majority of *all* nodes (``> n/2``) becomes the proposal;
   otherwise propose ⊥.  Two different values can never both clear the
   bar (each node reports one value per phase), which is the safety core.
2. **propose** — broadcast ``(p, value-or-⊥)``.  Seeing ``f + 1``
   proposals for the same value ``v`` decides ``v`` (at least one of the
   proposers is non-faulty, so every other node saw ``v`` proposed at
   least once and adopts it); seeing at least one ``v`` adopts it as the
   new estimate; seeing only ⊥ flips a fair coin.

A decided node broadcasts a ``decide`` certificate once and halts;
receivers adopt it immediately.  That certificate is exactly Ben-Or's
Byzantine weakness: it is unauthenticated, so a single lying node can
forge one (:class:`BenOrDecideForger`) and collapse validity — the
protocol tolerates ``f < n/2`` *crash* faults, not one liar.  The chaos
layer's ``ben_or`` scenario measures both facts.

Expected phases are constant under full delivery (all nodes see the same
report multiset, so a coin-round produces a strict majority with constant
probability); the horizon caps at :data:`DEFAULT_MAX_PHASES` phases —
running out costs liveness only, never safety.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Optional, Sequence

from ..faults.adversary import Adversary
from ..faults.byzantine import (
    ByzantineAdversary,
    ByzantinePlan,
    ProtocolFactory,
    plan_factory,
)
from ..sim.delivery import SYNCHRONOUS, DeliverySchedule
from ..sim.message import Delivery, Message
from ..sim.network import Network
from ..sim.node import Context, Protocol
from ..types import NodeId
from .base import BaselineOutcome, evaluate_explicit_agreement

MSG_REPORT = "BO_R"  # (phase, bit)
MSG_PROPOSAL = "BO_P"  # (phase, value) — value 0/1 or BOT
MSG_DECIDE = "BO_D"  # (bit,) — unauthenticated decide certificate

#: The ⊥ proposal ("no majority seen this phase").
BOT = 2

#: Phase cap: exceeding it costs liveness (undecided), never safety.
DEFAULT_MAX_PHASES = 20


def ben_or_horizon(max_delay: int = 0, max_phases: int = DEFAULT_MAX_PHASES) -> int:
    """Nominal round horizon: two stages per phase, each ``1 + Δ`` rounds,
    plus one stage of decide-certificate propagation."""
    step = 1 + max_delay
    return 2 * step * max_phases + step + 1


class BenOrProtocol(Protocol):
    """One node of Ben-Or consensus, parameterised by the delay bound."""

    def __init__(
        self,
        node_id: NodeId,
        n: int,
        input_bit: int,
        faulty_bound: int,
        max_delay: int = 0,
        max_phases: int = DEFAULT_MAX_PHASES,
    ) -> None:
        if input_bit not in (0, 1):
            raise ValueError(f"input bit must be 0 or 1, got {input_bit}")
        self.node_id = node_id
        self.n = n
        self.estimate = input_bit
        self.faulty_bound = faulty_bound
        self.step = 1 + max_delay
        self.max_phases = max_phases
        self.phase = 1
        self.decided: Optional[int] = None
        self._reports: "Counter[int]" = Counter()
        self._proposals: "Counter[int]" = Counter()
        self._peers: List[NodeId] = []
        #: Round of the next stage boundary; "propose"/"report" says which.
        self._action_round = 0
        self._stage = "propose"

    # -- lifecycle -------------------------------------------------------

    def on_start(self, ctx: Context) -> None:
        self._peers = ctx.all_ports()
        self._reports[self.estimate] += 1  # count own report
        self._broadcast(ctx, Message(MSG_REPORT, (self.phase, self.estimate)))
        self._stage = "propose"
        self._action_round = 1 + self.step
        ctx.wake_at(self._action_round)

    def on_round(self, ctx: Context, inbox: List[Delivery]) -> None:
        self._ingest(ctx, inbox)
        if self.decided is not None:
            return
        if self.phase > self.max_phases:
            ctx.idle()  # out of phases: stay undecided
            return
        if ctx.round < self._action_round:
            # Woken early by a delivery mid-stage: keep buffering.
            ctx.wake_at(self._action_round)
            return
        if self._stage == "propose":
            self._close_report_stage(ctx)
        else:
            self._close_proposal_stage(ctx)

    def on_stop(self, ctx: Context) -> None:
        """Undecided at the horizon stays undecided (liveness loss only)."""

    # -- stages ----------------------------------------------------------

    def _close_report_stage(self, ctx: Context) -> None:
        value = BOT
        for bit, count in self._reports.items():
            if 2 * count > self.n:
                value = bit
                break
        self._proposals[value] += 1  # count own proposal
        self._broadcast(ctx, Message(MSG_PROPOSAL, (self.phase, value)))
        self._stage = "report"
        self._action_round += self.step
        ctx.wake_at(self._action_round)

    def _close_proposal_stage(self, ctx: Context) -> None:
        supported = {
            value: count
            for value, count in self._proposals.items()
            if value != BOT
        }
        if supported:
            # At most one value can have majority-backed proposals, but a
            # Byzantine proposer may inject a second: take the best-backed
            # (ties to the smaller bit) so honest nodes stay deterministic.
            best = min(supported, key=lambda v: (-supported[v], v))
            if supported[best] >= self.faulty_bound + 1:
                self._decide(ctx, best)
                return
            self.estimate = best
        else:
            self.estimate = 1 if ctx.rng.random() < 0.5 else 0
        self.phase += 1
        if self.phase > self.max_phases:
            ctx.idle()  # out of phases: stay undecided
            return
        self._reports = Counter()
        self._proposals = Counter()
        self._reports[self.estimate] += 1  # count own report
        self._broadcast(ctx, Message(MSG_REPORT, (self.phase, self.estimate)))
        self._stage = "propose"
        self._action_round += self.step
        ctx.wake_at(self._action_round)

    # -- plumbing --------------------------------------------------------

    def _ingest(self, ctx: Context, inbox: List[Delivery]) -> None:
        for delivery in inbox:
            if delivery.kind == MSG_REPORT:
                phase, bit = delivery.fields
                if phase == self.phase:
                    self._reports[bit] += 1
            elif delivery.kind == MSG_PROPOSAL:
                phase, value = delivery.fields
                if phase == self.phase:
                    self._proposals[value] += 1
            elif delivery.kind == MSG_DECIDE and self.decided is None:
                self._decide(ctx, delivery.fields[0])

    def _decide(self, ctx: Context, bit: int) -> None:
        self.decided = bit
        self._broadcast(ctx, Message(MSG_DECIDE, (bit,)))
        ctx.halt()

    def _broadcast(self, ctx, message: Message) -> None:
        for dst in self._peers:
            ctx.send(dst, message)


class BenOrDecideForger(Protocol):
    """Byzantine Ben-Or node: forges a decide certificate for 0.

    The certificate is unauthenticated, so every honest node adopts the
    forged 0 on receipt — one liar collapses validity even though Ben-Or
    tolerates ``f < n/2`` crashes.  This is the ``zero_forger`` mode of
    the ``ben_or`` chaos scenario.
    """

    def __init__(self, node_id: NodeId, n: int) -> None:
        self.node_id = node_id
        self.n = n
        self.decided: Optional[int] = 0

    def on_start(self, ctx: Context) -> None:
        forged = Message(MSG_DECIDE, (0,))
        for dst in ctx.all_ports():
            ctx.send(dst, forged)
        ctx.halt()


def ben_or_attackers(n: int) -> Dict[str, ProtocolFactory]:
    """Attacker constructors for the Ben-Or family."""
    return {
        "zero_forger": lambda u: BenOrDecideForger(u, n),
    }


def ben_or_consensus(
    n: int,
    inputs: Sequence[int],
    seed: int = 0,
    adversary: Optional[Adversary] = None,
    faulty_count: Optional[int] = None,
    delivery: Optional[DeliverySchedule] = None,
    byzantine: Optional[ByzantinePlan] = None,
    max_phases: int = DEFAULT_MAX_PHASES,
    collect_trace: bool = False,
    timers=None,
) -> BaselineOutcome:
    """Run Ben-Or consensus under ``delivery`` and evaluate it.

    ``faulty_count`` defaults to the protocol's resilience bound
    ``(n - 1) // 2``; a :class:`ByzantinePlan` swaps the designated
    nodes' protocols (omission wraps, ``zero_forger`` forges decide
    certificates) and charges them to the same budget.
    """
    if len(inputs) != n:
        raise ValueError(f"got {len(inputs)} inputs for n={n}")
    if faulty_count is None:
        faulty_count = (n - 1) // 2
    schedule = delivery if delivery is not None else SYNCHRONOUS
    max_delay = schedule.max_delay

    def honest(u: NodeId) -> Protocol:
        return BenOrProtocol(
            u, n, inputs[u], faulty_count, max_delay, max_phases
        )

    factory: ProtocolFactory = honest
    engine_adversary = adversary if adversary is not None else Adversary()
    if byzantine is not None and byzantine.modes:
        engine_adversary = ByzantineAdversary(byzantine, engine_adversary)
        factory = plan_factory(byzantine, honest, ben_or_attackers(n))

    network = Network(
        n,
        factory,
        seed=seed,
        adversary=engine_adversary,
        max_faulty=faulty_count,
        inputs=inputs,
        collect_trace=collect_trace,
        timers=timers,
        delivery=schedule,
    )
    run = network.run(ben_or_horizon(max_delay, max_phases))
    outcome = BaselineOutcome(
        protocol="ben-or",
        n=n,
        faulty=run.faulty,
        crashed=run.crashed,
        metrics=run.metrics,
        inputs=list(inputs),
        trace=run.trace,
        max_delay=run.max_delay,
    )
    for u in run.alive:
        protocol = run.protocol(u)
        decided = getattr(protocol, "decided", None)
        if decided is not None:
            outcome.decisions[u] = decided
    alive_honest = [u for u in run.alive if u not in run.faulty]
    outcome.success = evaluate_explicit_agreement(outcome, alive_honest)
    return outcome
