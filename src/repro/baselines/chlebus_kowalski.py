"""Randomized gossip consensus — Chlebus–Kowalski [36] style.

Table I row: explicit agreement, O(n log n) messages and O(log n) rounds
*in expectation*, tolerates a linear fraction of crash faults.

Simplified construction (documented deviation — the original's gossip
schedule is deterministic-expander based; we use uniform push gossip,
which has the same message/round asymptotics in expectation):

* every node keeps a current estimate (initially its input bit);
* for ``T = ceil(c log n)`` rounds, every node pushes its estimate to
  ``fanout`` uniformly random nodes each round (total ``fanout * n * T =
  O(n log n)`` messages — the Table I column);
* estimates improve towards the minimum; after ``T`` rounds every node
  decides its estimate.

A value held by at least one non-faulty node at any point spreads to all
alive nodes in O(log n) rounds w.h.p. (standard push-gossip epidemics,
including the coupon-collector tail — hence pushing every round, not only
on change), so all alive nodes decide the same minimum w.h.p.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

from ..faults.adversary import Adversary
from ..sim.message import Delivery, Message
from ..sim.network import Network
from ..sim.node import Context, Protocol
from .base import BaselineOutcome, evaluate_explicit_agreement

MSG_GOSSIP = "CK_GOS"  # node -> node: (bit,)


def gossip_rounds(n: int, factor: float = 4.0) -> int:
    """``ceil(c log n)`` gossip rounds."""
    return max(2, math.ceil(factor * math.log(n)))


class GossipConsensusProtocol(Protocol):
    """One node of the push-gossip consensus."""

    def __init__(
        self, node_id: int, n: int, input_bit: int, rounds: int, fanout: int = 2
    ) -> None:
        if input_bit not in (0, 1):
            raise ValueError(f"input bit must be 0 or 1, got {input_bit}")
        self.node_id = node_id
        self.n = n
        self.rounds = rounds
        self.fanout = min(fanout, n - 1)
        self.estimate = input_bit
        self.decided: Optional[int] = None

    def on_start(self, ctx: Context) -> None:
        self._push(ctx)

    def on_round(self, ctx: Context, inbox: List[Delivery]) -> None:
        # Fold in arrivals first: pushes from round ``rounds`` land in
        # round ``rounds + 1`` and still count towards the decision.
        for delivery in inbox:
            if delivery.kind == MSG_GOSSIP and delivery.fields[0] < self.estimate:
                self.estimate = delivery.fields[0]
        if ctx.round > self.rounds:
            if self.decided is None:
                self.decided = self.estimate
            ctx.idle()
            return
        self._push(ctx)

    def _push(self, ctx: Context) -> None:
        message = Message(MSG_GOSSIP, (self.estimate,))
        for target in ctx.sample_nodes(self.fanout):
            ctx.send(target, message)
        # Stay active (no ctx.idle()): we push again every round until the
        # decision round fires.

    def on_stop(self, ctx: Context) -> None:
        if self.decided is None:
            self.decided = self.estimate


def gossip_consensus(
    n: int,
    inputs: Sequence[int],
    seed: int = 0,
    adversary: Optional[Adversary] = None,
    faulty_count: int = 0,
    round_factor: float = 4.0,
    fanout: int = 2,
) -> BaselineOutcome:
    """Run the [36]-style gossip consensus and evaluate it.

    Success: every alive node decided the same valid bit.
    """
    if len(inputs) != n:
        raise ValueError(f"got {len(inputs)} inputs for n={n}")
    rounds = gossip_rounds(n, round_factor)
    network = Network(
        n,
        lambda u: GossipConsensusProtocol(u, n, inputs[u], rounds, fanout),
        seed=seed,
        adversary=adversary or Adversary(),
        max_faulty=faulty_count,
        inputs=inputs,
    )
    run = network.run(rounds + 2)
    outcome = BaselineOutcome(
        protocol="chlebus-kowalski",
        n=n,
        faulty=run.faulty,
        crashed=run.crashed,
        metrics=run.metrics,
        inputs=list(inputs),
    )
    for u in run.alive:
        protocol: GossipConsensusProtocol = run.protocol(u)  # type: ignore[assignment]
        if protocol.decided is not None:
            outcome.decisions[u] = protocol.decided
    outcome.success = evaluate_explicit_agreement(outcome, run.alive)
    return outcome
