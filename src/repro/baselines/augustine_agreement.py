"""Fault-free sublinear implicit agreement — Augustine et al. [23].

The fault-free reference for experiment E12's agreement column.  The
committee structure mirrors :mod:`.kutten_le`: a ``Theta(log n)``
candidate committee exchanges input bits through ``Theta((n log n)^1/2)``
random referees and decides the minimum bit observed (zero-biased, like
the paper's Section V-A protocol at ``alpha = 1``).

Message complexity ``O(n^1/2 log^{3/2} n)``, 2 rounds.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

from ..sim.message import Delivery, Message
from ..sim.network import Network
from ..sim.node import Context, Protocol
from .base import BaselineOutcome, evaluate_implicit_agreement

MSG_BIT = "AAG_BIT"  # candidate -> referee: (bit,)
MSG_MIN = "AAG_MIN"  # referee -> candidate: (min_bit,)


class AugustineAgreementProtocol(Protocol):
    """One node of the [23]-style fault-free implicit agreement."""

    def __init__(self, node_id: int, n: int, input_bit: int,
                 candidate_factor: float = 6.0,
                 referee_factor: float = 2.0) -> None:
        if input_bit not in (0, 1):
            raise ValueError(f"input bit must be 0 or 1, got {input_bit}")
        self.node_id = node_id
        self.n = n
        self.input_bit = input_bit
        self.candidate_factor = candidate_factor
        self.referee_factor = referee_factor
        self.is_candidate = False
        self.decided: Optional[int] = None
        self._observed_min: Optional[int] = None

    @property
    def candidate_probability(self) -> float:
        """``c log n / n``."""
        return min(1.0, self.candidate_factor * math.log(self.n) / self.n)

    @property
    def referee_count(self) -> int:
        """``c' sqrt(n log n)``."""
        raw = self.referee_factor * math.sqrt(self.n * math.log(self.n))
        return min(self.n - 1, max(1, math.ceil(raw)))

    def on_start(self, ctx: Context) -> None:
        self.is_candidate = ctx.rng.random() < self.candidate_probability
        if self.is_candidate:
            message = Message(MSG_BIT, (self.input_bit,))
            for referee in ctx.sample_nodes(self.referee_count):
                ctx.send(referee, message)
        ctx.idle()

    def on_round(self, ctx: Context, inbox: List[Delivery]) -> None:
        bits = [d.fields[0] for d in inbox if d.kind == MSG_BIT]
        minima = [d.fields[0] for d in inbox if d.kind == MSG_MIN]
        if bits:
            reply = Message(MSG_MIN, (min(bits),))
            for delivery in inbox:
                if delivery.kind == MSG_BIT:
                    ctx.send(delivery.sender, reply)
        if minima:
            observed = min(minima)
            if self._observed_min is None or observed < self._observed_min:
                self._observed_min = observed
        ctx.idle()

    def on_stop(self, ctx: Context) -> None:
        if not self.is_candidate:
            return
        if self._observed_min is not None:
            self.decided = min(self._observed_min, self.input_bit)
        else:
            self.decided = self.input_bit


def augustine_agree(
    n: int,
    inputs: Sequence[int],
    seed: int = 0,
    candidate_factor: float = 6.0,
    referee_factor: float = 2.0,
) -> BaselineOutcome:
    """Run the fault-free [23]-style implicit agreement and evaluate it."""
    if len(inputs) != n:
        raise ValueError(f"got {len(inputs)} inputs for n={n}")
    network = Network(
        n,
        lambda u: AugustineAgreementProtocol(
            u, n, inputs[u], candidate_factor, referee_factor
        ),
        seed=seed,
    )
    run = network.run(4)
    outcome = BaselineOutcome(
        protocol="augustine-agreement",
        n=n,
        faulty=run.faulty,
        crashed=run.crashed,
        metrics=run.metrics,
        inputs=list(inputs),
    )
    for u in range(n):
        protocol: AugustineAgreementProtocol = run.protocol(u)  # type: ignore[assignment]
        if protocol.decided is not None:
            outcome.decisions[u] = protocol.decided
    outcome.success = evaluate_implicit_agreement(outcome, run.alive)
    return outcome
