"""Fault-free sublinear implicit leader election — Kutten et al. [21].

The reference point for "the fault-tolerant bound matches the fault-free
one" (paper, Section I-A and experiment E12).  Algorithm (the O(1)-round
randomized election of [21], simplified to its core):

* every node draws a rank in ``[1, n^4]`` and becomes a *candidate* with
  probability ``c log n / n`` (expected ``c log n`` candidates);
* each candidate sends its rank to ``c' (n log n)^(1/2)`` random referees
  — by a birthday argument every pair of candidates hits a common referee
  w.h.p.;
* each referee replies to each of its candidates with the maximum rank it
  received;
* a candidate that sees only its own rank as every reply's maximum outputs
  ELECTED; all other nodes output NON_ELECTED.

Message complexity ``O(n^1/2 log^{3/2} n)``, 2 rounds — exactly the
fault-free analogue of the Section IV-A structure (this is why the paper's
algorithm degenerates to [21] at ``alpha = 1``).
"""

from __future__ import annotations

import math
from typing import List, Optional

from ..sim.message import Delivery, Message
from ..sim.network import Network
from ..sim.node import Context, Protocol
from ..types import NodeState
from .base import BaselineOutcome

MSG_RANK = "KLE_RANK"  # candidate -> referee: (rank,)
MSG_MAX = "KLE_MAX"  # referee -> candidate: (max_rank,)


class KuttenLeaderElectionProtocol(Protocol):
    """One node of the [21]-style fault-free election."""

    def __init__(self, node_id: int, n: int, candidate_factor: float = 6.0,
                 referee_factor: float = 2.0) -> None:
        self.node_id = node_id
        self.n = n
        self.candidate_factor = candidate_factor
        self.referee_factor = referee_factor
        self.rank: Optional[int] = None
        self.is_candidate = False
        self.state = NodeState.UNDECIDED
        self._referees: List[int] = []
        self._reply_max: Optional[int] = None
        self._senders: List[int] = []

    @property
    def candidate_probability(self) -> float:
        """``c log n / n`` — expected committee of ``c log n``."""
        return min(1.0, self.candidate_factor * math.log(self.n) / self.n)

    @property
    def referee_count(self) -> int:
        """``c' sqrt(n log n)`` referees per candidate."""
        raw = self.referee_factor * math.sqrt(self.n * math.log(self.n))
        return min(self.n - 1, max(1, math.ceil(raw)))

    def on_start(self, ctx: Context) -> None:
        self.rank = ctx.rng.randint(1, self.n**4)
        self.is_candidate = ctx.rng.random() < self.candidate_probability
        if self.is_candidate:
            self._referees = ctx.sample_nodes(self.referee_count)
            message = Message(MSG_RANK, (self.rank,))
            for referee in self._referees:
                ctx.send(referee, message)
        ctx.idle()

    def on_round(self, ctx: Context, inbox: List[Delivery]) -> None:
        ranks = [d.fields[0] for d in inbox if d.kind == MSG_RANK]
        maxima = [d.fields[0] for d in inbox if d.kind == MSG_MAX]
        if ranks:
            # Referee role: reply with the maximum rank seen.
            best = max(ranks)
            reply = Message(MSG_MAX, (best,))
            for delivery in inbox:
                if delivery.kind == MSG_RANK:
                    ctx.send(delivery.sender, reply)
        if maxima:
            observed = max(maxima)
            if self._reply_max is None or observed > self._reply_max:
                self._reply_max = observed
        ctx.idle()

    def on_stop(self, ctx: Context) -> None:
        if self.is_candidate and self._reply_max == self.rank:
            self.state = NodeState.ELECTED
        else:
            self.state = NodeState.NON_ELECTED


def kutten_elect_leader(
    n: int,
    seed: int = 0,
    candidate_factor: float = 6.0,
    referee_factor: float = 2.0,
) -> BaselineOutcome:
    """Run the fault-free [21]-style election and evaluate it.

    Success: exactly one node outputs ELECTED.
    """
    network = Network(
        n,
        lambda u: KuttenLeaderElectionProtocol(
            u, n, candidate_factor, referee_factor
        ),
        seed=seed,
    )
    run = network.run(4)
    outcome = BaselineOutcome(
        protocol="kutten-le",
        n=n,
        faulty=run.faulty,
        crashed=run.crashed,
        metrics=run.metrics,
    )
    for u in range(n):
        protocol: KuttenLeaderElectionProtocol = run.protocol(u)  # type: ignore[assignment]
        if protocol.state is NodeState.ELECTED:
            outcome.elected.append(u)
    outcome.success = len(outcome.elected) == 1
    return outcome
