"""Deterministic rotating-coordinator consensus ([35]/[37]-style row).

Table I's deterministic protocols run in ``O(f)`` rounds with ``Omega~(n)``
messages.  The classic representative: ``f + 1`` phases, phase ``i``
coordinated by node ``i`` (KT1: identities are global), coordinator
broadcasts its estimate and everyone adopts it.

Correctness under any crash adversary: at least one of the ``f + 1``
coordinators is non-faulty; after its phase all alive nodes hold its
estimate, and later coordinators can only re-broadcast that same value.

Messages ``O(n f)``, rounds ``O(f)``, tolerates any ``f < n``.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..faults.adversary import Adversary
from ..sim.message import Delivery, Message
from ..sim.network import Network
from ..sim.node import Context, Protocol
from ..types import Knowledge
from .base import BaselineOutcome, evaluate_explicit_agreement

MSG_ESTIMATE = "RC_EST"  # coordinator -> everyone: (bit,)


class RotatingCoordinatorProtocol(Protocol):
    """One node of the rotating-coordinator consensus."""

    def __init__(self, node_id: int, n: int, input_bit: int, phases: int) -> None:
        if input_bit not in (0, 1):
            raise ValueError(f"input bit must be 0 or 1, got {input_bit}")
        self.node_id = node_id
        self.n = n
        self.phases = phases
        self.estimate = input_bit
        self.decided: Optional[int] = None

    def on_start(self, ctx: Context) -> None:
        self._step(ctx)

    def on_round(self, ctx: Context, inbox: List[Delivery]) -> None:
        for delivery in inbox:
            if delivery.kind == MSG_ESTIMATE:
                # Adopt the coordinator's estimate unconditionally.
                self.estimate = delivery.fields[0]
        self._step(ctx)

    def _step(self, ctx: Context) -> None:
        phase = ctx.round  # one round per phase
        if phase > self.phases:
            if self.decided is None:
                self.decided = self.estimate
            ctx.idle()
            return
        coordinator = (phase - 1) % self.n
        if coordinator == self.node_id:
            message = Message(MSG_ESTIMATE, (self.estimate,))
            for node in range(self.n):
                if node != self.node_id:
                    ctx.send(node, message)
        # Stay active (no ctx.idle()): every node participates each phase.

    def on_stop(self, ctx: Context) -> None:
        if self.decided is None:
            self.decided = self.estimate


def rotating_coordinator_consensus(
    n: int,
    inputs: Sequence[int],
    seed: int = 0,
    adversary: Optional[Adversary] = None,
    faulty_count: int = 0,
) -> BaselineOutcome:
    """Run rotating-coordinator consensus (f + 1 phases) and evaluate it."""
    if len(inputs) != n:
        raise ValueError(f"got {len(inputs)} inputs for n={n}")
    phases = min(faulty_count + 1, n)
    network = Network(
        n,
        lambda u: RotatingCoordinatorProtocol(u, n, inputs[u], phases),
        seed=seed,
        adversary=adversary or Adversary(),
        max_faulty=faulty_count,
        inputs=inputs,
        knowledge=Knowledge.KT1,
    )
    run = network.run(phases + 2)
    outcome = BaselineOutcome(
        protocol="rotating-coordinator",
        n=n,
        faulty=run.faulty,
        crashed=run.crashed,
        metrics=run.metrics,
        inputs=list(inputs),
    )
    for u in run.alive:
        protocol: RotatingCoordinatorProtocol = run.protocol(u)  # type: ignore[assignment]
        if protocol.decided is not None:
            outcome.decisions[u] = protocol.decided
    outcome.success = evaluate_explicit_agreement(outcome, run.alive)
    return outcome
