"""Committee-based explicit crash agreement — Gilbert–Kowalski [24] style.

Table I row: O(n) messages in KT1 (O(n log n) when neighbours are unknown,
as the paper notes), O(log n) rounds, tolerates up to ``n/2 - 1`` crashes.

Simplified construction (documented deviation — the original uses a
recursive group hierarchy to shave the log factor and to defeat fully
adaptive committee-killing):

* a deterministic committee ``K = {0, .., k-1}``, ``k = ceil(c log n)``,
  is known to everyone (KT1: node IDs are global knowledge);
* round 1: every node sends its input bit to every committee member
  (``n k`` messages);
* the committee floods its minimum bit internally for ``ceil(log2 k) + 1``
  rounds (``k^2`` messages per round — committee members that have
  nothing new stay silent);
* the committee broadcasts the decision to everyone (``k n`` messages);
  every node decides the first bit it hears (minimum on ties).

Under a uniformly chosen faulty set of size ``< n/2`` the committee
contains a non-faulty member w.h.p. (``2^{-k}`` failure), which suffices
for the Table I comparison.  A fully adaptive adversary could crash the
fixed committee — that is exactly the weakness the original's group
hierarchy removes, and we do not claim it here.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

from ..faults.adversary import Adversary
from ..sim.message import Delivery, Message
from ..sim.network import Network
from ..sim.node import Context, Protocol
from ..types import Knowledge
from .base import BaselineOutcome, evaluate_explicit_agreement

MSG_INPUT = "GK_IN"  # node -> committee: (bit,)
MSG_FLOOD = "GK_FLOOD"  # committee internal: (bit,)
MSG_DECIDE = "GK_DEC"  # committee -> node: (bit,)


def committee_size(n: int, factor: float = 3.0) -> int:
    """``ceil(c log n)`` committee members, at most ``n``."""
    return min(n, max(1, math.ceil(factor * math.log(n))))


class CommitteeAgreementProtocol(Protocol):
    """One node of the committee-based explicit agreement."""

    def __init__(self, node_id: int, n: int, input_bit: int, k: int) -> None:
        if input_bit not in (0, 1):
            raise ValueError(f"input bit must be 0 or 1, got {input_bit}")
        self.node_id = node_id
        self.n = n
        self.input_bit = input_bit
        self.k = k
        self.decided: Optional[int] = None
        self._committee_min: Optional[int] = None
        self._flood_rounds = math.ceil(math.log2(max(2, k))) + 1
        self._broadcast_round = 2 + self._flood_rounds

    @property
    def in_committee(self) -> bool:
        """Deterministic committee membership (KT1 knowledge)."""
        return self.node_id < self.k

    def on_start(self, ctx: Context) -> None:
        message = Message(MSG_INPUT, (self.input_bit,))
        for member in range(self.k):
            if member != self.node_id:
                ctx.send(member, message)
        if self.in_committee:
            self._committee_min = self.input_bit
            ctx.wake_at(self._broadcast_round)
        else:
            ctx.idle()

    def on_round(self, ctx: Context, inbox: List[Delivery]) -> None:
        incoming_bits = [
            d.fields[0]
            for d in inbox
            if d.kind in (MSG_INPUT, MSG_FLOOD)
        ]
        decisions = [d.fields[0] for d in inbox if d.kind == MSG_DECIDE]

        if decisions and self.decided is None:
            self.decided = min(decisions)

        if not self.in_committee:
            ctx.idle()
            return

        if incoming_bits:
            observed = min(incoming_bits)
            if self._committee_min is None or observed < self._committee_min:
                self._committee_min = observed
                if ctx.round < self._broadcast_round:
                    # Flood the improvement to the rest of the committee.
                    flood = Message(MSG_FLOOD, (observed,))
                    for member in range(self.k):
                        if member != self.node_id:
                            ctx.send(member, flood)

        if ctx.round >= self._broadcast_round and self.decided is None:
            bit = self._committee_min if self._committee_min is not None else self.input_bit
            self.decided = bit
            decide = Message(MSG_DECIDE, (bit,))
            for node in range(self.n):
                if node != self.node_id:
                    ctx.send(node, decide)
            ctx.idle()
            return

        if ctx.round < self._broadcast_round:
            ctx.wake_at(self._broadcast_round)


def committee_agreement(
    n: int,
    inputs: Sequence[int],
    seed: int = 0,
    adversary: Optional[Adversary] = None,
    faulty_count: int = 0,
    committee_factor: float = 3.0,
) -> BaselineOutcome:
    """Run the [24]-style explicit agreement and evaluate it.

    Success: every alive node decided the same valid bit.
    """
    if len(inputs) != n:
        raise ValueError(f"got {len(inputs)} inputs for n={n}")
    k = committee_size(n, committee_factor)
    network = Network(
        n,
        lambda u: CommitteeAgreementProtocol(u, n, inputs[u], k),
        seed=seed,
        adversary=adversary or Adversary(),
        max_faulty=faulty_count,
        inputs=inputs,
        knowledge=Knowledge.KT1,
    )
    total_rounds = 2 + math.ceil(math.log2(max(2, k))) + 1 + 3
    run = network.run(total_rounds)
    outcome = BaselineOutcome(
        protocol="gilbert-kowalski",
        n=n,
        faulty=run.faulty,
        crashed=run.crashed,
        metrics=run.metrics,
        inputs=list(inputs),
    )
    for u in run.alive:
        protocol: CommitteeAgreementProtocol = run.protocol(u)  # type: ignore[assignment]
        if protocol.decided is not None:
            outcome.decisions[u] = protocol.decided
    outcome.success = evaluate_explicit_agreement(outcome, run.alive)
    return outcome
