"""Comparison protocols.

Table I of the paper compares its agreement algorithm against the known
crash-fault consensus protocols; Section III additionally cites the
fault-free sublinear protocols that this paper generalises.  This package
re-implements each comparator on the same simulator so experiment E9 can
measure them side by side:

* :mod:`~repro.baselines.kutten_le` — fault-free sublinear implicit leader
  election (Kutten, Pandurangan, Peleg, Robinson, Trehan — [21]).
* :mod:`~repro.baselines.augustine_agreement` — fault-free sublinear
  implicit agreement (Augustine, Molla, Pandurangan — [23]).
* :mod:`~repro.baselines.gilbert_kowalski` — committee-based explicit
  crash agreement in the style of Gilbert–Kowalski [24] (O(n log n)
  messages in KT0, tolerates < n/2 crashes).
* :mod:`~repro.baselines.chlebus_kowalski` — randomized gossip consensus
  in the style of Chlebus–Kowalski [36] (O(n log n) expected messages).
* :mod:`~repro.baselines.flooding` — deterministic flooding consensus
  (O(n^2) messages, f+1 rounds, tolerates any f < n).
* :mod:`~repro.baselines.rotating_coordinator` — deterministic rotating-
  coordinator consensus ([35]/[37]-style: O(f) rounds, O(n f) messages).
* :mod:`~repro.baselines.ben_or` — Ben-Or randomized binary consensus,
  the repo's first protocol designed for the bounded-delay delivery model
  (its timetable stretches by ``1 + Δ``; safety never depends on Δ).

The crash-fault baselines are re-implementations *in spirit*: they keep
each cited protocol's message-flow skeleton and asymptotic columns
(messages / rounds / resilience / knowledge model), which is what the
Table I comparison measures; the full original constructions span papers
of their own.  Each module documents its simplifications.
"""

from .augustine_agreement import AugustineAgreementProtocol, augustine_agree
from .base import BaselineOutcome
from .ben_or import (
    BenOrDecideForger,
    BenOrProtocol,
    ben_or_consensus,
    ben_or_horizon,
)
from .chlebus_kowalski import GossipConsensusProtocol, gossip_consensus
from .flooding import FloodingConsensusProtocol, flooding_consensus
from .gilbert_kowalski import CommitteeAgreementProtocol, committee_agreement
from .kutten_le import KuttenLeaderElectionProtocol, kutten_elect_leader
from .rotating_coordinator import (
    RotatingCoordinatorProtocol,
    rotating_coordinator_consensus,
)

__all__ = [
    "AugustineAgreementProtocol",
    "BaselineOutcome",
    "BenOrDecideForger",
    "BenOrProtocol",
    "CommitteeAgreementProtocol",
    "FloodingConsensusProtocol",
    "GossipConsensusProtocol",
    "KuttenLeaderElectionProtocol",
    "RotatingCoordinatorProtocol",
    "augustine_agree",
    "ben_or_consensus",
    "ben_or_horizon",
    "committee_agreement",
    "flooding_consensus",
    "gossip_consensus",
    "kutten_elect_leader",
    "rotating_coordinator_consensus",
]
