"""Deterministic flooding consensus (the classical O(n^2) baseline).

The naive crash-tolerant consensus every textbook starts from (cf. the
deterministic rows of Table I): every node broadcasts its estimate, and
re-broadcasts whenever the estimate improves, for ``f + 1`` rounds.  With
binary inputs each node broadcasts at most twice, so the message
complexity is ``O(n^2)``; the round complexity is ``f + 1``; it tolerates
any ``f < n`` crashes, deterministically.

This is the upper anchor of the message-complexity comparison: correct
under every adversary, but quadratic — exactly what the paper's sublinear
protocols are measured against.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..faults.adversary import Adversary
from ..sim.message import Delivery, Message
from ..sim.network import Network
from ..sim.node import Context, Protocol
from ..types import Knowledge
from .base import BaselineOutcome, evaluate_explicit_agreement

MSG_FLOOD = "FLD_VAL"  # node -> everyone: (bit,)


class FloodingConsensusProtocol(Protocol):
    """One node of the flooding consensus."""

    def __init__(self, node_id: int, n: int, input_bit: int, rounds: int) -> None:
        if input_bit not in (0, 1):
            raise ValueError(f"input bit must be 0 or 1, got {input_bit}")
        self.node_id = node_id
        self.n = n
        self.rounds = rounds
        self.estimate = input_bit
        self.decided: Optional[int] = None

    def on_start(self, ctx: Context) -> None:
        self._broadcast(ctx)

    def on_round(self, ctx: Context, inbox: List[Delivery]) -> None:
        # Fold in this round's arrivals first: messages broadcast in round
        # ``rounds`` land in round ``rounds + 1`` and still count.
        improved = False
        for delivery in inbox:
            if delivery.kind == MSG_FLOOD and delivery.fields[0] < self.estimate:
                self.estimate = delivery.fields[0]
                improved = True
        if ctx.round > self.rounds:
            if self.decided is None:
                self.decided = self.estimate
            ctx.idle()
            return
        if improved:
            self._broadcast(ctx)
        ctx.wake_at(self.rounds + 1)

    def _broadcast(self, ctx: Context) -> None:
        message = Message(MSG_FLOOD, (self.estimate,))
        for node in range(self.n):
            if node != self.node_id:
                ctx.send(node, message)

    def on_stop(self, ctx: Context) -> None:
        if self.decided is None:
            self.decided = self.estimate


def flooding_consensus(
    n: int,
    inputs: Sequence[int],
    seed: int = 0,
    adversary: Optional[Adversary] = None,
    faulty_count: int = 0,
    backend: str = "ref",
) -> BaselineOutcome:
    """Run flooding consensus (f + 1 rounds) and evaluate it.

    Success: every alive node decided the same valid bit.  This holds for
    *every* crash adversary: in each round either no one crashes (all
    estimates converge to the global minimum alive estimate and stay
    there) or the adversary spends one of its ``f`` crashes, and there are
    ``f + 1`` rounds.

    ``backend="vec"`` runs the numpy engine (identical results; falls
    back to the reference engine for unsupported configurations).
    """
    if len(inputs) != n:
        raise ValueError(f"got {len(inputs)} inputs for n={n}")
    rounds = faulty_count + 1
    run = None
    if backend == "vec":
        from ..errors import VecUnsupported
        from ..sim.vec import ensure_vec_supported, run_flooding_vec

        try:
            ensure_vec_supported(adversary or Adversary())
            run = run_flooding_vec(
                n, inputs, seed, adversary or Adversary(), faulty_count, rounds
            )
        except VecUnsupported:
            run = None  # fall back to the reference engine (same results)
    elif backend != "ref":
        from ..errors import ConfigurationError

        raise ConfigurationError(
            f"unknown backend {backend!r}; choose from ('ref', 'vec')"
        )
    if run is None:
        network = Network(
            n,
            lambda u: FloodingConsensusProtocol(u, n, inputs[u], rounds),
            seed=seed,
            adversary=adversary or Adversary(),
            max_faulty=faulty_count,
            inputs=inputs,
            knowledge=Knowledge.KT1,
        )
        run = network.run(rounds + 2)
    outcome = BaselineOutcome(
        protocol="flooding",
        n=n,
        faulty=run.faulty,
        crashed=run.crashed,
        metrics=run.metrics,
        inputs=list(inputs),
    )
    for u in run.alive:
        protocol: FloodingConsensusProtocol = run.protocol(u)  # type: ignore[assignment]
        if protocol.decided is not None:
            outcome.decisions[u] = protocol.decided
    outcome.success = evaluate_explicit_agreement(outcome, run.alive)
    return outcome
