"""Shared plumbing for baseline protocols.

Each baseline exposes a ``<name>(n, seed, ...) -> BaselineOutcome`` entry
point; :class:`BaselineOutcome` is a protocol-agnostic record with the
fields the Table I comparison needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set

from ..sim.metrics import Metrics
from ..sim.trace import Trace


@dataclass
class BaselineOutcome:
    """Outcome of one baseline run, comparable across protocols."""

    protocol: str
    n: int
    faulty: Set[int]
    crashed: Dict[int, int]
    metrics: Metrics
    #: For agreement-family baselines: node -> decided bit (alive nodes).
    decisions: Dict[int, int] = field(default_factory=dict)
    #: For election-family baselines: alive nodes that output ELECTED.
    elected: List[int] = field(default_factory=list)
    #: Agreement inputs, when applicable.
    inputs: Optional[Sequence[int]] = None
    #: Whether the run met its protocol's correctness condition.
    success: bool = False
    #: Event trace when the run was collected with ``collect_trace=True``.
    trace: Optional[Trace] = None
    #: Delivery-delay bound of the run (0 = fully synchronous delivery).
    max_delay: int = 0

    @property
    def messages(self) -> int:
        """Total messages sent."""
        return self.metrics.messages_sent

    @property
    def rounds(self) -> int:
        """Last round the engine actually executed."""
        return self.metrics.rounds

    @property
    def horizon(self) -> int:
        """Requested round count (the protocol's nominal schedule)."""
        return self.metrics.horizon

    def summary(self) -> Dict[str, object]:
        """Headline facts for tables."""
        return {
            "protocol": self.protocol,
            "n": self.n,
            "faulty": len(self.faulty),
            "success": self.success,
            "messages": self.messages,
            "rounds": self.rounds,
            "crashes": self.metrics.crashes,
        }


def evaluate_explicit_agreement(
    outcome: BaselineOutcome, alive: Sequence[int]
) -> bool:
    """Explicit agreement: every alive node decided, all equal, valid."""
    assert outcome.inputs is not None
    if set(alive) - set(outcome.decisions):
        return False
    bits = {outcome.decisions[u] for u in alive}
    if len(bits) != 1:
        return False
    return bits.pop() in set(outcome.inputs)


def evaluate_implicit_agreement(
    outcome: BaselineOutcome, alive: Sequence[int]
) -> bool:
    """Implicit agreement: >= 1 alive decided, all decided equal, valid."""
    assert outcome.inputs is not None
    decided = [outcome.decisions[u] for u in alive if u in outcome.decisions]
    if not decided:
        return False
    if len(set(decided)) != 1:
        return False
    return decided[0] in set(outcome.inputs)
