"""Experiment harness primitives.

An :class:`Experiment` bundles an id, the paper artifact it reproduces,
and a ``run(quick)`` callable returning an :class:`ExperimentReport` —
rows (the measured table) plus shape checks (pass/fail with detail).

:func:`run_experiments_resilient` executes a batch of experiments under
the fault-tolerant executor (:mod:`repro.exec`): per-experiment timeout,
retry, a checkpoint journal, and ``resume`` support — a killed ``repro
run all`` picks up where it stopped instead of starting over.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from ..analysis.tables import format_table


@dataclass(frozen=True)
class Check:
    """One shape check of an experiment."""

    name: str
    passed: bool
    detail: str = ""

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        mark = "PASS" if self.passed else "FAIL"
        return f"[{mark}] {self.name}" + (f" — {self.detail}" if self.detail else "")


@dataclass
class ExperimentReport:
    """Everything an experiment produces."""

    experiment_id: str
    title: str
    paper_claim: str
    rows: List[Dict[str, Any]] = field(default_factory=list)
    checks: List[Check] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)
    columns: Optional[Sequence[str]] = None

    @property
    def passed(self) -> bool:
        """True iff every check passed."""
        return all(check.passed for check in self.checks)

    def to_dict(self) -> Dict[str, Any]:
        """Machine-readable form (used by ``repro run --json``)."""
        return {
            "experiment_id": self.experiment_id,
            "title": self.title,
            "paper_claim": self.paper_claim,
            "passed": self.passed,
            "rows": self.rows,
            "checks": [
                {"name": c.name, "passed": c.passed, "detail": c.detail}
                for c in self.checks
            ],
            "notes": list(self.notes),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ExperimentReport":
        """Rebuild a report from :meth:`to_dict` output (journal resume)."""
        return cls(
            experiment_id=str(data["experiment_id"]),
            title=str(data.get("title", "")),
            paper_claim=str(data.get("paper_claim", "")),
            rows=[dict(row) for row in data.get("rows", [])],
            checks=[
                Check(
                    name=str(c["name"]),
                    passed=bool(c["passed"]),
                    detail=str(c.get("detail", "")),
                )
                for c in data.get("checks", [])
            ],
            notes=[str(note) for note in data.get("notes", [])],
        )

    def render(self) -> str:
        """Human-readable report (table + checks + notes)."""
        parts = [
            f"{self.experiment_id}: {self.title}",
            f"paper claim: {self.paper_claim}",
            "",
            format_table(self.rows, columns=self.columns),
            "",
        ]
        parts.extend(str(check) for check in self.checks)
        if self.notes:
            parts.append("")
            parts.extend(f"note: {note}" for note in self.notes)
        return "\n".join(parts)


@dataclass(frozen=True)
class Experiment:
    """A registered experiment."""

    experiment_id: str
    title: str
    paper_claim: str
    runner: Callable[[bool], ExperimentReport]

    def run(self, quick: bool = False) -> ExperimentReport:
        """Execute the experiment (``quick`` shrinks sizes/trials)."""
        return self.runner(quick)


def _failure_report(experiment: "Experiment", outcome: Any) -> ExperimentReport:
    """Stand-in report for an experiment whose trial never completed."""
    return ExperimentReport(
        experiment_id=experiment.experiment_id,
        title=experiment.title,
        paper_claim=experiment.paper_claim,
        checks=[
            Check(
                name="experiment completed",
                passed=False,
                detail=(
                    f"status={outcome.status} after {outcome.attempts} attempt(s):"
                    f" {outcome.error}"
                ),
            )
        ],
        notes=["experiment did not complete; partial campaign result"],
    )


def _experiment_task(
    seed: int = 0, experiment_id: str = "", quick: bool = False
) -> ExperimentReport:
    """Picklable trial task: run one registered experiment by id.

    Experiments are looked up *inside* the worker process (an
    ``Experiment`` carries an arbitrary runner callable, which may not
    pickle; its id always does).  ``seed`` is accepted for the executor
    interface and ignored — experiments seed themselves internally.
    """
    from .registry import get_experiment

    return get_experiment(experiment_id).run(quick=quick)


def run_experiments_resilient(
    experiments: Sequence["Experiment"],
    quick: bool = False,
    *,
    journal_path: Optional[str] = None,
    resume: bool = False,
    timeout_seconds: Optional[float] = None,
    retries: int = 0,
    jobs: int = 1,
    progress: Any = False,
    manifest: Optional[Any] = None,
    shutdown: Optional[Any] = None,
) -> Tuple[List[ExperimentReport], Dict[str, int]]:
    """Run a batch of experiments under the resilient executor.

    Each experiment is one trial (journal key = experiment id, journalled
    value = ``report.to_dict()``).  A failing or timing-out experiment
    degrades to a synthetic failing report instead of aborting the batch;
    with ``resume=True`` experiments already journalled as complete are
    reconstructed via :meth:`ExperimentReport.from_dict` without re-running.

    ``jobs`` > 1 fans the batch out over a process pool: workers look the
    experiments up by id from the registry, run them under the same
    timeout/retry net, and the parent keeps sole ownership of the journal
    and resume state.  Reports come back in the order given.

    ``progress=True`` emits a stderr heartbeat; ``manifest`` (a
    :class:`repro.obs.Manifest`) is embedded in the journal so the
    campaign file is self-describing for ``repro report``.  ``shutdown``
    (a :class:`~repro.parallel.GracefulShutdown`) stops the batch at the
    next experiment boundary on SIGINT/SIGTERM, leaving a resumable
    journal.

    Returns ``(reports, counts)`` with counts keyed
    ``attempted/completed/failed`` — plus the parallel supervisor's
    counters (``pool_rebuilds``, ``worker_deaths``, ...) whenever it had
    to intervene.
    """
    from ..exec import Journal, ResilientExecutor, RetryPolicy
    from ..parallel import TrialSpec, resolve_jobs, run_trials_resilient

    executor = ResilientExecutor(
        timeout_seconds=timeout_seconds,
        retry=RetryPolicy(retries=retries),
        serialize=lambda report: report.to_dict()
        if isinstance(report, ExperimentReport)
        else report,
    )
    if journal_path is not None:
        executor.journal = Journal(journal_path)
    if resume:
        executor.load_completed()
    elif executor.journal is not None:
        executor.journal.clear()
    if manifest is not None:
        executor.write_manifest(manifest)

    # Workers must look experiments up by id (runner callables may not
    # pickle); serially the experiment object runs directly, which also
    # covers ad-hoc experiments that are not in the registry.
    if resolve_jobs(jobs) > 1:
        specs = [
            TrialSpec(
                index=index,
                task=_experiment_task,
                seed=0,
                point={"experiment_id": experiment.experiment_id, "quick": quick},
                key=experiment.experiment_id,
            )
            for index, experiment in enumerate(experiments)
        ]
    else:
        specs = [
            TrialSpec(
                index=index,
                # repro: lint-ignore[PAR001] serial path only (jobs==1 above):
                # this lambda never crosses a process boundary
                task=lambda seed, exp=experiment, **_: exp.run(quick=quick),
                seed=0,
                key=experiment.experiment_id,
            )
            for index, experiment in enumerate(experiments)
        ]
    outcomes = run_trials_resilient(
        specs, jobs=jobs, executor=executor, progress=progress, shutdown=shutdown
    )

    reports: List[ExperimentReport] = []
    counts = {"attempted": 0, "completed": 0, "failed": 0}
    for experiment, outcome in zip(experiments, outcomes):
        counts["attempted"] += 1
        if outcome.ok:
            counts["completed"] += 1
            value = outcome.value
            if isinstance(value, ExperimentReport):
                reports.append(value)
            else:
                reports.append(ExperimentReport.from_dict(value))
        else:
            counts["failed"] += 1
            reports.append(_failure_report(experiment, outcome))
    stats = executor.last_supervisor_stats
    if stats is not None and stats.eventful:
        counts.update(
            {
                key: value
                for key, value in stats.as_dict().items()
                if isinstance(value, int) and value
            }
        )
    return reports, counts
