"""Experiment harness primitives.

An :class:`Experiment` bundles an id, the paper artifact it reproduces,
and a ``run(quick)`` callable returning an :class:`ExperimentReport` —
rows (the measured table) plus shape checks (pass/fail with detail).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from ..analysis.tables import format_table


@dataclass(frozen=True)
class Check:
    """One shape check of an experiment."""

    name: str
    passed: bool
    detail: str = ""

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        mark = "PASS" if self.passed else "FAIL"
        return f"[{mark}] {self.name}" + (f" — {self.detail}" if self.detail else "")


@dataclass
class ExperimentReport:
    """Everything an experiment produces."""

    experiment_id: str
    title: str
    paper_claim: str
    rows: List[Dict[str, Any]] = field(default_factory=list)
    checks: List[Check] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)
    columns: Optional[Sequence[str]] = None

    @property
    def passed(self) -> bool:
        """True iff every check passed."""
        return all(check.passed for check in self.checks)

    def to_dict(self) -> Dict[str, Any]:
        """Machine-readable form (used by ``repro run --json``)."""
        return {
            "experiment_id": self.experiment_id,
            "title": self.title,
            "paper_claim": self.paper_claim,
            "passed": self.passed,
            "rows": self.rows,
            "checks": [
                {"name": c.name, "passed": c.passed, "detail": c.detail}
                for c in self.checks
            ],
            "notes": list(self.notes),
        }

    def render(self) -> str:
        """Human-readable report (table + checks + notes)."""
        parts = [
            f"{self.experiment_id}: {self.title}",
            f"paper claim: {self.paper_claim}",
            "",
            format_table(self.rows, columns=self.columns),
            "",
        ]
        parts.extend(str(check) for check in self.checks)
        if self.notes:
            parts.append("")
            parts.extend(f"note: {note}" for note in self.notes)
        return "\n".join(parts)


@dataclass(frozen=True)
class Experiment:
    """A registered experiment."""

    experiment_id: str
    title: str
    paper_claim: str
    runner: Callable[[bool], ExperimentReport]

    def run(self, quick: bool = False) -> ExperimentReport:
        """Execute the experiment (``quick`` shrinks sizes/trials)."""
        return self.runner(quick)
