"""Experiments E6-E8: Theorem 5.1 (agreement) and the explicit extensions.

* E6 — agreement message complexity vs ``n`` is
  ``Theta(n^1/2 log^{3/2} n)`` at constant alpha, across input patterns.
* E7 — agreement message complexity vs ``alpha`` grows as
  ``alpha^{-3/2}``.
* E8 — the explicit extensions add one broadcast wave:
  ``O(n log n/alpha)`` extra messages and O(1) extra rounds, and make
  every alive node learn the outcome.
"""

from __future__ import annotations

from typing import Dict, List

from ..analysis.complexity import fit_power_law, polylog_flatness
from ..analysis.stats import mean, summarize_trials
from ..analysis.sweeps import monte_carlo
from ..core.runner import agree, agree_explicit, elect_leader_explicit
from ..lowerbound.bounds import agreement_upper_bound
from .harness import Check, Experiment, ExperimentReport

FLATNESS_TOLERANCE = 3.5


def _run_e6(quick: bool) -> ExperimentReport:
    sizes = [128, 256, 512] if quick else [256, 512, 1024, 2048, 4096]
    trials = 3 if quick else 10
    alpha = 0.5
    rows: List[Dict[str, object]] = []
    xs: List[float] = []
    ys: List[float] = []
    for n in sizes:
        per_pattern = {}
        for pattern in ("mixed", "single0"):
            results = monte_carlo(
                lambda seed, n=n, pattern=pattern: agree(
                    n=n, alpha=alpha, inputs=pattern, seed=seed, adversary="random"
                ),
                trials=trials,
                master_seed=106,
            )
            per_pattern[pattern] = results
        messages = mean(
            [r.messages for results in per_pattern.values() for r in results]
        )
        bits = mean(
            [
                r.metrics.bits_sent
                for results in per_pattern.values()
                for r in results
            ]
        )
        success = summarize_trials(
            [r.success for results in per_pattern.values() for r in results]
        )
        bound = agreement_upper_bound(n, alpha)
        rows.append(
            {
                "n": n,
                "messages": round(messages),
                # Theorem 5.1 is stated in message *bits*; agreement
                # payloads are O(1) fields so bits track messages.
                "bits/message": round(bits / messages, 1),
                "bound": round(bound),
                "messages/bound": messages / bound,
                "success": success.rate,
            }
        )
        xs.append(float(n))
        ys.append(messages)
    fit = fit_power_law(xs, ys)
    flatness = polylog_flatness(xs, ys, lambda n: agreement_upper_bound(int(n), alpha))
    report = ExperimentReport(
        experiment_id="E6",
        title="agreement: messages vs n (alpha = 1/2)",
        paper_claim="Theorem 5.1: O(n^1/2 log^{3/2} n / alpha^{3/2}) message bits",
        rows=rows,
    )
    report.checks.append(
        Check(
            "sublinear growth",
            fit.exponent < 1.0,
            f"fitted exponent {fit.exponent:.2f}",
        )
    )
    report.checks.append(
        Check(
            "matches Theta(n^1/2 log^{3/2} n)",
            flatness <= FLATNESS_TOLERANCE,
            f"normalised max/min ratio {flatness:.2f} <= {FLATNESS_TOLERANCE}",
        )
    )
    report.checks.append(
        Check(
            "agreement holds w.h.p.",
            all(row["success"] >= 0.99 for row in rows) if not quick
            else all(row["success"] > 0.6 for row in rows),
            "success rate per n in table",
        )
    )
    report.checks.append(
        Check(
            "payloads are O(1) bits (Theorem 5.1 counts bits)",
            all(row["bits/message"] <= 16 for row in rows),
            "bits/message column stays constant",
        )
    )
    return report


def _run_e7(quick: bool) -> ExperimentReport:
    n = 256 if quick else 1024
    alphas = [1.0, 0.5] if quick else [1.0, 0.5, 0.25, 0.125, 0.0625]
    trials = 4 if quick else 10
    rows: List[Dict[str, object]] = []
    normalised: List[float] = []
    for alpha in alphas:
        results = monte_carlo(
            lambda seed, alpha=alpha: agree(
                n=n, alpha=alpha, inputs="mixed", seed=seed, adversary="random"
            ),
            trials=trials,
            master_seed=107,
        )
        messages = mean([r.messages for r in results])
        bound = agreement_upper_bound(n, alpha)
        rows.append(
            {
                "alpha": alpha,
                "messages": round(messages),
                "bound": round(bound),
                "messages/bound": messages / bound,
                "success": summarize_trials([r.success for r in results]).rate,
            }
        )
        normalised.append(messages / bound)
    monotone = all(a["messages"] <= b["messages"] for a, b in zip(rows, rows[1:]))
    flat = max(normalised) / min(normalised)
    report = ExperimentReport(
        experiment_id="E7",
        title=f"agreement: messages vs alpha (n = {n})",
        paper_claim="Theorem 5.1: message complexity scales as alpha^{-3/2}",
        rows=rows,
    )
    report.checks.append(
        Check("messages grow as faults grow", monotone, "non-decreasing in 1/alpha")
    )
    report.checks.append(
        Check(
            "matches alpha^{-3/2} shape",
            flat <= FLATNESS_TOLERANCE,
            f"normalised max/min ratio {flat:.2f} <= {FLATNESS_TOLERANCE}",
        )
    )
    return report


def _run_e8(quick: bool) -> ExperimentReport:
    sizes = [128] if quick else [256, 512, 1024]
    trials = 3 if quick else 5
    alpha = 0.5
    rows: List[Dict[str, object]] = []
    checks: List[Check] = []
    import math

    for n in sizes:
        le_results = monte_carlo(
            lambda seed, n=n: elect_leader_explicit(
                n=n, alpha=alpha, seed=seed, adversary="staggered"
            ),
            trials=trials,
            master_seed=108,
        )
        ag_results = monte_carlo(
            lambda seed, n=n: agree_explicit(
                n=n, alpha=alpha, inputs="mixed", seed=seed, adversary="staggered"
            ),
            trials=trials,
            master_seed=109,
        )
        le_know = mean([r.knowledge_fraction for r in le_results])
        ag_know = mean([r.knowledge_fraction for r in ag_results])
        explicit_budget = 24 * n * math.log(n) / alpha  # c * n log n / alpha
        rows.append(
            {
                "n": n,
                "le_explicit_success": summarize_trials(
                    [r.explicit_success for r in le_results]
                ).rate,
                "le_knowledge": round(le_know, 3),
                "ag_explicit_success": summarize_trials(
                    [r.explicit_success for r in ag_results]
                ).rate,
                "ag_knowledge": round(ag_know, 3),
                "le_messages": round(mean([r.messages for r in le_results])),
                "ag_messages": round(mean([r.messages for r in ag_results])),
            }
        )
        checks.append(
            Check(
                f"n={n}: explicit outcomes reach (almost) everyone",
                le_know > 0.99 and ag_know > 0.99,
                f"LE knowledge {le_know:.3f}, AG knowledge {ag_know:.3f}",
            )
        )
        checks.append(
            Check(
                f"n={n}: explicit agreement stays within O(n log n/alpha) messages",
                mean([r.messages for r in ag_results]) <= explicit_budget,
                f"measured {mean([r.messages for r in ag_results]):.0f} <= {explicit_budget:.0f}",
            )
        )
    return ExperimentReport(
        experiment_id="E8",
        title="explicit extensions (leader election and agreement)",
        paper_claim="Sections IV-A/V-A: explicit versions in +O(1) rounds, O(n log n/alpha) messages",
        rows=rows,
        checks=checks,
    )


E6 = Experiment("E6", "agreement messages vs n", "Thm 5.1 message bound", _run_e6)
E7 = Experiment("E7", "agreement messages vs alpha", "Thm 5.1 alpha scaling", _run_e7)
E8 = Experiment("E8", "explicit extensions", "explicit LE/agreement", _run_e8)
