"""Experiment E11: sublinearity thresholds.

Section I-A: the leader-election bound is sublinear in ``n`` when
``alpha > log n / n^{1/5}`` and the agreement bound when
``alpha > log n / n^{1/3}``; equivalently the protocols tolerate up to
``n - n^{4/5} log n`` and ``n - n^{2/3} log n`` faults while staying
sublinear.

Two measurable sides:

* the *formulas*: report where the thresholds sit across ``n``, and check
  the bound formulas do cross ``n`` exactly there;
* the *measurements*: at constant alpha the measured message curves grow
  sublinearly (fitted exponent < 1), so for large enough ``n`` they drop
  below every linear protocol — the crossover the thresholds predict.
  (Absolute crossing points sit beyond laptop-scale ``n`` because of the
  constants; the check is the growth exponent.)
"""

from __future__ import annotations

import math
from typing import Dict, List

from ..analysis.complexity import fit_power_law
from ..analysis.stats import mean
from ..analysis.sweeps import monte_carlo
from ..core.runner import agree
from ..lowerbound.bounds import agreement_upper_bound, le_upper_bound
from .harness import Check, Experiment, ExperimentReport


def _formula_rows(sizes: List[int]) -> List[Dict[str, object]]:
    rows = []
    for n in sizes:
        log_n = math.log(n)
        le_threshold = log_n / n**0.2
        ag_threshold = log_n / n ** (1.0 / 3.0)
        rows.append(
            {
                "n": n,
                "le_alpha_threshold": round(le_threshold, 4),
                "ag_alpha_threshold": round(ag_threshold, 4),
                "le_bound@thr/n": round(le_upper_bound(n, min(1.0, le_threshold)) / n, 2)
                if le_threshold <= 1
                else None,
                "ag_bound@thr/n": round(
                    agreement_upper_bound(n, min(1.0, ag_threshold)) / n, 2
                )
                if ag_threshold <= 1
                else None,
            }
        )
    return rows


def _run_e11(quick: bool) -> ExperimentReport:
    formula_sizes = [2**10, 2**14, 2**20, 2**30]
    rows = _formula_rows(formula_sizes)
    checks: List[Check] = []

    # Formula check: at the stated threshold the (constant-free) bound is
    # Theta(n) — the ratio bound/n is a constant across n.
    ratios = [
        row["ag_bound@thr/n"] for row in rows if row["ag_bound@thr/n"] is not None
    ]
    checks.append(
        Check(
            "agreement bound crosses n at alpha = log n/n^(1/3)",
            max(ratios) / min(ratios) < 1.5,
            f"bound/n at threshold stays ~constant: {ratios}",
        )
    )

    # Measured side: sublinear growth at constant alpha.
    sizes = [128, 256, 512] if quick else [256, 512, 1024, 2048, 4096]
    trials = 3 if quick else 6
    xs, ys = [], []
    for n in sizes:
        results = monte_carlo(
            lambda seed, n=n: agree(
                n=n, alpha=0.5, inputs="mixed", seed=seed, adversary="random"
            ),
            trials=trials,
            master_seed=112,
        )
        messages = mean([r.messages for r in results])
        rows.append({"n": n, "measured_ag_messages": round(messages)})
        xs.append(float(n))
        ys.append(messages)
    fit = fit_power_law(xs, ys)
    checks.append(
        Check(
            "measured agreement growth is sublinear",
            fit.exponent < 0.95,
            f"fitted exponent {fit.exponent:.2f} < 1",
        )
    )
    report = ExperimentReport(
        experiment_id="E11",
        title="sublinearity thresholds",
        paper_claim="Section I-A: sublinear for alpha > log n/n^{1/5} (LE) and log n/n^{1/3} (agreement)",
        rows=rows,
        checks=checks,
    )
    report.notes.append(
        "LE threshold log n/n^{1/5} exceeds 1 for every n below ~5e9, so the "
        "LE crossover cannot be exhibited at simulable scale; the formula rows "
        "show where it sits."
    )
    return report


E11 = Experiment("E11", "sublinearity thresholds", "Section I-A thresholds", _run_e11)
