"""The experiment suite (DESIGN.md section 4).

The paper is a theory paper: its "evaluation" is a set of theorems plus a
comparison table (Table I).  Each experiment here measures one of those
artifacts on the simulator and checks the predicted *shape*:

====  ==========================================================
E1    LE messages vs n                 (Theorem 4.1)
E2    LE messages vs alpha             (Theorem 4.1)
E3    LE rounds                        (Theorem 4.1)
E4    leader non-faulty w.p. >= alpha  (Theorem 4.1)
E5    sampling lemmas 1-3
E6    agreement messages vs n          (Theorem 5.1)
E7    agreement messages vs alpha      (Theorem 5.1)
E8    explicit extensions              (Sections IV-A / V-A)
E9    Table I comparison
E10   lower bounds                     (Theorems 4.2 / 5.2)
E11   sublinearity thresholds          (Section I-A)
E12   fault-free parity                (Corollaries 1 and 3)
E13   constant ablations               (design choices)
E14   model boundaries: adaptive selection & LE reduction
E15   Byzantine stress                 (open problem 3)
E16   general graphs                   (open problem 2)
====  ==========================================================

Run them via ``python -m repro run E1 [--quick]`` or the benchmark suite
(``pytest benchmarks/ --benchmark-only``), which executes one benchmark
per experiment and prints the measured table.
"""

from .harness import Check, Experiment, ExperimentReport, run_experiments_resilient
from .registry import all_experiments, get_experiment

__all__ = [
    "Check",
    "Experiment",
    "ExperimentReport",
    "all_experiments",
    "get_experiment",
    "run_experiments_resilient",
]
