"""Experiment E17: bounded-delay delivery (partial synchrony).

The paper's model is fully synchronous; this experiment measures what the
bounded-delay relaxation (:mod:`repro.sim.delivery`) costs and checks
that the delay layer is a strict generalisation:

* **Δ=0 is free** — running the paper's election under an explicit
  zero-delay schedule is message-for-message identical to the classic
  synchronous engine path (the schedule only adds code, never behaviour);
* **Ben-Or absorbs Δ** — the delay-tolerant baseline
  (:mod:`repro.baselines.ben_or`) keeps deciding correctly for Δ ∈
  {0, 1, 3} under random crashes, with wall-clock rounds stretching
  roughly linearly in ``1 + Δ`` while the *message* cost stays flat
  (delay slows rounds, not communication);
* **latency invariant** — every observed delivery latency lies in
  ``[1, 1 + Δ]`` (also enforced run-by-run by the validator's
  conservation/latency checks).
"""

from __future__ import annotations

from typing import List

from ..analysis.stats import mean, summarize_trials
from ..baselines.ben_or import ben_or_consensus, ben_or_horizon
from ..core.runner import elect_leader, make_inputs
from ..faults import named_adversary
from ..params import Params
from ..rng import seed_sequence
from ..sim.delivery import UniformDelay
from .harness import Check, Experiment, ExperimentReport


def _run_e17(quick: bool) -> ExperimentReport:
    n = 32 if quick else 64
    alpha = 0.5
    trials = 4 if quick else 10
    rows: List[dict] = []
    checks: List[Check] = []

    # Δ=0 parity: an explicit zero-delay schedule must not change the
    # synchronous engine's behaviour in any observable way.
    parity_n = 128
    baseline = elect_leader(n=parity_n, alpha=alpha, seed=7, adversary="random")
    delayed = elect_leader(
        n=parity_n,
        alpha=alpha,
        seed=7,
        adversary="random",
        delivery=UniformDelay(max_delay=0, salt=99),
    )
    parity = (
        baseline.metrics.messages_sent == delayed.metrics.messages_sent
        and baseline.metrics.rounds == delayed.metrics.rounds
        and baseline.leader_node == delayed.leader_node
    )
    rows.append(
        {
            "scenario": f"election n={parity_n}, Δ=0 schedule vs sync engine",
            "success": 1.0 if parity else 0.0,
            "messages": baseline.metrics.messages_sent,
            "rounds": baseline.metrics.rounds,
            "max_latency": 1,
        }
    )
    checks.append(
        Check(
            "Δ=0 schedule is byte-identical to the synchronous engine",
            parity,
            f"messages {baseline.metrics.messages_sent} vs "
            f"{delayed.metrics.messages_sent}",
        )
    )

    budget = min(Params(n=n, alpha=alpha).max_faulty, (n - 1) // 2)
    mean_rounds = {}
    mean_messages = {}
    for delta in (0, 1, 3):
        outcomes = []
        for seed in seed_sequence(170 + delta, trials):
            delivery = UniformDelay(delta, salt=seed) if delta else None
            outcomes.append(
                ben_or_consensus(
                    n=n,
                    inputs=make_inputs(n, "mixed", seed),
                    seed=seed,
                    adversary=named_adversary(
                        "random", ben_or_horizon(delta)
                    ),
                    faulty_count=budget,
                    delivery=delivery,
                )
            )
        success = summarize_trials([o.success for o in outcomes])
        mean_rounds[delta] = mean([o.rounds for o in outcomes])
        mean_messages[delta] = mean([o.messages for o in outcomes])
        max_latency = max(
            (
                latency
                for o in outcomes
                for latency in o.metrics.delivery_latency
            ),
            default=1,
        )
        rows.append(
            {
                "scenario": f"ben-or n={n}, Δ={delta}, random crashes",
                "success": success.rate,
                "messages": round(mean_messages[delta]),
                "rounds": round(mean_rounds[delta], 1),
                "max_latency": max_latency,
            }
        )
        checks.append(
            Check(
                f"ben-or decides under Δ={delta} with crashes",
                success.at_least(0.9),
                str(success),
            )
        )
        checks.append(
            Check(
                f"Δ={delta}: delivery latencies stay within 1 + Δ",
                max_latency <= 1 + delta,
                f"max observed latency {max_latency}",
            )
        )
    checks.append(
        Check(
            "delay stretches rounds, not messages",
            mean_rounds[3] > mean_rounds[0]
            and mean_messages[3] < 2 * mean_messages[0],
            f"rounds {mean_rounds[0]:.1f} -> {mean_rounds[3]:.1f}, "
            f"messages {mean_messages[0]:.0f} -> {mean_messages[3]:.0f}",
        )
    )
    return ExperimentReport(
        experiment_id="E17",
        title=f"bounded-delay delivery (n={n})",
        paper_claim=(
            "model extension: the synchronous engine generalises to "
            "delay-Δ delivery at zero cost for Δ=0, and a delay-tolerant "
            "protocol (Ben-Or) pays only rounds, not messages"
        ),
        rows=rows,
        checks=checks,
        columns=["scenario", "success", "messages", "rounds", "max_latency"],
    )


E17 = Experiment("E17", "bounded-delay delivery", "model extension", _run_e17)
