"""Experiment E13: ablations of the paper's sampling constants.

DESIGN.md calls out three design choices the paper fixes by constants:

* the candidate probability constant (paper: 6) — Lemma 1/2 need the
  committee big enough to contain a non-faulty node;
* the referee-count constant (paper: 2) — Lemma 3 needs every candidate
  pair to share a non-faulty referee;
* the iteration multiplier — Theorem 4.1 needs one iteration per
  potential committee crash.

The ablation sweeps each constant down and reports the success/message
trade-off: the paper's defaults should sit on the reliable side, and
shrinking the referee constant should visibly cut messages at the price
of reliability at the aggressive end.
"""

from __future__ import annotations

from typing import Dict, List

from ..analysis.stats import mean, summarize_trials
from ..analysis.sweeps import monte_carlo
from ..core.runner import agree
from ..params import Params
from .harness import Check, Experiment, ExperimentReport


def _run_e13(quick: bool) -> ExperimentReport:
    n = 256 if quick else 512
    alpha = 0.25
    trials = 8 if quick else 20
    rows: List[Dict[str, object]] = []
    rates: Dict[tuple, float] = {}
    messages: Dict[tuple, float] = {}
    candidate_factors = [1.0, 6.0] if quick else [0.5, 1.0, 3.0, 6.0]
    referee_factors = [0.25, 2.0] if quick else [0.125, 0.5, 1.0, 2.0]

    for cf in candidate_factors:
        for rf in referee_factors:
            params = Params(
                n=n, alpha=alpha, candidate_factor=cf, referee_factor=rf
            )
            results = monte_carlo(
                lambda seed, params=params: agree(
                    n=n,
                    alpha=alpha,
                    inputs="single0",
                    seed=seed,
                    adversary="random",
                    params=params,
                ),
                trials=trials,
                master_seed=115,
            )
            informed = summarize_trials([_informed(r) for r in results])
            msg = mean([r.messages for r in results])
            rates[(cf, rf)] = informed.rate
            messages[(cf, rf)] = msg
            rows.append(
                {
                    "candidate_factor": cf,
                    "referee_factor": rf,
                    "messages": round(msg),
                    "informed_success": informed.rate,
                }
            )

    default_key = (candidate_factors[-1], referee_factors[-1])
    cheapest_key = (candidate_factors[0], referee_factors[0])
    checks = [
        Check(
            "paper defaults are reliable",
            rates[default_key] >= 0.9,
            f"success {rates[default_key]:.2f} at factors {default_key}",
        ),
        Check(
            "smaller constants cost reliability or are dominated",
            rates[cheapest_key] <= rates[default_key] + 1e-9,
            f"{rates[cheapest_key]:.2f} @ {cheapest_key} vs "
            f"{rates[default_key]:.2f} @ {default_key}",
        ),
        Check(
            "smaller constants buy messages",
            messages[cheapest_key] < messages[default_key],
            f"{messages[cheapest_key]:.0f} vs {messages[default_key]:.0f}",
        ),
    ]
    return ExperimentReport(
        experiment_id="E13",
        title=f"sampling-constant ablations (agreement, n={n}, alpha={alpha})",
        paper_claim="constants 6 (candidates) and 2 (referees) back Lemmas 1-3",
        rows=rows,
        checks=checks,
    )


def _informed(result) -> bool:
    """Success notion that also demands the zero reached the committee."""
    if not result.success:
        return False
    candidate_inputs = {result.inputs[u] for u in result.candidates_all}
    target = 0 if 0 in candidate_inputs else 1
    return result.decision == target


E13 = Experiment("E13", "constant ablations", "design-choice ablations", _run_e13)
