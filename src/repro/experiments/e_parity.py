"""Experiment E12: fault-free parity (Corollaries 1 and 3).

"For any constant fraction of faulty nodes, the Õ(n^1/2) message
complexity of leader election and agreement is asymptotically the same as
in the fault-free network [21], [23]."

We measure the paper's protocols at constant alpha against the fault-free
[21]/[23]-style baselines at the same ``n`` and check that the *growth
exponents* match (both ~ n^1/2 modulo polylog drift); the absolute gap is
a polylog-and-constants factor reported in the table.
"""

from __future__ import annotations

from typing import Dict, List

from ..analysis.complexity import fit_power_law
from ..analysis.stats import mean
from ..analysis.sweeps import monte_carlo
from ..baselines import augustine_agree, kutten_elect_leader
from ..core.runner import agree, elect_leader, make_inputs
from .harness import Check, Experiment, ExperimentReport


def _run_e12(quick: bool) -> ExperimentReport:
    sizes = [128, 256] if quick else [256, 512, 1024, 2048]
    trials = 3 if quick else 6
    alpha = 0.5
    rows: List[Dict[str, object]] = []
    ours_ag, ff_ag = [], []
    for n in sizes:
        ours = monte_carlo(
            lambda seed, n=n: agree(
                n=n, alpha=alpha, inputs="mixed", seed=seed, adversary="random"
            ),
            trials=trials,
            master_seed=113,
        )
        faultfree = monte_carlo(
            lambda seed, n=n: augustine_agree(n, make_inputs(n, "mixed", seed), seed=seed),
            trials=trials,
            master_seed=114,
        )
        ours_mean = mean([r.messages for r in ours])
        ff_mean = mean([r.messages for r in faultfree])
        ours_ag.append(ours_mean)
        ff_ag.append(ff_mean)
        rows.append(
            {
                "n": n,
                "faulty_agreement": round(ours_mean),
                "faultfree_agreement": round(ff_mean),
                "overhead_factor": round(ours_mean / ff_mean, 1),
            }
        )
    xs = [float(n) for n in sizes]
    fit_ours = fit_power_law(xs, ours_ag)
    fit_ff = fit_power_law(xs, ff_ag)
    checks = [
        Check(
            "same growth exponent as the fault-free protocol",
            abs(fit_ours.exponent - fit_ff.exponent) < 0.25,
            f"faulty {fit_ours.exponent:.2f} vs fault-free {fit_ff.exponent:.2f}",
        ),
        Check(
            "overhead factor stays bounded (polylog, not polynomial)",
            max(r["overhead_factor"] for r in rows)
            <= 3 * min(r["overhead_factor"] for r in rows),
            "overhead_factor column is ~flat",
        ),
    ]

    # Leader election spot check at one size (expensive).
    n = sizes[-2] if len(sizes) > 1 else sizes[0]
    ours_le = elect_leader(n=n, alpha=alpha, seed=3, adversary="random")
    ff_le = kutten_elect_leader(n, seed=3)
    rows.append(
        {
            "n": n,
            "faulty_agreement": None,
            "faultfree_agreement": None,
            "overhead_factor": None,
            "le_faulty_messages": ours_le.messages,
            "le_faultfree_messages": ff_le.messages,
        }
    )
    return ExperimentReport(
        experiment_id="E12",
        title="fault-free parity (Corollaries 1 and 3)",
        paper_claim="constant alpha => same Õ(n^1/2) asymptotics as fault-free [21], [23]",
        rows=rows,
        checks=checks,
    )


E12 = Experiment("E12", "fault-free parity", "Corollaries 1/3", _run_e12)
