"""Experiment E10: the message-complexity lower bounds (Thms 4.2 / 5.2).

Three falsifiable predictions:

1. **Spend** — uncapped successful runs spend at least the bound
   ``n^1/2/alpha^{3/2}`` (the upper-bound protocols exceed it by polylog
   factors, so the measured ratio must be >= 1).
2. **Collapse** — capping the global message budget well below the bound
   drives the success rate down towards (and below) the ``2/e + eps``
   regime of Theorem 4.2, while budgets comfortably above the measured
   cost leave success intact.
3. **Structure** — Lemma 4's machinery: executions have at least
   ``1/(2 alpha)`` initiators (nodes that send before receiving).
"""

from __future__ import annotations

import math
from typing import Dict, List

from ..analysis.stats import mean
from ..core.runner import agree, elect_leader
from ..lowerbound.bounds import lower_bound_messages, min_initiators
from ..lowerbound.budget import budget_curve
from ..lowerbound.clouds import influence_clouds
from .harness import Check, Experiment, ExperimentReport


def _run_e10(quick: bool) -> ExperimentReport:
    n = 256 if quick else 1024
    alpha = 0.5
    trials = 6 if quick else 20
    bound = lower_bound_messages(n, alpha)

    rows: List[Dict[str, object]] = []
    checks: List[Check] = []

    # 1. Spend check on uncapped runs.
    le_result = elect_leader(n=n, alpha=alpha, seed=7, adversary="random")
    ag_result = agree(n=n, alpha=alpha, inputs="mixed", seed=7, adversary="random")
    rows.append(
        {
            "measurement": "uncapped LE spend / bound",
            "value": round(le_result.messages / bound, 1),
        }
    )
    rows.append(
        {
            "measurement": "uncapped agreement spend / bound",
            "value": round(ag_result.messages / bound, 1),
        }
    )
    checks.append(
        Check(
            "successful runs spend >= the lower bound",
            le_result.messages >= bound and ag_result.messages >= bound,
            f"LE {le_result.messages} and AG {ag_result.messages} vs bound {bound:.0f}",
        )
    )

    # 2. Collapse under message caps (agreement: the cheap protocol).
    # Budgets are expressed as fractions of the *measured* uncapped cost:
    # the protocol's constants put its real spend far above the constant-
    # free bound, so "well below the bound" means small fractions of the
    # actual cost, and "ample" means slightly above it.
    measured = ag_result.messages
    multipliers = [0.05, 0.5, 1.2] if quick else [0.01, 0.05, 0.2, 0.5, 0.9, 1.2]
    curve = budget_curve(
        "agreement",
        n=n,
        alpha=alpha,
        multipliers=multipliers,
        trials=trials,
        master_seed=111,
        unit=float(measured),
    )
    for multiplier, summary in curve.items():
        rows.append(
            {
                "measurement": (
                    f"agreement success @ budget {multiplier} x measured cost "
                    f"(= {multiplier * measured / bound:.0f} x bound)"
                ),
                "value": round(summary.rate, 2),
            }
        )
    lowest = curve[min(multipliers)]
    highest = curve[max(multipliers)]
    threshold = 2.0 / math.e
    checks.append(
        Check(
            "success collapses at starved budgets",
            lowest.clearly_below(threshold + 0.25)
            or lowest.rate < highest.rate - 0.3,
            f"@{min(multipliers)}x: {lowest}; @{max(multipliers)}x: {highest}",
        )
    )
    checks.append(
        Check(
            "ample budget restores success",
            highest.at_least(0.9),
            str(highest),
        )
    )

    # 3. Initiator structure (Lemma 4) on a traced run.
    traced = agree(
        n=n, alpha=alpha, inputs="mixed", seed=13, adversary="random", collect_trace=True
    )
    assert traced.trace is not None
    decomposition = influence_clouds(traced.trace, n)
    needed = min_initiators(alpha)
    rows.append(
        {
            "measurement": "initiators (Lemma 4 needs >= 1/(2 alpha))",
            "value": len(decomposition.initiators),
        }
    )
    rows.append(
        {
            "measurement": "required initiators",
            "value": round(needed, 1),
        }
    )
    checks.append(
        Check(
            "enough initiators (Lemma 4)",
            len(decomposition.initiators) >= needed,
            f"{len(decomposition.initiators)} >= {needed:.1f}",
        )
    )
    return ExperimentReport(
        experiment_id="E10",
        title=f"message lower bounds (n = {n}, alpha = {alpha})",
        paper_claim="Theorems 4.2/5.2: Omega(n^1/2/alpha^{3/2}) messages needed for success prob > 2/e",
        rows=rows,
        checks=checks,
        columns=["measurement", "value"],
    )


E10 = Experiment("E10", "lower bounds", "Thms 4.2/5.2", _run_e10)
