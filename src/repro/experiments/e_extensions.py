"""Experiments E15-E16: the paper's open problems, explored.

* E15 (open problem 3, Byzantine faults) — the crash-fault protocols are
  *not* Byzantine-tolerant: a single zero-forger breaks agreement
  validity, and a single rank-forger (or equivocator pair) captures or
  voids the election — while the same node count under crash faults is
  harmless.  This measured cliff is exactly why sub-linear Byzantine
  agreement is open.
* E16 (open problem 2, general graphs) — a random-walk-based implicit
  election in the style of [43] works beyond the complete graph; its
  message cost scales with the topology's mixing time (expander ~
  complete ≪ torus), matching the ``Õ(sqrt(n) t_mix)`` shape.
"""

from __future__ import annotations

from typing import List

from ..analysis.stats import mean, summarize_trials
from ..core.runner import agree, elect_leader
from ..extensions.byzantine import (
    run_byzantine_agreement,
    run_byzantine_election,
)
from ..extensions.general_graphs import walk_based_leader_election
from ..rng import seed_sequence
from .harness import Check, Experiment, ExperimentReport


def _run_e15(quick: bool) -> ExperimentReport:
    n = 96 if quick else 256
    alpha = 0.5
    trials = 5 if quick else 12
    rows: List[dict] = []
    checks: List[Check] = []

    # Crash-fault control at the same corruption count.
    crash_control = summarize_trials(
        [
            agree(n=n, alpha=alpha, inputs="all1", seed=seed, adversary="random",
                  faulty_count=1).success
            for seed in seed_sequence(120, trials)
        ]
    )
    forged = [
        run_byzantine_agreement(n=n, alpha=alpha, byzantine_count=1, seed=seed)
        for seed in seed_sequence(121, trials)
    ]
    validity = summarize_trials([o.validity_holds for o in forged])
    rows.append(
        {
            "scenario": "agreement, 1 crash-faulty node",
            "guarantee": "validity+agreement",
            "holds": crash_control.rate,
        }
    )
    rows.append(
        {
            "scenario": "agreement, 1 zero-forger (Byzantine)",
            "guarantee": "validity",
            "holds": validity.rate,
        }
    )
    checks.append(
        Check("crash faults are harmless at count 1", crash_control.at_least(0.95),
              str(crash_control))
    )
    checks.append(
        Check(
            "one Byzantine forger breaks validity",
            validity.clearly_below(0.5),
            str(validity),
        )
    )

    crash_le = summarize_trials(
        [
            elect_leader(n=n, alpha=alpha, seed=seed, adversary="random",
                         faulty_count=1).success
            for seed in seed_sequence(122, trials)
        ]
    )
    captured = [
        run_byzantine_election(n=n, alpha=alpha, byzantine_count=1, seed=seed)
        for seed in seed_sequence(123, trials)
    ]
    capture_rate = summarize_trials([o.byzantine_won for o in captured])
    rows.append(
        {
            "scenario": "election, 1 crash-faulty node",
            "guarantee": "unique honest leader",
            "holds": crash_le.rate,
        }
    )
    rows.append(
        {
            "scenario": "election, 1 rank-forger (Byzantine)",
            "guarantee": "not captured",
            "holds": 1.0 - capture_rate.rate,
        }
    )
    checks.append(
        Check(
            "one Byzantine rank-forger captures the election",
            capture_rate.at_least(0.9),
            str(capture_rate),
        )
    )
    return ExperimentReport(
        experiment_id="E15",
        title=f"Byzantine stress (open problem 3, n={n})",
        paper_claim=(
            "Section VI (3): sub-linear agreement under Byzantine faults is open — "
            "the crash-fault protocols collapse under a single liar"
        ),
        rows=rows,
        checks=checks,
        columns=["scenario", "guarantee", "holds"],
    )


def _run_e16(quick: bool) -> ExperimentReport:
    # Walk simulation costs ~n * sqrt(n log n) * t_mix steps; the torus's
    # t_mix ~ n keeps full-mode sizes modest.
    n = 144 if quick else 400
    trials = 4 if quick else 5
    rows: List[dict] = []
    checks: List[Check] = []
    measured = {}
    for kind in ("complete", "regular", "torus"):
        outcomes = [
            walk_based_leader_election(n=n, graph_kind=kind, seed=seed)
            for seed in seed_sequence(124, trials)
        ]
        success = summarize_trials([o.success for o in outcomes])
        messages = mean([o.messages for o in outcomes])
        measured[kind] = messages
        rows.append(
            {
                "graph": kind,
                "success": success.rate,
                "messages": round(messages),
                "rounds": outcomes[0].rounds,
            }
        )
        checks.append(
            Check(
                f"{kind}: walk-based election succeeds w.h.p.",
                success.at_least(0.7 if quick else 0.85),
                str(success),
            )
        )
    checks.append(
        Check(
            "cost scales with mixing time (torus >> expander)",
            measured["torus"] > 3 * measured["regular"],
            f"torus {measured['torus']:.0f} vs regular {measured['regular']:.0f}",
        )
    )
    return ExperimentReport(
        experiment_id="E16",
        title=f"general graphs (open problem 2, n={n})",
        paper_claim=(
            "Section VI (2): message complexity in general graphs — the [43]-style "
            "walk election pays Õ(sqrt(n) t_mix)"
        ),
        rows=rows,
        checks=checks,
    )


E15 = Experiment("E15", "Byzantine stress", "open problem 3", _run_e15)
E16 = Experiment("E16", "general graphs", "open problem 2", _run_e16)
