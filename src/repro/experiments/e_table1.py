"""Experiment E9: the paper's Table I, measured.

Table I compares agreement protocols on messages / rounds / resilience /
knowledge model.  We run every comparator on the same simulator, same
faulty budget (``n/2 - 1``, the greatest value all protocols tolerate),
same uniformly random crash adversary, and report measured columns.

Shape checks (who wins, not absolute numbers):

* flooding pays quadratically: its messages dwarf everyone else's;
* our implicit agreement *grows* sublinearly while the O(n log n)
  protocols grow (super-)linearly — measured by doubling ratios;
* every protocol reaches its correctness condition w.h.p. under this
  adversary.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from ..analysis.stats import mean, summarize_trials
from ..baselines import (
    committee_agreement,
    flooding_consensus,
    gossip_consensus,
    rotating_coordinator_consensus,
)
from ..core.runner import agree, make_inputs
from ..faults.strategies import RandomCrash
from .harness import Check, Experiment, ExperimentReport


def _runners(n: int, faulty: int) -> Dict[str, Callable[[int], object]]:
    def ours(seed: int):
        return agree(
            n=n,
            alpha=0.5,
            inputs="mixed",
            seed=seed,
            adversary="random",
            faulty_count=faulty,
        )

    def gk(seed: int):
        inputs = make_inputs(n, "mixed", seed)
        return committee_agreement(
            n, inputs, seed=seed, adversary=RandomCrash(horizon=8), faulty_count=faulty
        )

    def ck(seed: int):
        inputs = make_inputs(n, "mixed", seed)
        return gossip_consensus(
            n, inputs, seed=seed, adversary=RandomCrash(horizon=8), faulty_count=faulty
        )

    def flood(seed: int):
        inputs = make_inputs(n, "mixed", seed)
        return flooding_consensus(
            n, inputs, seed=seed, adversary=RandomCrash(horizon=8), faulty_count=faulty
        )

    def rc(seed: int):
        inputs = make_inputs(n, "mixed", seed)
        return rotating_coordinator_consensus(
            n, inputs, seed=seed, adversary=RandomCrash(horizon=8), faulty_count=faulty
        )

    return {
        "this paper (implicit)": ours,
        "gilbert-kowalski [24]": gk,
        "chlebus-kowalski [36]": ck,
        "rotating-coord [35,37]": rc,
        "flooding (naive)": flood,
    }


def _run_e9(quick: bool) -> ExperimentReport:
    sizes = [128, 256] if quick else [256, 512, 1024]
    trials = 3 if quick else 6
    rows: List[Dict[str, object]] = []
    by_protocol: Dict[str, List[float]] = {}
    success_by_protocol: Dict[str, List[float]] = {}
    from ..rng import seed_sequence

    for n in sizes:
        faulty = n // 2 - 1
        for name, runner in _runners(n, faulty).items():
            results = [runner(seed) for seed in seed_sequence(110 + n, trials)]
            messages = mean([r.messages for r in results])
            rounds = mean([r.rounds for r in results])
            success = summarize_trials([r.success for r in results])
            rows.append(
                {
                    "protocol": name,
                    "n": n,
                    "f": faulty,
                    "messages": round(messages),
                    "rounds": round(rounds, 1),
                    "success": success.rate,
                }
            )
            by_protocol.setdefault(name, []).append(messages)
            success_by_protocol.setdefault(name, []).append(success.rate)

    checks: List[Check] = []
    ours = by_protocol["this paper (implicit)"]
    flood = by_protocol["flooding (naive)"]
    checks.append(
        Check(
            "flooding pays quadratically vs our protocol",
            flood[-1] > 5 * ours[-1],
            f"flooding {flood[-1]:.0f} vs ours {ours[-1]:.0f} at n={sizes[-1]}",
        )
    )
    our_growth = ours[-1] / ours[0]
    flood_growth = flood[-1] / flood[0]
    checks.append(
        Check(
            "our growth rate is the slowest in the table",
            all(
                our_growth <= by_protocol[name][-1] / by_protocol[name][0] + 1e-9
                for name in by_protocol
            ),
            f"ours x{our_growth:.2f} vs flooding x{flood_growth:.2f} "
            f"over n={sizes[0]}..{sizes[-1]}",
        )
    )
    checks.append(
        Check(
            "every protocol meets its correctness condition w.h.p.",
            all(min(rates) >= (0.6 if quick else 0.8) for rates in success_by_protocol.values()),
            "success column",
        )
    )
    return ExperimentReport(
        experiment_id="E9",
        title="Table I: agreement protocol comparison (measured)",
        paper_claim="Table I: message/round/resilience comparison of crash-fault agreement protocols",
        rows=rows,
        checks=checks,
        columns=["protocol", "n", "f", "messages", "rounds", "success"],
    )


E9 = Experiment("E9", "Table I comparison", "Table I", _run_e9)
