"""Experiments E1-E4: Theorem 4.1 (fault-tolerant leader election).

* E1 — message complexity vs ``n`` is ``Theta(n^1/2 log^{5/2} n)`` at
  constant alpha: the measured curve, normalised by the bound, stays flat,
  and the fitted growth exponent is well below linear.
* E2 — message complexity vs ``alpha`` grows as ``alpha^{-5/2}``:
  normalised flatness across an alpha sweep.
* E3 — round complexity is ``Theta(log n / alpha)``.
* E4 — the elected leader is non-faulty with probability ``>= alpha``.
"""

from __future__ import annotations

from typing import Dict, List

from ..analysis.complexity import fit_power_law, polylog_flatness
from ..analysis.stats import mean, summarize_trials
from ..analysis.sweeps import monte_carlo
from ..core.runner import elect_leader
from ..lowerbound.bounds import le_upper_bound
from .harness import Check, Experiment, ExperimentReport

#: Normalised-curve flatness tolerance (max/min ratio) accepted as Theta().
FLATNESS_TOLERANCE = 3.5


def _run_e1(quick: bool) -> ExperimentReport:
    sizes = [64, 128, 256] if quick else [128, 256, 512, 1024]
    trials = 3 if quick else 8
    alpha = 0.5
    rows: List[Dict[str, object]] = []
    xs: List[float] = []
    ys: List[float] = []
    for n in sizes:
        results = monte_carlo(
            lambda seed, n=n: elect_leader(n=n, alpha=alpha, seed=seed, adversary="random"),
            trials=trials,
            master_seed=101,
        )
        messages = mean([r.messages for r in results])
        success = summarize_trials([r.success for r in results])
        bound = le_upper_bound(n, alpha)
        rows.append(
            {
                "n": n,
                "messages": round(messages),
                "bound": round(bound),
                "messages/bound": messages / bound,
                "success": success.rate,
            }
        )
        xs.append(float(n))
        ys.append(messages)
    fit = fit_power_law(xs, ys)
    flatness = polylog_flatness(xs, ys, lambda n: le_upper_bound(int(n), alpha))
    report = ExperimentReport(
        experiment_id="E1",
        title="leader election: messages vs n (alpha = 1/2)",
        paper_claim="Theorem 4.1: O(n^1/2 log^{5/2} n / alpha^{5/2}) messages",
        rows=rows,
    )
    report.checks.append(
        Check(
            "sublinear growth",
            fit.exponent < 1.0,
            f"fitted exponent {fit.exponent:.2f} (sqrt + polylog drift expected ~0.6-0.9)",
        )
    )
    report.checks.append(
        Check(
            "matches Theta(n^1/2 log^{5/2} n)",
            flatness <= FLATNESS_TOLERANCE,
            f"normalised max/min ratio {flatness:.2f} <= {FLATNESS_TOLERANCE}",
        )
    )
    report.checks.append(
        Check(
            "elects a leader w.h.p.",
            all(row["success"] >= 0.99 for row in rows) if not quick
            else all(row["success"] > 0.6 for row in rows),
            "success rate per n in table",
        )
    )
    return report


def _run_e2(quick: bool) -> ExperimentReport:
    # Message cost grows as alpha^{-5/2}: the alpha=0.25 point is already
    # ~10x the alpha=1 point, which is plenty to fit the scaling.
    n = 128 if quick else 512
    alphas = [1.0, 0.5] if quick else [1.0, 0.5, 0.25]
    trials = 3 if quick else 4
    rows: List[Dict[str, object]] = []
    normalised: List[float] = []
    for alpha in alphas:
        results = monte_carlo(
            lambda seed, alpha=alpha: elect_leader(
                n=n, alpha=alpha, seed=seed, adversary="random"
            ),
            trials=trials,
            master_seed=102,
        )
        messages = mean([r.messages for r in results])
        bound = le_upper_bound(n, alpha)
        rows.append(
            {
                "alpha": alpha,
                "max_faulty": results[0].metrics.crashes,
                "messages": round(messages),
                "bound": round(bound),
                "messages/bound": messages / bound,
                "success": summarize_trials([r.success for r in results]).rate,
            }
        )
        normalised.append(messages / bound)
    monotone = all(
        a["messages"] <= b["messages"]
        for a, b in zip(rows, rows[1:])
    )
    flat = max(normalised) / min(normalised)
    report = ExperimentReport(
        experiment_id="E2",
        title=f"leader election: messages vs alpha (n = {n})",
        paper_claim="Theorem 4.1: message complexity scales as alpha^{-5/2}",
        rows=rows,
    )
    report.checks.append(
        Check(
            "messages grow as faults grow",
            monotone,
            "message count non-decreasing as alpha decreases",
        )
    )
    report.checks.append(
        Check(
            "matches alpha^{-5/2} shape",
            flat <= FLATNESS_TOLERANCE,
            f"normalised max/min ratio {flat:.2f} <= {FLATNESS_TOLERANCE}",
        )
    )
    return report


def _run_e3(quick: bool) -> ExperimentReport:
    points = (
        [(64, 1.0), (128, 0.5)]
        if quick
        else [(128, 1.0), (256, 1.0), (512, 0.5), (512, 0.25), (1024, 0.5)]
    )
    trials = 3 if quick else 5
    rows: List[Dict[str, object]] = []
    normalised: List[float] = []
    for n, alpha in points:
        results = monte_carlo(
            lambda seed, n=n, alpha=alpha: elect_leader(
                n=n, alpha=alpha, seed=seed, adversary="staggered"
            ),
            trials=trials,
            master_seed=103,
        )
        rounds = mean([r.rounds for r in results])
        import math

        bound = math.log(n) / alpha
        rows.append(
            {
                "n": n,
                "alpha": alpha,
                "rounds": round(rounds),
                "log(n)/alpha": round(bound, 1),
                "rounds/bound": rounds / bound,
            }
        )
        normalised.append(rounds / bound)
    flat = max(normalised) / min(normalised)
    report = ExperimentReport(
        experiment_id="E3",
        title="leader election: rounds vs log(n)/alpha",
        paper_claim="Theorem 4.1: O(log n / alpha) rounds",
        rows=rows,
    )
    report.checks.append(
        Check(
            "matches Theta(log n / alpha)",
            flat <= FLATNESS_TOLERANCE,
            f"normalised max/min ratio {flat:.2f} <= {FLATNESS_TOLERANCE}",
        )
    )
    return report


def _run_e4(quick: bool) -> ExperimentReport:
    n = 128 if quick else 256
    alphas = [0.5] if quick else [0.75, 0.5]
    trials = 20 if quick else 50
    rows: List[Dict[str, object]] = []
    checks: List[Check] = []
    for alpha in alphas:
        results = monte_carlo(
            lambda seed, alpha=alpha: elect_leader(
                n=n, alpha=alpha, seed=seed, adversary="lazy"
            ),
            trials=trials,
            master_seed=104,
        )
        judged = [r for r in results if r.success]
        nonfaulty = summarize_trials(
            [not r.leader_is_faulty for r in judged]
        )
        rows.append(
            {
                "alpha": alpha,
                "trials": len(judged),
                "leader_nonfaulty_rate": nonfaulty.rate,
                "wilson_low": nonfaulty.interval[0],
                "required": alpha,
            }
        )
        checks.append(
            Check(
                f"alpha={alpha}: P[leader non-faulty] >= alpha",
                nonfaulty.at_least(alpha),
                f"{nonfaulty}",
            )
        )
    report = ExperimentReport(
        experiment_id="E4",
        title=f"elected leader is non-faulty w.p. >= alpha (n = {n})",
        paper_claim="Theorem 4.1: the elected leader is non-faulty w.p. >= alpha",
        rows=rows,
        checks=checks,
    )
    return report


E1 = Experiment("E1", "LE messages vs n", "Thm 4.1 message bound", _run_e1)
E2 = Experiment("E2", "LE messages vs alpha", "Thm 4.1 alpha scaling", _run_e2)
E3 = Experiment("E3", "LE rounds", "Thm 4.1 round bound", _run_e3)
E4 = Experiment("E4", "leader quality", "Thm 4.1 non-faulty leader", _run_e4)
