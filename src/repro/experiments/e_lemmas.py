"""Experiment E5: the sampling lemmas behind the committee structure.

* Lemma 1 — with candidate probability ``6 log n/(alpha n)``, the
  committee size is in ``[2 log n/alpha, 12 log n/alpha]`` w.h.p.
* Lemma 2 — the committee contains a non-faulty node w.h.p.
* Lemma 3 — every pair of candidates shares a non-faulty referee w.h.p.

These are pure sampling facts, so the experiment measures them directly
(no network run needed), with the faulty set chosen uniformly at maximum
size.
"""

from __future__ import annotations

import math
import random
from itertools import combinations
from typing import Dict, List

from ..analysis.stats import summarize_trials
from ..params import Params
from ..rng import seed_sequence
from .harness import Check, Experiment, ExperimentReport


def _sample_committee(params: Params, rng: random.Random) -> List[int]:
    p = params.candidate_probability
    return [u for u in range(params.n) if rng.random() < p]


def _trial(params: Params, seed: int) -> Dict[str, bool]:
    rng = random.Random(seed)
    n = params.n
    committee = _sample_committee(params, rng)
    faulty = set(rng.sample(range(n), params.max_faulty))
    log_n = math.log(n)
    lo = 2 * log_n / params.alpha
    hi = 12 * log_n / params.alpha
    size_ok = lo <= len(committee) <= hi
    nonfaulty_ok = any(u not in faulty for u in committee)

    referees = {
        u: set(rng.sample([v for v in range(n) if v != u], params.referee_count))
        for u in committee
    }
    pair_ok = all(
        any(w not in faulty for w in referees[u] & referees[v])
        for u, v in combinations(committee, 2)
    )
    return {
        "size_in_band": size_ok,
        "has_nonfaulty_candidate": nonfaulty_ok,
        "pairwise_common_nonfaulty_referee": pair_ok,
        "committee_size": len(committee),
    }


def _run_e5(quick: bool) -> ExperimentReport:
    configs = (
        [(256, 0.5)] if quick else [(256, 0.5), (1024, 0.5), (1024, 0.25), (4096, 0.5)]
    )
    trials = 20 if quick else 50
    rows = []
    checks = []
    for n, alpha in configs:
        params = Params(n=n, alpha=alpha)
        outcomes = [
            _trial(params, seed) for seed in seed_sequence(105 + n, trials)
        ]
        size = summarize_trials([o["size_in_band"] for o in outcomes])
        nonfaulty = summarize_trials(
            [o["has_nonfaulty_candidate"] for o in outcomes]
        )
        pair = summarize_trials(
            [o["pairwise_common_nonfaulty_referee"] for o in outcomes]
        )
        mean_size = sum(o["committee_size"] for o in outcomes) / trials
        rows.append(
            {
                "n": n,
                "alpha": alpha,
                "mean_|C|": round(mean_size, 1),
                "expected_|C|": round(params.expected_candidates, 1),
                "size_band_rate": size.rate,
                "nonfaulty_rate": nonfaulty.rate,
                "common_referee_rate": pair.rate,
            }
        )
        checks.append(
            Check(
                f"n={n}, alpha={alpha}: Lemma 1 size band",
                size.at_least(0.95),
                str(size),
            )
        )
        checks.append(
            Check(
                f"n={n}, alpha={alpha}: Lemma 2 non-faulty candidate",
                nonfaulty.at_least(0.99),
                str(nonfaulty),
            )
        )
        checks.append(
            Check(
                f"n={n}, alpha={alpha}: Lemma 3 common non-faulty referee",
                pair.at_least(0.95),
                str(pair),
            )
        )
    return ExperimentReport(
        experiment_id="E5",
        title="sampling lemmas 1-3",
        paper_claim="Lemmas 1-3: committee size, non-faulty member, common referees, all w.h.p.",
        rows=rows,
        checks=checks,
    )


E5 = Experiment("E5", "sampling lemmas", "Lemmas 1-3", _run_e5)
