"""Experiment E14: why the paper assumes *static* fault selection.

Section II: "We assume a static adversary controls the faulty nodes,
which selects the faulty nodes before the execution starts.  However, the
adversary can adaptively choose when and how a node crashes."

E14 demonstrates that the first half of that sentence is load-bearing: an
*adaptive-selection* adversary (``CandidateHunter``) that corrupts
whichever nodes speak first destroys the committee approach whenever the
fault budget covers the committee — while the same budget under static
selection is harmless.  It also measures the Section V remark that the
LE-based agreement reduction pays a polylog/alpha factor over the direct
protocol (both under static selection).
"""

from __future__ import annotations

from typing import List

from ..analysis.stats import mean, summarize_trials
from ..analysis.sweeps import monte_carlo
from ..core.runner import agree, agree_via_election, elect_leader
from .harness import Check, Experiment, ExperimentReport


def _run_e14(quick: bool) -> ExperimentReport:
    n = 96 if quick else 256
    alpha = 0.5
    trials = 5 if quick else 15
    rows: List[dict] = []
    checks: List[Check] = []

    # The hunter needs the committee to fit inside the fault budget
    # (|C| <= (1-alpha) n); at small n the paper constant 6 makes the
    # committee larger than that, so quick mode shrinks it.
    params = None
    if quick:
        from ..params import Params

        params = Params(n=n, alpha=alpha, candidate_factor=3.0)

    # --- static vs adaptive selection, same fault budget -----------------
    static = monte_carlo(
        lambda seed: elect_leader(
            n=n, alpha=alpha, seed=seed, adversary="random", params=params
        ),
        trials=trials,
        master_seed=116,
    )
    adaptive = monte_carlo(
        lambda seed: elect_leader(
            n=n, alpha=alpha, seed=seed, adversary="hunter", params=params
        ),
        trials=trials,
        master_seed=116,
    )
    static_rate = summarize_trials([r.success for r in static])
    adaptive_rate = summarize_trials([r.success for r in adaptive])
    rows.append(
        {
            "scenario": "election, static selection (paper model)",
            "success": static_rate.rate,
            "messages": round(mean([r.messages for r in static])),
        }
    )
    rows.append(
        {
            "scenario": "election, adaptive selection (hunter)",
            "success": adaptive_rate.rate,
            "messages": round(mean([r.messages for r in adaptive])),
        }
    )
    checks.append(
        Check(
            "static selection survives the same budget",
            static_rate.at_least(0.9),
            str(static_rate),
        )
    )
    checks.append(
        Check(
            "adaptive selection destroys the committee",
            adaptive_rate.clearly_below(0.5),
            str(adaptive_rate),
        )
    )

    # --- direct agreement vs LE-based reduction --------------------------
    direct = monte_carlo(
        lambda seed: agree(
            n=n, alpha=alpha, inputs="mixed", seed=seed, adversary="random"
        ),
        trials=trials,
        master_seed=117,
    )
    reduced = monte_carlo(
        lambda seed: agree_via_election(
            n=n, alpha=alpha, inputs="mixed", seed=seed, adversary="random"
        ),
        trials=trials,
        master_seed=117,
    )
    direct_messages = mean([r.messages for r in direct])
    reduced_messages = mean([r.messages for r in reduced])
    rows.append(
        {
            "scenario": "agreement, direct (Sec V-A)",
            "success": summarize_trials([r.success for r in direct]).rate,
            "messages": round(direct_messages),
        }
    )
    rows.append(
        {
            "scenario": "agreement via leader election (Sec V remark)",
            "success": summarize_trials([r.success for r in reduced]).rate,
            "messages": round(reduced_messages),
        }
    )
    checks.append(
        Check(
            "the reduction pays a polylog/alpha factor",
            reduced_messages > 2 * direct_messages,
            f"{reduced_messages:.0f} vs {direct_messages:.0f}",
        )
    )
    return ExperimentReport(
        experiment_id="E14",
        title=f"model boundaries: adaptive selection & the LE reduction (n={n})",
        paper_claim=(
            "Section II: static fault selection is assumed; Section V: agreement "
            "via LE costs O(n^1/2 log^{5/2} n/alpha^{5/2})"
        ),
        rows=rows,
        checks=checks,
        columns=["scenario", "success", "messages"],
    )


E14 = Experiment("E14", "model boundaries", "static-selection assumption", _run_e14)
