"""The experiment registry (ids E1-E17, DESIGN.md section 4)."""

from __future__ import annotations

from typing import Dict, List

from .e_adaptive import E14
from .e_agreement import E6, E7, E8
from .e_extensions import E15, E16
from .e_ablations import E13
from .e_leader import E1, E2, E3, E4
from .e_lemmas import E5
from .e_lowerbound import E10
from .e_parity import E12
from .e_partial_synchrony import E17
from .e_table1 import E9
from .e_thresholds import E11
from .harness import Experiment

_ALL: List[Experiment] = [
    E1, E2, E3, E4, E5, E6, E7, E8, E9, E10, E11, E12, E13, E14, E15, E16,
    E17,
]
_BY_ID: Dict[str, Experiment] = {e.experiment_id: e for e in _ALL}


def all_experiments() -> List[Experiment]:
    """All registered experiments in id order."""
    return list(_ALL)


def get_experiment(experiment_id: str) -> Experiment:
    """Look up an experiment by id (e.g. ``"E9"``)."""
    key = experiment_id.upper()
    try:
        return _BY_ID[key]
    except KeyError:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; known: {sorted(_BY_ID)}"
        ) from None
