"""The shared-nothing process-pool trial scheduler.

Trials are described by picklable :class:`~repro.parallel.spec.TrialSpec`
objects, dispatched to a ``concurrent.futures.ProcessPoolExecutor`` in
contiguous chunks, executed by warm, reused worker processes, and
reassembled **by trial index** — so the output of a parallel campaign is
exactly the output of the serial one, independent of worker timing.

Determinism contract
--------------------

* Seeds are derived *before* dispatch (the caller enumerates the same
  ``seed_sequence`` stream it would use serially).
* Workers share nothing; each trial is a pure function of its spec.
* Results are placed at ``spec.index``; chunking and completion order
  are invisible in the output.

Two entry points:

* :func:`run_trials` — plain mode, mirroring serial ``monte_carlo``: the
  first trial exception propagates to the caller.
* :func:`run_trials_resilient` — every trial runs under the
  :mod:`repro.exec` safety net *inside its worker* (per-trial SIGALRM
  timeout + derived-seed retries), while quarantine consultation, resume
  lookups, and JSONL journal writes stay in the parent, which serialises
  them (one writer, no cross-process file races).
"""

from __future__ import annotations

import os
import pickle
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..errors import ConfigurationError
from ..exec import QUARANTINED, RESUMED, ResilientExecutor, RetryPolicy, TrialOutcome
from ..obs.progress import ProgressReporter, ProgressSpec, ensure_progress
from ..obs.timing import (
    NULL_TIMERS,
    PHASE_POOL_DISPATCH,
    PHASE_POOL_REASSEMBLY,
    PhaseTimers,
)
from .spec import TrialSpec, resolve_task

#: Chunks per worker used when no explicit chunk size is given: small
#: enough to balance load, large enough to amortise pickling.
_CHUNKS_PER_WORKER = 4


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalise a ``jobs`` request: ``None``/``1`` serial, ``0`` = cores."""
    if jobs is None:
        return 1
    jobs = int(jobs)
    if jobs < 0:
        raise ConfigurationError(f"jobs must be >= 0, got {jobs}")
    if jobs == 0:
        return os.cpu_count() or 1
    return jobs


def default_chunk_size(total: int, jobs: int) -> int:
    """Contiguous chunk length for ``total`` trials over ``jobs`` workers."""
    if total <= 0:
        return 1
    return max(1, -(-total // (jobs * _CHUNKS_PER_WORKER)))


def _chunked(specs: Sequence[TrialSpec], size: int) -> List[List[TrialSpec]]:
    return [list(specs[i : i + size]) for i in range(0, len(specs), size)]


def _check_picklable(specs: Sequence[TrialSpec]) -> None:
    """Fail fast (and helpfully) on unpicklable work instead of inside the pool."""
    if not specs:
        return
    try:
        pickle.dumps(specs[0])
    except Exception as exc:
        raise ConfigurationError(
            "trial task/point is not picklable, so it cannot cross a "
            "process boundary; pass a module-level task (or a "
            "'module:qualname' reference) or run with jobs=1 "
            f"(pickle error: {exc})"
        ) from exc


# ----------------------------------------------------------------------
# Worker-side execution (module-level so the pool can pickle them)
# ----------------------------------------------------------------------

#: Per-worker executor cache: one ResilientExecutor per distinct
#: (timeout, retries) config, reused across every chunk the worker runs.
_WORKER_EXECUTORS: Dict[Tuple[Optional[float], int], ResilientExecutor] = {}


def _run_chunk(chunk: List[TrialSpec]) -> List[Tuple[int, Any]]:
    """Plain worker: run each spec, letting exceptions propagate."""
    return [(spec.index, spec.run()) for spec in chunk]


def _run_chunk_resilient(
    chunk: List[TrialSpec],
    timeout_seconds: Optional[float],
    retries: int,
) -> List[Tuple[int, TrialOutcome]]:
    """Resilient worker: every trial under timeout/retry, never raising."""
    config = (timeout_seconds, retries)
    executor = _WORKER_EXECUTORS.get(config)
    if executor is None:
        executor = ResilientExecutor(
            timeout_seconds=timeout_seconds,
            retry=RetryPolicy(retries=retries),
        )
        _WORKER_EXECUTORS[config] = executor
    outcomes: List[Tuple[int, TrialOutcome]] = []
    for spec in chunk:
        outcome = executor.run_trial(
            resolve_task(spec.task),
            key=spec.key or f"trial[{spec.index}]",
            seed=spec.seed,
            **spec.point,
        )
        outcomes.append((spec.index, outcome))
    return outcomes


# ----------------------------------------------------------------------
# Parent-side scheduling
# ----------------------------------------------------------------------


def run_trials(
    specs: Sequence[TrialSpec],
    jobs: int = 1,
    chunk_size: Optional[int] = None,
    *,
    timers: Optional[PhaseTimers] = None,
    progress: ProgressSpec = False,
) -> List[Any]:
    """Run ``specs`` and return their results in index order.

    With ``jobs`` resolving to 1 (or a single spec) this is a plain
    serial loop — byte-for-byte today's behaviour.  Otherwise chunks are
    dispatched to a process pool and results reassembled by index.  A
    trial exception propagates, exactly as in a serial run.

    ``timers`` (a :class:`~repro.obs.PhaseTimers`) profiles the parent's
    two pool phases — chunk dispatch and result reassembly; ``progress``
    turns on a stderr heartbeat (see :mod:`repro.obs.progress`).
    Neither affects results.
    """
    jobs = resolve_jobs(jobs)
    timers = timers if timers is not None else NULL_TIMERS
    # A caller-supplied reporter is shared across layers: the caller
    # owns its lifetime, so only a locally-built one gets finish() here.
    owns_reporter = not isinstance(progress, ProgressReporter)
    reporter = ensure_progress(progress, total=len(specs), label="trials")
    if jobs == 1 or len(specs) <= 1:
        results = []
        for spec in specs:
            results.append(spec.run())
            reporter.advance(completed=1, attempted=1)
        if owns_reporter:
            reporter.finish()
        return results
    _check_picklable(specs)
    reporter.set_workers(jobs)
    size = chunk_size or default_chunk_size(len(specs), jobs)
    results: List[Any] = [None] * len(specs)
    base = min(spec.index for spec in specs) if specs else 0
    chunks = _chunked(specs, size)
    with ProcessPoolExecutor(max_workers=jobs) as pool:
        with timers.timed(PHASE_POOL_DISPATCH):
            futures = [pool.submit(_run_chunk, chunk) for chunk in chunks]
        remaining = len(chunks)
        for future in futures:
            chunk_results = future.result()
            remaining -= 1
            with timers.timed(PHASE_POOL_REASSEMBLY):
                for index, value in chunk_results:
                    results[index - base] = value
            reporter.advance(
                completed=len(chunk_results),
                attempted=len(chunk_results),
                busy=min(jobs, remaining),
            )
    if owns_reporter:
        reporter.finish()
    return results


def run_trials_resilient(
    specs: Sequence[TrialSpec],
    jobs: int = 1,
    *,
    executor: ResilientExecutor,
    chunk_size: Optional[int] = None,
    progress: ProgressSpec = False,
) -> List[TrialOutcome]:
    """Run ``specs`` under the resilience layer, parallelised per worker.

    The caller's :class:`~repro.exec.ResilientExecutor` supplies the
    policy (timeout, retries) and owns the parent-side state:

    * **resume** — specs whose key is in ``executor.completed`` are
      answered from the journal without dispatching;
    * **quarantine** — consulted in the parent before dispatch and fed
      back with each worker outcome (success clears strikes, exhausted
      retries add one);
    * **journal** — every outcome is appended by the parent only, so the
      JSONL file has exactly one writer.

    Timeout and retry run *inside* the worker (SIGALRM works there: each
    worker executes trials on its own main thread).  Outcomes are
    returned in spec order; journal append order follows chunk
    completion, which may interleave across grid points — resume only
    keys on record identity, so this is harmless.

    With ``jobs`` resolving to 1, trials run serially through the
    caller's executor itself — identical to the pre-parallel code path.

    ``progress`` turns on a stderr heartbeat: trials completed/attempted,
    throughput/ETA, retry and quarantine counts, and how many workers
    still hold work.
    """
    jobs = resolve_jobs(jobs)
    owns_reporter = not isinstance(progress, ProgressReporter)
    reporter = ensure_progress(progress, total=len(specs), label="trials")
    if jobs == 1 or len(specs) <= 1:
        outcomes_serial: List[TrialOutcome] = []
        for spec in specs:
            outcome = executor.run_trial(
                resolve_task(spec.task),
                key=spec.key or f"trial[{spec.index}]",
                seed=spec.seed,
                **spec.point,
            )
            outcomes_serial.append(outcome)
            _advance_for(reporter, outcome)
        if owns_reporter:
            reporter.finish()
        return outcomes_serial
    _check_picklable(specs)
    reporter.set_workers(jobs)

    base = min(spec.index for spec in specs)
    outcomes: List[Optional[TrialOutcome]] = [None] * len(specs)
    dispatchable: List[TrialSpec] = []
    for spec in specs:
        key = spec.key or f"trial[{spec.index}]"
        record = executor.completed.get(key)
        if record is not None:
            resumed = TrialOutcome(
                key=key,
                seed=int(record.get("seed", spec.seed)),
                status=RESUMED,
                attempts=int(record.get("attempts", 1)),
                value=record.get("value"),
            )
            outcomes[spec.index - base] = resumed
            _advance_for(reporter, resumed)
            continue
        if executor.quarantine.blocks(key):
            outcome = TrialOutcome(
                key=key,
                seed=spec.seed,
                status=QUARANTINED,
                attempts=0,
                error="config quarantined after repeated failures",
            )
            outcomes[spec.index - base] = outcome
            _journal(executor, outcome)
            _advance_for(reporter, outcome)
            continue
        dispatchable.append(spec)

    size = chunk_size or default_chunk_size(len(dispatchable), jobs)
    timeout_seconds = executor.timeout_seconds
    retries = executor.retry.retries
    with ProcessPoolExecutor(max_workers=jobs) as pool:
        pending = {
            pool.submit(_run_chunk_resilient, chunk, timeout_seconds, retries)
            for chunk in _chunked(dispatchable, size)
        }
        while pending:
            done, pending = wait(pending, return_when=FIRST_COMPLETED)
            for future in done:
                for index, outcome in future.result():
                    outcomes[index - base] = outcome
                    if outcome.ok:
                        executor.quarantine.record_success(outcome.key)
                    else:
                        executor.quarantine.record_failure(outcome.key)
                    if outcome.status != RESUMED:
                        _journal(executor, outcome)
                    _advance_for(
                        reporter, outcome, busy=min(jobs, len(pending))
                    )
    if owns_reporter:
        reporter.finish()
    return [outcome for outcome in outcomes if outcome is not None]


def _advance_for(
    reporter: ProgressReporter,
    outcome: TrialOutcome,
    busy: Optional[int] = None,
) -> None:
    """Translate one trial outcome into progress-counter deltas."""
    reporter.advance(
        completed=1 if outcome.ok else 0,
        attempted=max(1, outcome.attempts),
        failed=0 if outcome.ok else 1,
        retries=max(0, outcome.attempts - 1),
        quarantined=1 if outcome.status == QUARANTINED else 0,
        busy=busy,
    )


def _journal(executor: ResilientExecutor, outcome: TrialOutcome) -> None:
    if executor.journal is not None:
        executor.journal.append(outcome.journal_record(executor.serialize))
