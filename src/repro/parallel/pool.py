"""The shared-nothing process-pool trial scheduler.

Trials are described by picklable :class:`~repro.parallel.spec.TrialSpec`
objects, dispatched to a ``concurrent.futures.ProcessPoolExecutor`` in
contiguous chunks, executed by warm, reused worker processes, and
reassembled **by trial index** — so the output of a parallel campaign is
exactly the output of the serial one, independent of worker timing.

Determinism contract
--------------------

* Seeds are derived *before* dispatch (the caller enumerates the same
  ``seed_sequence`` stream it would use serially).
* Workers share nothing; each trial is a pure function of its spec.
* Results are placed at ``spec.index``; chunking and completion order
  are invisible in the output.

Two entry points:

* :func:`run_trials` — plain mode, mirroring serial ``monte_carlo``: the
  first trial exception propagates to the caller.
* :func:`run_trials_resilient` — every trial runs under the
  :mod:`repro.exec` safety net *inside its worker* (per-trial SIGALRM
  timeout + derived-seed retries), while quarantine consultation, resume
  lookups, and JSONL journal writes stay in the parent, which serialises
  them (one writer, no cross-process file races).
"""

from __future__ import annotations

import os
import pickle
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from concurrent.futures.process import BrokenProcessPool

from ..errors import CampaignInterrupted, ConfigurationError, TrialFailed
from ..exec import (
    FAILED,
    QUARANTINED,
    RESUMED,
    ResilientExecutor,
    RetryPolicy,
    TrialOutcome,
)
from ..obs.progress import ProgressReporter, ProgressSpec, ensure_progress
from ..obs.timing import (
    NULL_TIMERS,
    PHASE_POOL_DISPATCH,
    PHASE_POOL_REASSEMBLY,
    PhaseTimers,
)
from .spec import TrialSpec, resolve_task
from .supervisor import (
    GracefulShutdown,
    PoolSupervisor,
    SupervisorStats,
    chunk_deadline_seconds,
)

#: Chunks per worker used when no explicit chunk size is given: small
#: enough to balance load, large enough to amortise pickling.
_CHUNKS_PER_WORKER = 4


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalise a ``jobs`` request: ``None``/``1`` serial, ``0`` = cores."""
    if jobs is None:
        return 1
    jobs = int(jobs)
    if jobs < 0:
        raise ConfigurationError(f"jobs must be >= 0, got {jobs}")
    if jobs == 0:
        return os.cpu_count() or 1
    return jobs


def default_chunk_size(total: int, jobs: int) -> int:
    """Contiguous chunk length for ``total`` trials over ``jobs`` workers."""
    if total <= 0:
        return 1
    return max(1, -(-total // (jobs * _CHUNKS_PER_WORKER)))


def _chunked(specs: Sequence[TrialSpec], size: int) -> List[List[TrialSpec]]:
    return [list(specs[i : i + size]) for i in range(0, len(specs), size)]


def _check_picklable(specs: Sequence[TrialSpec]) -> None:
    """Fail fast (and helpfully) on unpicklable work instead of inside the pool."""
    if not specs:
        return
    try:
        pickle.dumps(specs[0])
    except Exception as exc:
        raise ConfigurationError(
            "trial task/point is not picklable, so it cannot cross a "
            "process boundary; pass a module-level task (or a "
            "'module:qualname' reference) or run with jobs=1 "
            f"(pickle error: {exc})"
        ) from exc


# ----------------------------------------------------------------------
# Worker-side execution (module-level so the pool can pickle them)
# ----------------------------------------------------------------------

#: Per-worker executor cache: one ResilientExecutor per distinct
#: (timeout, retries) config, reused across every chunk the worker runs.
_WORKER_EXECUTORS: Dict[Tuple[Optional[float], int], ResilientExecutor] = {}


class _WorkerTrialError(Exception):
    """Worker-side envelope for a plain-mode trial exception.

    Raised inside the worker, pickled across the process boundary, and
    unwrapped by the parent into a :class:`~repro.errors.TrialFailed`
    that says *which* trial failed *where*.  All constructor arguments go
    through ``super().__init__`` so the exception survives pickling.
    """

    def __init__(
        self,
        index: int,
        key: str,
        worker_pid: int,
        error_type: str,
        error_message: str,
    ) -> None:
        super().__init__(index, key, worker_pid, error_type, error_message)
        self.index = index
        self.key = key
        self.worker_pid = worker_pid
        self.error_type = error_type
        self.error_message = error_message


def _run_chunk(chunk: List[TrialSpec]) -> List[Tuple[int, Any]]:
    """Plain worker: run each spec; wrap the first exception with context."""
    results: List[Tuple[int, Any]] = []
    for spec in chunk:
        try:
            results.append((spec.index, spec.run()))
        except Exception as exc:
            raise _WorkerTrialError(
                spec.index,
                spec.key or f"trial[{spec.index}]",
                os.getpid(),
                type(exc).__name__,
                str(exc),
            ) from exc
    return results


def _run_chunk_resilient(
    chunk: List[TrialSpec],
    timeout_seconds: Optional[float],
    retries: int,
) -> List[Tuple[int, TrialOutcome]]:
    """Resilient worker: every trial under timeout/retry, never raising."""
    config = (timeout_seconds, retries)
    executor = _WORKER_EXECUTORS.get(config)
    if executor is None:
        executor = ResilientExecutor(
            timeout_seconds=timeout_seconds,
            retry=RetryPolicy(retries=retries),
        )
        _WORKER_EXECUTORS[config] = executor
    outcomes: List[Tuple[int, TrialOutcome]] = []
    for spec in chunk:
        outcome = executor.run_trial(
            resolve_task(spec.task),
            key=spec.key or f"trial[{spec.index}]",
            seed=spec.seed,
            **spec.point,
        )
        outcomes.append((spec.index, outcome))
    return outcomes


# ----------------------------------------------------------------------
# Parent-side scheduling
# ----------------------------------------------------------------------


def run_trials(
    specs: Sequence[TrialSpec],
    jobs: int = 1,
    chunk_size: Optional[int] = None,
    *,
    timers: Optional[PhaseTimers] = None,
    progress: ProgressSpec = False,
) -> List[Any]:
    """Run ``specs`` and return their results in index order.

    With ``jobs`` resolving to 1 (or a single spec) this is a plain
    serial loop — byte-for-byte today's behaviour, trial exceptions
    propagating raw.  Otherwise chunks are dispatched to a process pool
    and results reassembled by index; the first trial exception is
    re-raised as a :class:`~repro.errors.TrialFailed` carrying the trial
    index, its spec, and the worker pid (the raw exception stays
    reachable via ``__cause__``), after the executor is shut down cleanly
    with all sibling chunks cancelled.

    ``timers`` (a :class:`~repro.obs.PhaseTimers`) profiles the parent's
    two pool phases — chunk dispatch and result reassembly; ``progress``
    turns on a stderr heartbeat (see :mod:`repro.obs.progress`).
    Neither affects results.
    """
    jobs = resolve_jobs(jobs)
    timers = timers if timers is not None else NULL_TIMERS
    # A caller-supplied reporter is shared across layers: the caller
    # owns its lifetime, so only a locally-built one gets finish() here.
    owns_reporter = not isinstance(progress, ProgressReporter)
    reporter = ensure_progress(progress, total=len(specs), label="trials")
    if jobs == 1 or len(specs) <= 1:
        results = []
        for spec in specs:
            results.append(spec.run())
            reporter.advance(completed=1, attempted=1)
        if owns_reporter:
            reporter.finish()
        return results
    _check_picklable(specs)
    reporter.set_workers(jobs)
    size = chunk_size or default_chunk_size(len(specs), jobs)
    results: List[Any] = [None] * len(specs)
    base = min(spec.index for spec in specs) if specs else 0
    chunks = _chunked(specs, size)
    pool = ProcessPoolExecutor(max_workers=jobs)
    try:
        with timers.timed(PHASE_POOL_DISPATCH):
            futures = [pool.submit(_run_chunk, chunk) for chunk in chunks]
        remaining = len(chunks)
        try:
            for future in futures:
                chunk_results = future.result()
                remaining -= 1
                with timers.timed(PHASE_POOL_REASSEMBLY):
                    for index, value in chunk_results:
                        results[index - base] = value
                reporter.advance(
                    completed=len(chunk_results),
                    attempted=len(chunk_results),
                    busy=min(jobs, remaining),
                )
        except _WorkerTrialError as exc:
            _shutdown_fast(pool, futures)
            spec = next((s for s in specs if s.index == exc.index), None)
            raise TrialFailed(
                f"trial {exc.key} failed in worker {exc.worker_pid}: "
                f"{exc.error_type}: {exc.error_message}",
                trial_index=exc.index,
                spec=spec,
                worker_pid=exc.worker_pid,
            ) from exc
        except BrokenProcessPool as exc:
            _shutdown_fast(pool, futures)
            raise TrialFailed(
                "a worker process died mid-campaign (kill -9 / OOM?); "
                "plain mode cannot recover — rerun under the resilient "
                "scheduler (run_trials_resilient, or sweep with "
                "--retries/--journal) to get supervised redispatch"
            ) from exc
    finally:
        pool.shutdown(wait=True)
    if owns_reporter:
        reporter.finish()
    return results


def _shutdown_fast(pool: ProcessPoolExecutor, futures: Sequence[Any]) -> None:
    """Cancel sibling chunks and stop the pool without waiting on them."""
    for future in futures:
        future.cancel()
    pool.shutdown(wait=False, cancel_futures=True)


#: Per-outcome hook: ``on_outcome(spec, outcome)`` fires once per trial,
#: in completion order, as soon as the outcome is final.
OutcomeHook = Callable[[TrialSpec, TrialOutcome], None]


def run_trials_resilient(
    specs: Sequence[TrialSpec],
    jobs: int = 1,
    *,
    executor: ResilientExecutor,
    chunk_size: Optional[int] = None,
    progress: ProgressSpec = False,
    shutdown: Optional[GracefulShutdown] = None,
    max_dispatches: int = 3,
    on_outcome: Optional[OutcomeHook] = None,
) -> List[TrialOutcome]:
    """Run ``specs`` under the resilience layer, parallelised per worker.

    The caller's :class:`~repro.exec.ResilientExecutor` supplies the
    policy (timeout, retries) and owns the parent-side state:

    * **resume** — specs whose key is in ``executor.completed`` are
      answered from the journal without dispatching;
    * **quarantine** — consulted in the parent before dispatch and fed
      back with each worker outcome (success clears strikes, exhausted
      retries add one);
    * **journal** — every outcome is appended by the parent only, so the
      JSONL file has exactly one writer.

    Timeout and retry run *inside* the worker (SIGALRM works there: each
    worker executes trials on its own main thread).  Outcomes are
    returned in spec order; journal append order follows chunk
    completion, which may interleave across grid points — resume only
    keys on record identity, so this is harmless.

    The parallel path runs under a :class:`PoolSupervisor`: a worker
    killed with ``kill -9``, a hung pool, or a missed chunk deadline
    rebuilds the pool and re-dispatches only the in-flight chunks (at
    most ``max_dispatches`` times; a single trial that keeps breaking its
    worker is recorded as ``failed`` and counted against the quarantine
    instead of retrying forever).  Re-delivered results are ignored via
    the reassembly slots, so every trial lands exactly once.  Supervisor
    counters end up on ``executor.last_supervisor_stats`` and — when
    anything eventful happened — as a ``{"kind": "supervisor"}`` journal
    record.

    ``shutdown`` (a :class:`GracefulShutdown`) stops the campaign at the
    next trial boundary on SIGINT/SIGTERM: the journal is already flushed
    per-outcome, workers are reaped, and
    :class:`~repro.errors.CampaignInterrupted` propagates so the caller
    can advertise ``--resume``.

    With ``jobs`` resolving to 1, trials run serially through the
    caller's executor itself — identical to the pre-parallel code path
    (plus the same shutdown boundary checks).

    ``progress`` turns on a stderr heartbeat: trials completed/attempted,
    throughput/ETA, retry/quarantine counts, pool restarts, and how many
    workers still hold work.

    ``on_outcome(spec, outcome)`` fires once per trial in completion
    order, as soon as the outcome is final (resumed, quarantined, fresh,
    or abandoned) — the seam campaign services use to stream results and
    populate caches while the run is still in flight.  It runs in the
    parent process; exceptions it raises propagate (don't raise).
    """
    jobs = resolve_jobs(jobs)
    owns_reporter = not isinstance(progress, ProgressReporter)
    reporter = ensure_progress(progress, total=len(specs), label="trials")
    if jobs == 1 or len(specs) <= 1:
        outcomes_serial: List[TrialOutcome] = []
        for spec in specs:
            _check_shutdown(shutdown, len(specs) - len(outcomes_serial))
            outcome = executor.run_trial(
                resolve_task(spec.task),
                key=spec.key or f"trial[{spec.index}]",
                seed=spec.seed,
                **spec.point,
            )
            outcomes_serial.append(outcome)
            _advance_for(reporter, outcome)
            if on_outcome is not None:
                on_outcome(spec, outcome)
        if owns_reporter:
            reporter.finish()
        return outcomes_serial
    _check_picklable(specs)
    reporter.set_workers(jobs)

    base = min(spec.index for spec in specs)
    outcomes: List[Optional[TrialOutcome]] = [None] * len(specs)
    spec_by_slot: Dict[int, TrialSpec] = {
        spec.index - base: spec for spec in specs
    }
    dispatchable: List[TrialSpec] = []
    for spec in specs:
        key = spec.key or f"trial[{spec.index}]"
        record = executor.completed.get(key)
        if record is not None:
            resumed = TrialOutcome(
                key=key,
                seed=int(record.get("seed", spec.seed)),
                status=RESUMED,
                attempts=int(record.get("attempts", 1)),
                value=record.get("value"),
            )
            outcomes[spec.index - base] = resumed
            _advance_for(reporter, resumed)
            if on_outcome is not None:
                on_outcome(spec, resumed)
            continue
        if executor.quarantine.blocks(key):
            outcome = TrialOutcome(
                key=key,
                seed=spec.seed,
                status=QUARANTINED,
                attempts=0,
                error="config quarantined after repeated failures",
            )
            outcomes[spec.index - base] = outcome
            _journal(executor, outcome)
            _advance_for(reporter, outcome)
            if on_outcome is not None:
                on_outcome(spec, outcome)
            continue
        dispatchable.append(spec)

    size = chunk_size or default_chunk_size(len(dispatchable), jobs)
    timeout_seconds = executor.timeout_seconds
    retries = executor.retry.retries

    def on_result(index: int, outcome: TrialOutcome) -> None:
        slot = index - base
        if outcomes[slot] is not None:
            # Exactly-once guard: a redispatched chunk (hung worker that
            # was merely slow) may deliver the same trial twice.
            return
        outcomes[slot] = outcome
        if outcome.ok:
            executor.quarantine.record_success(outcome.key)
        else:
            executor.quarantine.record_failure(outcome.key)
        if outcome.status != RESUMED:
            _journal(executor, outcome)
        _advance_for(reporter, outcome)
        if on_outcome is not None:
            on_outcome(spec_by_slot[slot], outcome)

    def on_abandon(spec: TrialSpec, reason: str) -> None:
        slot = spec.index - base
        if outcomes[slot] is not None:
            return
        key = spec.key or f"trial[{spec.index}]"
        outcome = TrialOutcome(
            key=key, seed=spec.seed, status=FAILED, attempts=0, error=reason
        )
        outcomes[slot] = outcome
        executor.quarantine.record_failure(key)
        _journal(executor, outcome)
        _advance_for(reporter, outcome)
        if on_outcome is not None:
            on_outcome(spec, outcome)

    stats = SupervisorStats()
    executor.last_supervisor_stats = stats
    supervisor = PoolSupervisor(
        jobs,
        _run_chunk_resilient,
        (timeout_seconds, retries),
        deadline_seconds=chunk_deadline_seconds(
            timeout_seconds,
            executor.retry.max_attempts,
            sum(executor.retry.delays()),
        ),
        max_dispatches=max_dispatches,
        stats=stats,
        shutdown=shutdown,
        reporter=reporter,
    )
    try:
        supervisor.run(_chunked(dispatchable, size), on_result, on_abandon)
    finally:
        # Interrupted or not, make the supervision events durable: the
        # stats record rides in the journal next to the trial outcomes.
        if stats.eventful and executor.journal is not None:
            executor.journal.append(stats.journal_record())
    if owns_reporter:
        reporter.finish()
    return [outcome for outcome in outcomes if outcome is not None]


def _check_shutdown(
    shutdown: Optional[GracefulShutdown], pending: int
) -> None:
    """Serial-path twin of the supervisor's trial-boundary stop."""
    if shutdown is None or not shutdown.requested:
        return
    raise CampaignInterrupted(
        f"campaign interrupted by {shutdown.describe()}; "
        f"{pending} trial(s) not completed — journal is flushed, "
        "rerun with --resume to continue from this boundary",
        signum=shutdown.signum,
    )


def _advance_for(
    reporter: ProgressReporter,
    outcome: TrialOutcome,
    busy: Optional[int] = None,
) -> None:
    """Translate one trial outcome into progress-counter deltas."""
    reporter.advance(
        completed=1 if outcome.ok else 0,
        attempted=max(1, outcome.attempts),
        failed=0 if outcome.ok else 1,
        retries=max(0, outcome.attempts - 1),
        quarantined=1 if outcome.status == QUARANTINED else 0,
        busy=busy,
    )


def _journal(executor: ResilientExecutor, outcome: TrialOutcome) -> None:
    if executor.journal is not None:
        executor.journal.append(outcome.journal_record(executor.serialize))
