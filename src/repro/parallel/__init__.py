"""Process-pool trial scheduling for Monte-Carlo campaigns.

Shared-nothing parallelism with a hard determinism contract: the output
of ``jobs=N`` is exactly the output of ``jobs=1`` for the same master
seed — same derived seed streams, results reassembled by trial index.
"""

from .pool import (
    OutcomeHook,
    default_chunk_size,
    resolve_jobs,
    run_trials,
    run_trials_resilient,
)
from .spec import TrialSpec, canonical_task_ref, resolve_task, task_ref
from .supervisor import (
    GracefulShutdown,
    PoolSupervisor,
    SupervisorStats,
    chunk_deadline_seconds,
    is_supervisor_record,
)
from .tasks import agreement_trial, ben_or_trial, election_trial

__all__ = [
    "GracefulShutdown",
    "OutcomeHook",
    "PoolSupervisor",
    "SupervisorStats",
    "TrialSpec",
    "agreement_trial",
    "ben_or_trial",
    "canonical_task_ref",
    "chunk_deadline_seconds",
    "default_chunk_size",
    "election_trial",
    "is_supervisor_record",
    "resolve_jobs",
    "resolve_task",
    "run_trials",
    "run_trials_resilient",
    "task_ref",
]
