"""Picklable trial specifications and task references.

A :class:`TrialSpec` names one Monte-Carlo trial: *which* task to run
(either a picklable callable or a ``"module:qualname"`` string
reference), the trial's derived seed, the grid-point keyword arguments,
and the trial's global ``index`` — the position its result must occupy in
the reassembled output, which is what makes a parallel campaign
order-identical to a serial one.

String task references exist for two reasons: they survive pickling even
when the callable itself would not (decorated functions, CLI-configured
partials), and they let each worker process resolve the task *once* and
reuse it for every trial it executes (warm reuse).
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Union

from ..errors import ConfigurationError

#: A task is a callable ``task(seed=..., **point)`` or a string reference.
TaskRef = Union[str, Callable[..., Any]]

#: Per-process cache of resolved string task references (warm reuse: a
#: pool worker resolves each distinct task once, then serves every chunk
#: from the cache).
_RESOLVED: Dict[str, Callable[..., Any]] = {}


def task_ref(task: Callable[..., Any]) -> str:
    """The ``"module:qualname"`` reference of a module-level callable.

    Raises :class:`~repro.errors.ConfigurationError` for callables that
    cannot be named (lambdas, closures, instance methods) — those must be
    shipped as picklable objects instead.
    """
    name = getattr(task, "__qualname__", None)
    module = getattr(task, "__module__", None)
    if not name or not module or "<" in name or "." in name:
        raise ConfigurationError(
            f"task {task!r} is not a module-level function; pass the "
            "callable itself (it must then be picklable)"
        )
    return f"{module}:{name}"


def canonical_task_ref(task: TaskRef) -> str:
    """The stable ``"module:qualname"`` string form of any task.

    String references pass through unchanged; callables are named via
    :func:`task_ref`.  This is the task half of the campaign service's
    cache key, so it must be identical however the task was supplied.
    """
    if isinstance(task, str):
        if ":" not in task:
            raise ConfigurationError(
                f"task reference must be 'module:qualname', got {task!r}"
            )
        return task
    return task_ref(task)


def resolve_task(task: TaskRef) -> Callable[..., Any]:
    """Materialise a task: callables pass through, strings are imported.

    Resolution of string references is cached per process.
    """
    if callable(task):
        return task
    if not isinstance(task, str) or ":" not in task:
        raise ConfigurationError(
            f"task reference must be callable or 'module:qualname', got {task!r}"
        )
    cached = _RESOLVED.get(task)
    if cached is not None:
        return cached
    module_name, _, qualname = task.partition(":")
    try:
        module = importlib.import_module(module_name)
    except ImportError as exc:
        raise ConfigurationError(f"cannot import task module {module_name!r}: {exc}")
    obj: Any = module
    for part in qualname.split("."):
        try:
            obj = getattr(obj, part)
        except AttributeError:
            raise ConfigurationError(
                f"module {module_name!r} has no attribute path {qualname!r}"
            ) from None
    if not callable(obj):
        raise ConfigurationError(f"task reference {task!r} is not callable")
    _RESOLVED[task] = obj
    return obj


@dataclass(frozen=True)
class TrialSpec:
    """One schedulable trial of a Monte-Carlo campaign.

    ``index`` is the trial's position in the *serial* execution order;
    the scheduler reassembles results by it, so output ordering never
    depends on worker timing.  ``key`` is the resilience-layer journal
    key (``None`` outside resilient campaigns).
    """

    index: int
    task: TaskRef
    seed: int
    point: Dict[str, Any] = field(default_factory=dict)
    key: Optional[str] = None
    #: Engine backend forwarded to the task (``None`` = task default).
    #: A separate field rather than a ``point`` entry so grid points stay
    #: pure parameters (journal keys, sweep rows) while the backend —
    #: which never changes results — rides alongside.
    backend: Optional[str] = None

    def run(self) -> Any:
        """Execute the trial in this process (resolves the task first)."""
        kwargs = dict(self.point)
        if self.backend is not None:
            kwargs["backend"] = self.backend
        return resolve_task(self.task)(seed=self.seed, **kwargs)
