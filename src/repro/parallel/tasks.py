"""Module-level, picklable Monte-Carlo trial tasks.

Parallel campaigns need tasks that cross a process boundary.  These
wrappers run the two headline experiments and return their plain-dict
``summary()`` — picklable, JSON-serialisable, and exactly what the
benchmark and CLI sweeps aggregate.

Pass adversaries by *name* (``"random"``, ``"staggered"``, ...): names
are picklable and resolved inside the worker, stateful adversary objects
may not be.
"""

from __future__ import annotations

from typing import Any, Dict


def election_trial(seed: int = 0, **kwargs: Any) -> Dict[str, Any]:
    """One leader-election trial → its ``summary()`` dict."""
    from ..core.runner import elect_leader

    return elect_leader(seed=seed, **kwargs).summary()


def agreement_trial(seed: int = 0, **kwargs: Any) -> Dict[str, Any]:
    """One agreement trial → its ``summary()`` dict."""
    from ..core.runner import agree

    return agree(seed=seed, **kwargs).summary()
