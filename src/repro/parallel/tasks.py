"""Module-level, picklable Monte-Carlo trial tasks.

Parallel campaigns need tasks that cross a process boundary.  These
wrappers run the two headline experiments and return their plain-dict
``summary()`` — picklable, JSON-serialisable, and exactly what the
benchmark and CLI sweeps aggregate.

Pass adversaries by *name* (``"random"``, ``"staggered"``, ...): names
are picklable and resolved inside the worker, stateful adversary objects
may not be.

With ``profile=True`` each trial runs under a fresh
:class:`~repro.obs.PhaseTimers` and its summary gains a
``phase_seconds`` dict — timings ride back through the pool (and into
journals) as plain data.
"""

from __future__ import annotations

from typing import Any, Dict


def election_trial(
    seed: int = 0, profile: bool = False, **kwargs: Any
) -> Dict[str, Any]:
    """One leader-election trial → its ``summary()`` dict."""
    from ..core.runner import elect_leader

    timers = _make_timers(profile)
    result = elect_leader(seed=seed, timers=timers, **kwargs)
    return _with_phases(result.summary(), result.metrics)


def agreement_trial(
    seed: int = 0, profile: bool = False, **kwargs: Any
) -> Dict[str, Any]:
    """One agreement trial → its ``summary()`` dict."""
    from ..core.runner import agree

    timers = _make_timers(profile)
    result = agree(seed=seed, timers=timers, **kwargs)
    return _with_phases(result.summary(), result.metrics)


def _make_timers(profile: bool):
    if not profile:
        return None
    from ..obs.timing import PhaseTimers

    return PhaseTimers()


def _with_phases(summary: Dict[str, Any], metrics: Any) -> Dict[str, Any]:
    if metrics.phase_seconds:
        summary["phase_seconds"] = dict(metrics.phase_seconds)
    return summary
