"""Module-level, picklable Monte-Carlo trial tasks.

Parallel campaigns need tasks that cross a process boundary.  These
wrappers run the headline protocols and return their plain-dict
``summary()`` — picklable, JSON-serialisable, and exactly what the
benchmark and CLI sweeps aggregate.

Pass adversaries by *name* (``"random"``, ``"staggered"``, ...): names
are picklable and resolved inside the worker, stateful adversary objects
may not be.

With ``profile=True`` each trial runs under a fresh
:class:`~repro.obs.PhaseTimers` and its summary gains a
``phase_seconds`` dict — timings ride back through the pool (and into
journals) as plain data.
"""

from __future__ import annotations

from typing import Any, Dict


def election_trial(
    seed: int = 0, profile: bool = False, **kwargs: Any
) -> Dict[str, Any]:
    """One leader-election trial → its ``summary()`` dict."""
    from ..core.runner import elect_leader

    timers = _make_timers(profile)
    result = elect_leader(seed=seed, timers=timers, **kwargs)
    return _with_phases(result.summary(), result.metrics)


def agreement_trial(
    seed: int = 0, profile: bool = False, **kwargs: Any
) -> Dict[str, Any]:
    """One agreement trial → its ``summary()`` dict."""
    from ..core.runner import agree

    timers = _make_timers(profile)
    result = agree(seed=seed, timers=timers, **kwargs)
    return _with_phases(result.summary(), result.metrics)


def ben_or_trial(
    seed: int = 0,
    profile: bool = False,
    n: int = 64,
    alpha: float = 0.5,
    adversary: str = "random",
    inputs: str = "mixed",
    max_delay: int = 0,
    **kwargs: Any,
) -> Dict[str, Any]:
    """One Ben-Or consensus trial → its ``summary()`` dict.

    ``alpha`` maps to the crash budget the other tasks use
    (``Params.max_faulty``), capped at Ben-Or's ``< n/2`` resilience;
    ``max_delay`` > 0 runs the trial under bounded-delay delivery.
    """
    from ..baselines.ben_or import ben_or_consensus, ben_or_horizon
    from ..core.runner import make_inputs
    from ..faults import named_adversary
    from ..params import Params
    from ..sim.delivery import UniformDelay

    timers = _make_timers(profile)
    budget = min(Params(n=n, alpha=alpha).max_faulty, (n - 1) // 2)
    delivery = UniformDelay(max_delay, salt=seed) if max_delay else None
    outcome = ben_or_consensus(
        n=n,
        inputs=make_inputs(n, inputs, seed),
        seed=seed,
        adversary=named_adversary(adversary, ben_or_horizon(max_delay)),
        faulty_count=budget,
        delivery=delivery,
        timers=timers,
        **kwargs,
    )
    summary = outcome.summary()
    summary["alpha"] = alpha
    summary["adversary"] = adversary
    summary["max_delay"] = max_delay
    return _with_phases(summary, outcome.metrics)


def fuzz_trial(
    seed: int = 0,
    protocol: str = "election",
    n: int = 64,
    alpha: float = 0.5,
    inputs: str = "mixed",
    extra_rounds: int = 0,
    **kwargs: Any,
) -> Dict[str, Any]:
    """One adversary-fuzzing trial → a plain-dict verdict.

    A pure function of ``(scenario, seed)`` — the sampled crash schedule
    derives from the engine's seeded adversary stream — so the serve
    layer's content-addressed result cache can answer repeats.  A failing
    case ships its full replayable reproducer (``repro replay`` accepts
    the embedded ``case`` object verbatim); fault-fragile findings are
    flagged separately so campaign aggregation can journal instead of
    fail, mirroring ``repro fuzz``.
    """
    from ..chaos.fuzzer import FuzzScenario, fuzz_one

    scenario = FuzzScenario(
        protocol=protocol,
        n=n,
        alpha=alpha,
        inputs=inputs,
        extra_rounds=extra_rounds,
        **kwargs,
    )
    case = fuzz_one(scenario, seed)
    summary: Dict[str, Any] = {
        "protocol": protocol,
        "n": n,
        "alpha": alpha,
        "seed": seed,
        "failed": case is not None,
    }
    if case is not None:
        summary["violations"] = list(case.violations)
        summary["classes"] = list(case.signature)
        summary["finding"] = case.is_finding
        summary["case"] = case.to_dict()
    return summary


def _make_timers(profile: bool):
    if not profile:
        return None
    from ..obs.timing import PhaseTimers

    return PhaseTimers()


def _with_phases(summary: Dict[str, Any], metrics: Any) -> Dict[str, Any]:
    if metrics.phase_seconds:
        summary["phase_seconds"] = dict(metrics.phase_seconds)
    return summary
