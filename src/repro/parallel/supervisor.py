"""Supervision for the process-pool scheduler: survive the pool itself.

The resilience layer (:mod:`repro.exec`) guards against trials that
*raise*; this module guards against the machinery *around* them — the
failure modes that historically killed whole campaigns:

* a worker dies (``kill -9``, OOM): ``ProcessPoolExecutor`` breaks every
  outstanding future with ``BrokenProcessPool``.  The supervisor rebuilds
  the pool and re-dispatches only the chunks that were in flight;
* a worker hangs (the in-worker SIGALRM net only fires inside a live,
  signal-receiving trial): each chunk carries a wall-clock deadline; a
  chunk past it has its workers killed, the pool rebuilt, and the chunk
  re-dispatched;
* a chunk whose trial *repeatedly* kills its worker would otherwise be
  re-dispatched forever: after ``max_dispatches`` the chunk is split into
  single-trial chunks to isolate the killer, and a single trial that
  still keeps killing workers is abandoned through ``on_abandon`` —
  recorded as ``failed`` (feeding the quarantine), never silently lost;
* the parent receives SIGINT/SIGTERM: :class:`GracefulShutdown` turns the
  signal into a flag, the supervisor stops dispatching at the next trial
  boundary, cancels queued work, reaps the workers, and raises
  :class:`~repro.errors.CampaignInterrupted` — the journal the caller
  maintained per-result is already flushed, so ``--resume`` continues
  from the exact boundary.

Exactly-once delivery is the caller's half of the contract: results are
handed to ``on_result(index, value)`` and a re-dispatched chunk may
complete twice (a "hung" worker may really just have been slow), so the
callback must ignore indices it has already recorded — the pool module's
callbacks do, keyed on the reassembly slot.

Everything observable is counted in :class:`SupervisorStats` and can be
embedded in the checkpoint journal as a ``{"kind": "supervisor"}`` record
(rendered by ``repro report``).
"""

from __future__ import annotations

import os
import signal
import threading
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Any, Callable, Deque, Dict, List, Optional, Sequence, Tuple

from ..errors import CampaignInterrupted
from ..obs.progress import NULL_PROGRESS, ProgressReporter
from .spec import TrialSpec

#: ``kind`` tag of the supervisor-stats record embedded in journals.
SUPERVISOR_RECORD_KIND = "supervisor"

#: Wall-clock slack added to computed chunk deadlines: dispatch, pickle,
#: and scheduling time that is not the trials' own budget.
DEADLINE_SLACK_SECONDS = 5.0


@dataclass
class SupervisorStats:
    """Counters for everything the supervisor had to do."""

    pool_rebuilds: int = 0
    worker_deaths: int = 0
    hung_chunks: int = 0
    redispatched_chunks: int = 0
    redispatched_trials: int = 0
    abandoned_trials: int = 0
    #: Total chunk submissions to the pool (first dispatches *and*
    #: redispatches).  Not an incident — it is the supervisor's work
    #: ledger, which is how the campaign service proves a fully cached
    #: resubmission touched the pool zero times.
    dispatched_chunks: int = 0
    interrupted: bool = False

    @property
    def eventful(self) -> bool:
        """True when the supervisor did anything worth reporting."""
        return bool(
            self.pool_rebuilds
            or self.worker_deaths
            or self.hung_chunks
            or self.redispatched_chunks
            or self.redispatched_trials
            or self.abandoned_trials
            or self.interrupted
        )

    def as_dict(self) -> Dict[str, Any]:
        return {
            "pool_rebuilds": self.pool_rebuilds,
            "worker_deaths": self.worker_deaths,
            "hung_chunks": self.hung_chunks,
            "redispatched_chunks": self.redispatched_chunks,
            "redispatched_trials": self.redispatched_trials,
            "abandoned_trials": self.abandoned_trials,
            "dispatched_chunks": self.dispatched_chunks,
            "interrupted": self.interrupted,
        }

    def merge(self, other: "SupervisorStats") -> None:
        """Fold another run's counters into this one (resumed campaigns)."""
        self.pool_rebuilds += other.pool_rebuilds
        self.worker_deaths += other.worker_deaths
        self.hung_chunks += other.hung_chunks
        self.redispatched_chunks += other.redispatched_chunks
        self.redispatched_trials += other.redispatched_trials
        self.abandoned_trials += other.abandoned_trials
        self.dispatched_chunks += other.dispatched_chunks
        self.interrupted = self.interrupted or other.interrupted

    def journal_record(self) -> Dict[str, Any]:
        """The ``{"kind": "supervisor"}`` journal embedding."""
        record = {"kind": SUPERVISOR_RECORD_KIND}
        record.update(self.as_dict())
        return record


def is_supervisor_record(record: Any) -> bool:
    """Is this journal record an embedded supervisor-stats record?"""
    try:
        return record.get("kind") == SUPERVISOR_RECORD_KIND
    except AttributeError:
        return False


class GracefulShutdown:
    """Turns SIGINT/SIGTERM into a checked flag for trial-boundary exits.

    Installed as a context manager around a campaign (signal handlers
    only attach on the main thread; elsewhere the context is inert and
    the process keeps its default behaviour).  ``request()`` triggers the
    same path programmatically, which is what tests use.
    """

    def __init__(
        self, signals: Sequence[int] = (signal.SIGINT, signal.SIGTERM)
    ) -> None:
        self.signals = tuple(signals)
        self.requested = False
        self.signum: Optional[int] = None
        self._previous: Dict[int, Any] = {}

    def request(self, signum: Optional[int] = None) -> None:
        """Ask for a graceful stop at the next trial boundary."""
        self.requested = True
        if signum is not None and self.signum is None:
            self.signum = signum

    def _handler(self, signum: int, frame: Any) -> None:
        self.request(signum)

    def __enter__(self) -> "GracefulShutdown":
        if threading.current_thread() is threading.main_thread():
            for signum in self.signals:
                self._previous[signum] = signal.signal(signum, self._handler)
        return self

    def __exit__(self, *exc_info: Any) -> None:
        for signum, previous in self._previous.items():
            signal.signal(signum, previous)
        self._previous.clear()

    def describe(self) -> str:
        if self.signum is not None:
            try:
                return signal.Signals(self.signum).name
            except ValueError:  # pragma: no cover - exotic signal numbers
                return f"signal {self.signum}"
        return "shutdown request"


class _Chunk:
    """One dispatchable unit plus its supervision bookkeeping."""

    __slots__ = ("specs", "dispatches", "started")

    def __init__(self, specs: List[TrialSpec], dispatches: int = 0) -> None:
        self.specs = specs
        self.dispatches = dispatches
        self.started = 0.0


class PoolSupervisor:
    """Run chunks through a process pool that is allowed to die.

    ``worker_fn(specs, *worker_args)`` must return an iterable of
    ``(index, value)`` pairs; results are streamed to ``on_result`` as
    chunks complete.  The supervisor owns the pool lifecycle: it detects
    worker death (``BrokenProcessPool``, dead pids) and missed chunk
    deadlines, kills and rebuilds the pool, and re-dispatches exactly the
    chunks that were in flight.  See the module docstring for the
    abandonment policy and the exactly-once contract.
    """

    def __init__(
        self,
        jobs: int,
        worker_fn: Callable[..., Any],
        worker_args: Tuple[Any, ...] = (),
        *,
        deadline_seconds: Optional[float] = None,
        poll_seconds: float = 0.25,
        max_dispatches: int = 3,
        stats: Optional[SupervisorStats] = None,
        shutdown: Optional[GracefulShutdown] = None,
        reporter: Optional[ProgressReporter] = None,
    ) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        if max_dispatches < 1:
            raise ValueError(f"max_dispatches must be >= 1, got {max_dispatches}")
        self.jobs = jobs
        self.worker_fn = worker_fn
        self.worker_args = tuple(worker_args)
        self.deadline_seconds = deadline_seconds
        self.poll_seconds = poll_seconds
        self.max_dispatches = max_dispatches
        self.stats = stats if stats is not None else SupervisorStats()
        self.shutdown = shutdown
        self.reporter = reporter if reporter is not None else NULL_PROGRESS
        self._seen_pids: Dict[int, Any] = {}
        self._dead_pids: set = set()

    # -- public ----------------------------------------------------------

    def run(
        self,
        chunks: Sequence[List[TrialSpec]],
        on_result: Callable[[int, Any], None],
        on_abandon: Callable[[TrialSpec, str], None],
    ) -> SupervisorStats:
        """Supervised execution of ``chunks``; returns the stats."""
        queue: Deque[_Chunk] = deque(_Chunk(list(specs)) for specs in chunks)
        pool = self._new_pool()
        inflight: Dict[Future, _Chunk] = {}
        try:
            while queue or inflight:
                self._check_shutdown(pool, inflight, queue)
                pool = self._fill(pool, inflight, queue, on_abandon)
                if not inflight:
                    continue
                done, _ = wait(
                    set(inflight),
                    timeout=self.poll_seconds,
                    return_when=FIRST_COMPLETED,
                )
                rebuild = False
                for future in done:
                    chunk = inflight.pop(future)
                    try:
                        results = future.result()
                    except BrokenProcessPool:
                        self._requeue(chunk, queue, on_abandon, "worker died")
                        rebuild = True
                    except Exception as exc:
                        # Not a trial exception (resilient workers never
                        # raise): the chunk could not be delivered — an
                        # unpicklable result, a worker lost mid-handoff.
                        self._requeue(
                            chunk,
                            queue,
                            on_abandon,
                            f"chunk delivery failed: {type(exc).__name__}: {exc}",
                        )
                        rebuild = True
                    else:
                        for index, value in results:
                            on_result(index, value)
                        self.reporter.advance(
                            busy=min(self.jobs, len(inflight) + len(queue))
                        )
                rebuild = self._reap_hung(inflight, queue, on_abandon) or rebuild
                self._count_worker_deaths(pool)
                if rebuild:
                    pool = self._rebuild(pool, inflight, queue, on_abandon)
        finally:
            self._terminate(pool)
        return self.stats

    # -- internals -------------------------------------------------------

    def _new_pool(self) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(max_workers=self.jobs)

    def _check_shutdown(
        self,
        pool: ProcessPoolExecutor,
        inflight: Dict[Future, _Chunk],
        queue: Deque[_Chunk],
    ) -> None:
        if self.shutdown is None or not self.shutdown.requested:
            return
        self.stats.interrupted = True
        pending = sum(len(c.specs) for c in queue) + sum(
            len(c.specs) for c in inflight.values()
        )
        self._terminate(pool)
        raise CampaignInterrupted(
            f"campaign interrupted by {self.shutdown.describe()}; "
            f"{pending} trial(s) not completed — journal is flushed, "
            "rerun with --resume to continue from this boundary",
            signum=self.shutdown.signum,
        )

    def _fill(
        self,
        pool: ProcessPoolExecutor,
        inflight: Dict[Future, _Chunk],
        queue: Deque[_Chunk],
        on_abandon: Callable[[TrialSpec, str], None],
    ) -> ProcessPoolExecutor:
        # One chunk per worker: a queued-but-unstarted chunk must not age
        # against its deadline, so dispatch only what can run now.
        while queue and len(inflight) < self.jobs:
            chunk = queue.popleft()
            try:
                future = pool.submit(self.worker_fn, chunk.specs, *self.worker_args)
            except (BrokenProcessPool, RuntimeError):
                # The pool broke between completions (worker killed while
                # idle): put the chunk back and rebuild immediately.
                queue.appendleft(chunk)
                pool = self._rebuild(pool, inflight, queue, on_abandon)
                continue
            chunk.dispatches += 1
            chunk.started = time.monotonic()
            self.stats.dispatched_chunks += 1
            inflight[future] = chunk
        return pool

    def _chunk_deadline(self, chunk: _Chunk) -> Optional[float]:
        if self.deadline_seconds is None:
            return None
        return self.deadline_seconds * max(1, len(chunk.specs)) + DEADLINE_SLACK_SECONDS

    def _reap_hung(
        self,
        inflight: Dict[Future, _Chunk],
        queue: Deque[_Chunk],
        on_abandon: Callable[[TrialSpec, str], None],
    ) -> bool:
        if self.deadline_seconds is None:
            return False
        now = time.monotonic()
        hung = [
            future
            for future, chunk in inflight.items()
            if now - chunk.started > self._chunk_deadline(chunk)  # type: ignore[operator]
        ]
        for future in hung:
            chunk = inflight.pop(future)
            self.stats.hung_chunks += 1
            self._requeue(
                chunk,
                queue,
                on_abandon,
                f"missed its {self._chunk_deadline(chunk):.1f}s deadline",
            )
        return bool(hung)

    def _requeue(
        self,
        chunk: _Chunk,
        queue: Deque[_Chunk],
        on_abandon: Callable[[TrialSpec, str], None],
        reason: str,
    ) -> None:
        """Give a failed chunk another shot, split it, or abandon it."""
        if chunk.dispatches < self.max_dispatches:
            self.stats.redispatched_chunks += 1
            self.stats.redispatched_trials += len(chunk.specs)
            queue.append(chunk)
            return
        if len(chunk.specs) > 1:
            # The chunk burnt its budget but we do not know *which* trial
            # is the killer: isolate them, one trial per chunk, each with
            # a fresh (single-trial) dispatch budget.
            self.stats.redispatched_chunks += 1
            self.stats.redispatched_trials += len(chunk.specs)
            for spec in chunk.specs:
                queue.append(_Chunk([spec]))
            return
        spec = chunk.specs[0]
        self.stats.abandoned_trials += 1
        on_abandon(
            spec,
            f"trial kept breaking its worker ({reason}) after "
            f"{chunk.dispatches} dispatch(es)",
        )

    def _count_worker_deaths(self, pool: ProcessPoolExecutor) -> None:
        processes = getattr(pool, "_processes", None) or {}
        for pid, process in list(processes.items()):
            self._seen_pids[pid] = process
        for pid, process in list(self._seen_pids.items()):
            if pid in self._dead_pids:
                continue
            if not process.is_alive():
                exitcode = process.exitcode
                # Only count violent deaths: a worker reaped during a
                # clean pool shutdown exits 0.
                if exitcode is not None and exitcode != 0:
                    self._dead_pids.add(pid)
                    self.stats.worker_deaths += 1

    def _rebuild(
        self,
        pool: ProcessPoolExecutor,
        inflight: Dict[Future, _Chunk],
        queue: Deque[_Chunk],
        on_abandon: Callable[[TrialSpec, str], None],
    ) -> ProcessPoolExecutor:
        """Kill the pool and start fresh, re-queueing all in-flight work.

        In-flight chunks may have partially (or even fully) executed; the
        caller's exactly-once guard on ``on_result`` makes the re-run
        harmless, and re-dispatching is the only way to guarantee the
        chunk's results exist at all.
        """
        self._count_worker_deaths(pool)
        for future in list(inflight):
            chunk = inflight.pop(future)
            self._requeue(chunk, queue, on_abandon, "pool rebuilt underneath it")
        self._terminate(pool)
        self.stats.pool_rebuilds += 1
        self.reporter.advance(restarts=1)
        return self._new_pool()

    def _terminate(self, pool: ProcessPoolExecutor) -> None:
        """Shut a pool down without waiting on wedged or dead workers."""
        processes = list((getattr(pool, "_processes", None) or {}).values())
        try:
            pool.shutdown(wait=False, cancel_futures=True)
        except Exception:
            # Shutdown of an already-broken pool must never mask the
            # supervision path that called it; the kill below still reaps.
            pass
        for process in processes:
            if process.is_alive():
                process.kill()
        for process in processes:
            process.join(timeout=1.0)


def chunk_deadline_seconds(
    timeout_seconds: Optional[float],
    max_attempts: int,
    backoff_seconds: float = 0.0,
) -> Optional[float]:
    """Per-trial supervision deadline implied by the executor's budget.

    ``None`` (no per-trial timeout) disables deadline supervision —
    worker death is still caught via ``BrokenProcessPool``, but a silent
    hang cannot be told apart from a legitimately long trial.
    """
    if not timeout_seconds:
        return None
    return timeout_seconds * max(1, max_attempts) + backoff_seconds
