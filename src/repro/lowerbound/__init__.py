"""Empirical machinery for the message-complexity lower bounds.

Theorems 4.2 and 5.2 state that any algorithm succeeding with probability
``2/e + eps`` must send ``Omega(n^1/2 / alpha^{3/2})`` messages.  A lower
bound cannot be "run", but it makes two falsifiable predictions that this
package measures:

* **Spend check** — every successful run of any correct algorithm must
  spend at least the bound (up to the hidden constant).
  :mod:`~repro.lowerbound.bounds` provides the formulas.
* **Budget collapse** — capping an algorithm's global message budget below
  the bound must drive its success probability down (the proofs show the
  communication graph then splits into non-interacting influence clouds
  that decide independently).  :mod:`~repro.lowerbound.budget` runs
  budget-capped variants of the Section IV/V protocols.

The proofs' combinatorial objects — the communication graph, initiators,
and influence clouds — are rebuilt from execution traces by
:mod:`~repro.lowerbound.comm_graph` and :mod:`~repro.lowerbound.clouds`,
so their structural lemmas (e.g. Lemma 4's ``>= 1/(2 alpha)`` initiators,
Lemma 8's forest shape at low budgets) can be checked on real runs.
"""

from .bounds import (
    agreement_upper_bound,
    le_upper_bound,
    lower_bound_messages,
    min_initiators,
)
from .budget import budget_curve, run_budgeted_agreement, run_budgeted_election
from .clouds import CloudDecomposition, influence_clouds
from .comm_graph import CommunicationGraph, communication_graph

__all__ = [
    "CloudDecomposition",
    "CommunicationGraph",
    "agreement_upper_bound",
    "budget_curve",
    "communication_graph",
    "influence_clouds",
    "le_upper_bound",
    "lower_bound_messages",
    "min_initiators",
    "run_budgeted_agreement",
    "run_budgeted_election",
]
