"""The communication graph of an execution (Sections IV-B / V-B).

The lower-bound proofs study the directed graph ``C^r`` with an edge
``u -> v`` whenever ``u`` sent a message to ``v`` in some round ``<= r``
(Section IV-B), and — for the agreement bound — the *first-contact* graph
``G_p`` in which the edge appears only if ``u``'s message preceded any
message from ``v`` to ``u`` (Section V-B).  This module rebuilds both
from an execution trace.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from ..sim.trace import Trace
from ..types import NodeId, Round


@dataclass
class CommunicationGraph:
    """Directed multigraph of deliveries, with send rounds."""

    n: int
    #: Ordered delivered edges: (src, dst, round).
    edges: List[Tuple[NodeId, NodeId, Round]] = field(default_factory=list)

    @property
    def nodes_communicating(self) -> Set[NodeId]:
        """Nodes with at least one delivered message (either direction)."""
        out: Set[NodeId] = set()
        for src, dst, _ in self.edges:
            out.add(src)
            out.add(dst)
        return out

    def successors(self) -> Dict[NodeId, Set[NodeId]]:
        """Adjacency of the (collapsed) directed graph."""
        adj: Dict[NodeId, Set[NodeId]] = {}
        for src, dst, _ in self.edges:
            adj.setdefault(src, set()).add(dst)
        return adj

    def undirected_components(self) -> List[Set[NodeId]]:
        """Connected components over communicating nodes (undirected)."""
        neighbours: Dict[NodeId, Set[NodeId]] = {}
        for src, dst, _ in self.edges:
            neighbours.setdefault(src, set()).add(dst)
            neighbours.setdefault(dst, set()).add(src)
        seen: Set[NodeId] = set()
        components: List[Set[NodeId]] = []
        for start in neighbours:
            if start in seen:
                continue
            stack = [start]
            component: Set[NodeId] = set()
            while stack:
                node = stack.pop()
                if node in component:
                    continue
                component.add(node)
                stack.extend(neighbours[node] - component)
            seen |= component
            components.append(component)
        return components

    def first_contact_graph(self) -> "CommunicationGraph":
        """The ``G_p`` of Section V-B: keep ``u -> v`` only if ``u``'s first
        message to ``v`` precedes any message from ``v`` to ``u``."""
        first: Dict[Tuple[NodeId, NodeId], Round] = {}
        for src, dst, round_ in self.edges:
            key = (src, dst)
            if key not in first or round_ < first[key]:
                first[key] = round_
        kept: List[Tuple[NodeId, NodeId, Round]] = []
        for (src, dst), round_ in first.items():
            reverse = first.get((dst, src))
            if reverse is None or round_ < reverse:
                kept.append((src, dst, round_))
        return CommunicationGraph(n=self.n, edges=sorted(kept, key=lambda e: e[2]))

    def is_forest_of_out_trees(self) -> bool:
        """Lemma 8's shape: every component has exactly one root (zero
        in-degree) and every non-root has in-degree exactly one."""
        indegree: Dict[NodeId, int] = {}
        for src, dst, _ in self.edges:
            indegree.setdefault(src, indegree.get(src, 0))
            indegree[dst] = indegree.get(dst, 0) + 1
        for component in self.undirected_components():
            roots = [u for u in component if indegree.get(u, 0) == 0]
            if len(roots) != 1:
                return False
            if any(
                indegree.get(u, 0) > 1 for u in component if u not in roots
            ):
                return False
        return True


def communication_graph(trace: Trace, n: int) -> CommunicationGraph:
    """Build the delivered-message communication graph from a trace."""
    edges = list(trace.delivered_edges())
    return CommunicationGraph(n=n, edges=edges)
