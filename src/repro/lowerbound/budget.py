"""Budget-capped protocol runs (the falsifiable side of Theorems 4.2/5.2).

``run_budgeted_election`` / ``run_budgeted_agreement`` execute the
Section IV/V protocols under a hard global cap on sent messages: once the
cap is spent, no further message leaves any node (the engine suppresses
them).  This models *an algorithm that sends at most B messages* — and the
lower bound predicts that for ``B`` well below ``n^1/2/alpha^{3/2}`` no
such algorithm can succeed with probability better than a constant.

``budget_curve`` sweeps the cap over multiples of the bound and returns
the measured success rate at each point; experiment E10 checks the
collapse.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Union

from ..analysis.stats import BernoulliSummary, summarize_trials
from ..core.results import AgreementResult, LeaderElectionResult
from ..core.runner import AdversarySpec, agree, elect_leader
from ..rng import seed_sequence
from .bounds import lower_bound_messages


def run_budgeted_election(
    n: int,
    alpha: float,
    budget: int,
    seed: int = 0,
    adversary: AdversarySpec = "random",
) -> LeaderElectionResult:
    """One leader-election run under a hard global message cap."""
    return elect_leader(
        n=n, alpha=alpha, seed=seed, adversary=adversary, message_budget=budget
    )


def run_budgeted_agreement(
    n: int,
    alpha: float,
    budget: int,
    seed: int = 0,
    adversary: AdversarySpec = "random",
    inputs: Union[str, Sequence[int]] = "mixed",
) -> AgreementResult:
    """One agreement run under a hard global message cap."""
    return agree(
        n=n,
        alpha=alpha,
        inputs=inputs,
        seed=seed,
        adversary=adversary,
        message_budget=budget,
    )


def budget_curve(
    problem: str,
    n: int,
    alpha: float,
    multipliers: Sequence[float],
    trials: int = 20,
    master_seed: int = 0,
    adversary: AdversarySpec = "random",
    inputs: Union[str, Sequence[int]] = "mixed",
    unit: Optional[float] = None,
) -> Dict[float, BernoulliSummary]:
    """Success rate vs message budget, budgets = multiplier * ``unit``.

    ``unit`` defaults to the theoretical lower bound
    ``n^1/2/alpha^{3/2}``; pass the measured uncapped cost instead to
    sweep around the protocol's actual spend (its constants exceed the
    bound's hidden constant by a large factor).

    ``problem`` is ``"election"`` or ``"agreement"``.  For agreement the
    success notion counted here is the *informed* one: the run must reach
    implicit agreement **and** the decision must be the value the
    uncapped protocol converges to (the zero-biased minimum over
    candidate inputs); otherwise budget-zero runs would trivially
    "succeed" by every candidate deciding its own input when all inputs
    agree by luck.
    """
    if problem not in ("election", "agreement"):
        raise ValueError(f"problem must be election|agreement, got {problem!r}")
    scale = unit if unit is not None else lower_bound_messages(n, alpha)
    curve: Dict[float, BernoulliSummary] = {}
    for multiplier in multipliers:
        budget = max(0, int(multiplier * scale))
        outcomes: List[bool] = []
        for trial_seed in seed_sequence(master_seed, trials):
            if problem == "election":
                result = run_budgeted_election(
                    n, alpha, budget, seed=trial_seed, adversary=adversary
                )
                outcomes.append(result.success)
            else:
                result = run_budgeted_agreement(
                    n,
                    alpha,
                    budget,
                    seed=trial_seed,
                    adversary=adversary,
                    inputs=inputs,
                )
                outcomes.append(_informed_agreement_success(result))
        curve[multiplier] = summarize_trials(outcomes)
    return curve


def _informed_agreement_success(result: AgreementResult) -> bool:
    """Implicit agreement + the decision matches the committee's true
    zero-biased target (0 iff any candidate held a 0)."""
    if not result.success:
        return False
    candidate_inputs = {result.inputs[u] for u in result.candidates_all}
    target = 0 if 0 in candidate_inputs else 1
    return result.decision == target
