"""Closed forms of the paper's bounds (without hidden constants).

All experiment checks compare *measured* quantities against these shapes;
constants are fitted, never assumed.
"""

from __future__ import annotations

import math


def lower_bound_messages(n: int, alpha: float) -> float:
    """Theorems 4.2 / 5.2: ``n^1/2 / alpha^{3/2}``."""
    _validate(n, alpha)
    return math.sqrt(n) / alpha**1.5


def le_upper_bound(n: int, alpha: float) -> float:
    """Theorem 4.1: ``n^1/2 log^{5/2} n / alpha^{5/2}``."""
    _validate(n, alpha)
    return math.sqrt(n) * math.log(n) ** 2.5 / alpha**2.5


def agreement_upper_bound(n: int, alpha: float) -> float:
    """Theorem 5.1: ``n^1/2 log^{3/2} n / alpha^{3/2}``."""
    _validate(n, alpha)
    return math.sqrt(n) * math.log(n) ** 1.5 / alpha**1.5


def min_initiators(alpha: float) -> float:
    """Lemma 4: any constant-probability election needs ``>= 1/(2 alpha)``
    initiator nodes."""
    if not 0 < alpha <= 1:
        raise ValueError(f"alpha must be in (0, 1], got {alpha}")
    return 1.0 / (2.0 * alpha)


def success_probability_threshold() -> float:
    """The ``2/e`` success threshold of Theorem 4.2."""
    return 2.0 / math.e


def _validate(n: int, alpha: float) -> None:
    if n < 2:
        raise ValueError(f"n must be >= 2, got {n}")
    if not 0 < alpha <= 1:
        raise ValueError(f"alpha must be in (0, 1], got {alpha}")
