"""Initiators and influence clouds (Section IV-B).

Definitions from the proof of Theorem 4.2:

* a node is an **initiator** if it sends its first message before being
  influenced — i.e. before receiving any message;
* the **influence cloud** of an initiator ``u`` at round ``r`` is the set
  of nodes reachable from ``u`` along directed delivered edges of ``C^r``.

Lemma 4 argues any constant-probability election needs at least
``1/(2 alpha)`` initiators; Lemma 5 argues that a low-message algorithm
leaves the smallest cloud disjoint from the others with good probability.
Both are measurable on traces, which is what this module does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from ..sim.trace import Trace
from ..types import NodeId, Round
from .comm_graph import CommunicationGraph


@dataclass
class CloudDecomposition:
    """Initiators and their influence clouds for one execution."""

    initiators: List[NodeId]
    clouds: Dict[NodeId, Set[NodeId]]

    @property
    def smallest_cloud(self) -> Optional[Set[NodeId]]:
        """The smallest influence cloud (ties broken by initiator id)."""
        if not self.clouds:
            return None
        initiator = min(self.clouds, key=lambda u: (len(self.clouds[u]), u))
        return self.clouds[initiator]

    @property
    def smallest_disjoint(self) -> Optional[bool]:
        """Event N of Lemma 5: the smallest cloud intersects no other."""
        smallest = self.smallest_cloud
        if smallest is None:
            return None
        initiator = min(self.clouds, key=lambda u: (len(self.clouds[u]), u))
        others: Set[NodeId] = set()
        for u, cloud in self.clouds.items():
            if u != initiator:
                others |= cloud
        return not (smallest & others)

    def cloud_sizes(self) -> List[int]:
        """Sizes of all clouds, ascending."""
        return sorted(len(cloud) for cloud in self.clouds.values())


def find_initiators(trace: Trace) -> List[NodeId]:
    """Nodes whose first send precedes their first receipt."""
    first_send: Dict[NodeId, Round] = {}
    first_receive: Dict[NodeId, Round] = {}
    for event in trace.sends():
        if event.src not in first_send:
            first_send[event.src] = event.round
    for event in trace.deliveries():
        assert event.dst is not None
        # A message delivered in round r is seen at the start of round r+1.
        if event.dst not in first_receive:
            first_receive[event.dst] = event.round + 1
    initiators = [
        u
        for u, sent in first_send.items()
        if sent < first_receive.get(u, sent + 1)
    ]
    return sorted(initiators)


def influence_clouds(trace: Trace, n: int) -> CloudDecomposition:
    """Compute the influence-cloud decomposition of an execution."""
    graph = CommunicationGraph(n=n, edges=list(trace.delivered_edges()))
    adjacency = graph.successors()
    initiators = find_initiators(trace)
    clouds: Dict[NodeId, Set[NodeId]] = {}
    for initiator in initiators:
        reached: Set[NodeId] = set()
        stack = [initiator]
        while stack:
            node = stack.pop()
            if node in reached:
                continue
            reached.add(node)
            stack.extend(adjacency.get(node, set()) - reached)
        clouds[initiator] = reached
    return CloudDecomposition(initiators=initiators, clouds=clouds)
