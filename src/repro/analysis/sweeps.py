"""Monte-Carlo and parameter-sweep drivers.

``monte_carlo`` repeats one configuration over derived trial seeds;
``sweep`` crosses a parameter grid, running a Monte-Carlo at each point.
Both return plain lists of results so callers can aggregate freely.

``resilient_sweep`` is the fault-tolerant sibling: each trial runs under
a :class:`~repro.exec.ResilientExecutor` (timeout, retry, quarantine,
journal), failed trials degrade to annotated partial results instead of
aborting the grid, and a journalled sweep can be killed and resumed.

All three drivers accept ``jobs=``: ``jobs=1`` (the default) is the
serial code path, ``jobs=N`` fans trials out over a process pool
(:mod:`repro.parallel`), and ``jobs=0`` auto-detects the core count.
Seed derivation is identical in every mode, and parallel results are
reassembled in serial order, so ``jobs`` never changes the output —
only the wall clock.

They also thread the observability layer (:mod:`repro.obs`):
``progress=True`` turns on a stderr heartbeat, ``timers=`` profiles the
pool's dispatch/reassembly, and ``resilient_sweep(manifest=...)`` embeds
a provenance manifest in the checkpoint journal.  None of these affect
results.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..obs.progress import ProgressReporter, ProgressSpec, ensure_progress
from ..obs.provenance import Manifest
from ..obs.timing import PhaseTimers
from ..rng import seed_sequence

#: A task maps (seed, **point) to an arbitrary result object.
Task = Callable[..., Any]


def monte_carlo(
    task: Task,
    trials: int,
    master_seed: int = 0,
    jobs: int = 1,
    progress: ProgressSpec = False,
    timers: Optional[PhaseTimers] = None,
    backend: Optional[str] = None,
    **point: Any,
) -> List[Any]:
    """Run ``task(seed=..., **point)`` for ``trials`` derived seeds.

    ``jobs`` > 1 dispatches the trials to a process pool; the returned
    list is identical to the serial one (same derived seeds, same order).
    ``progress=True`` emits a stderr heartbeat; ``timers`` profiles the
    pool's dispatch/reassembly phases (parallel mode only).  ``backend``
    (e.g. ``"vec"``) is forwarded to every trial; backends never change
    results, so it rides outside the grid point.
    """
    from ..parallel import TrialSpec, resolve_jobs, run_trials

    if trials < 1:
        raise ValueError(f"trials must be >= 1, got {trials}")
    seeds = seed_sequence(master_seed, trials)
    if resolve_jobs(jobs) == 1:
        owns_reporter = not isinstance(progress, ProgressReporter)
        reporter = ensure_progress(progress, total=trials, label="monte-carlo")
        kwargs = dict(point) if backend is None else {**point, "backend": backend}
        results = []
        for seed in seeds:
            results.append(task(seed=seed, **kwargs))
            reporter.advance(completed=1, attempted=1)
        if owns_reporter:
            reporter.finish()
        return results
    specs = [
        TrialSpec(
            index=index, task=task, seed=seed, point=dict(point), backend=backend
        )
        for index, seed in enumerate(seeds)
    ]
    return run_trials(specs, jobs=jobs, timers=timers, progress=progress)


def sweep(
    task: Task,
    grid: Mapping[str, Sequence[Any]],
    trials: int = 1,
    master_seed: int = 0,
    jobs: int = 1,
    progress: ProgressSpec = False,
    timers: Optional[PhaseTimers] = None,
    backend: Optional[str] = None,
) -> List[Tuple[Dict[str, Any], List[Any]]]:
    """Cross the ``grid`` and Monte-Carlo each point.

    Returns ``[(point_dict, [result, ...]), ...]`` in grid order.  Each
    grid point gets its own deterministic seed stream, so adding points
    does not reshuffle the others.

    ``jobs`` > 1 flattens the whole grid × trials campaign into one
    trial list and dispatches it to a process pool, so workers stay busy
    across point boundaries; the rows come back in exact grid order.
    ``progress``/``timers`` as in :func:`monte_carlo`, covering the
    whole grid with one heartbeat.
    """
    from ..parallel import resolve_jobs, run_trials

    if not grid:
        raise ValueError("grid must contain at least one axis")
    if trials < 1:
        raise ValueError(f"trials must be >= 1, got {trials}")
    names = list(grid)
    combos = list(itertools.product(*(grid[k] for k in names)))
    if resolve_jobs(jobs) == 1:
        owns_reporter = not isinstance(progress, ProgressReporter)
        reporter = ensure_progress(
            progress, total=len(combos) * trials, label="sweep"
        )
        rows: List[Tuple[Dict[str, Any], List[Any]]] = []
        for combo_index, combo in enumerate(combos):
            point = dict(zip(names, combo))
            results = monte_carlo(
                task,
                trials,
                master_seed=master_seed + combo_index * 1_000_003,
                progress=reporter,
                backend=backend,
                **point,
            )
            rows.append((point, results))
        if owns_reporter:
            reporter.finish()
        return rows

    points = [dict(zip(names, combo)) for combo in combos]
    specs = enumerate_sweep_specs(
        task, grid, trials, master_seed=master_seed, backend=backend
    )
    flat = run_trials(specs, jobs=jobs, timers=timers, progress=progress)
    return [
        (point, flat[combo_index * trials : (combo_index + 1) * trials])
        for combo_index, point in enumerate(points)
    ]


@dataclass
class SweepPoint:
    """One grid point of a resilient sweep, with per-trial bookkeeping."""

    point: Dict[str, Any]
    results: List[Any] = field(default_factory=list)
    attempted: int = 0
    completed: int = 0
    failed: int = 0

    def as_row(self) -> Dict[str, Any]:
        """The point's parameters plus its attempt accounting."""
        row = dict(self.point)
        row.update(
            attempted=self.attempted, completed=self.completed, failed=self.failed
        )
        return row


@dataclass
class ResilientSweepResult:
    """A grid sweep that survives (and accounts for) failing trials."""

    points: List[SweepPoint] = field(default_factory=list)
    #: Outcomes of trials that did not produce a result.
    failures: List[Any] = field(default_factory=list)
    #: :class:`~repro.parallel.supervisor.SupervisorStats` of the parallel
    #: run (``None`` for serial sweeps or when nothing was supervised).
    supervisor: Optional[Any] = None

    @property
    def attempted(self) -> int:
        return sum(p.attempted for p in self.points)

    @property
    def completed(self) -> int:
        return sum(p.completed for p in self.points)

    @property
    def failed(self) -> int:
        return sum(p.failed for p in self.points)

    @property
    def complete(self) -> bool:
        """True when every attempted trial produced a result."""
        return self.failed == 0

    def rows(self) -> List[Tuple[Dict[str, Any], List[Any]]]:
        """The classic ``sweep`` shape (point dict, result list)."""
        return [(p.point, p.results) for p in self.points]

    def counts(self) -> Dict[str, int]:
        """Headline accounting for tables and logs.

        When the parallel supervisor had to intervene (pool rebuilds,
        worker deaths, redispatches), its counters ride along so campaign
        summaries show *how* the numbers were reached.
        """
        counts = {
            "attempted": self.attempted,
            "completed": self.completed,
            "failed": self.failed,
        }
        if self.supervisor is not None and self.supervisor.eventful:
            counts.update(
                {
                    key: value
                    for key, value in self.supervisor.as_dict().items()
                    if isinstance(value, int) and value
                }
            )
        return counts


def _trial_key(combo_index: int, point: Mapping[str, Any], trial: int) -> str:
    """Stable journal key: grid position + parameters + trial index."""
    described = ",".join(f"{k}={point[k]!r}" for k in sorted(point))
    return f"point[{combo_index}]({described})#trial{trial}"


def grid_points(grid: Mapping[str, Sequence[Any]]) -> List[Dict[str, Any]]:
    """Cross a parameter grid into its ordered list of point dicts.

    Axis order follows the mapping's insertion order, exactly as
    :func:`sweep` has always crossed it — this is the single definition
    every driver (and the campaign service) shares, so grid order can
    never drift between them.
    """
    if not grid:
        raise ValueError("grid must contain at least one axis")
    names = list(grid)
    return [
        dict(zip(names, combo))
        for combo in itertools.product(*(grid[k] for k in names))
    ]


def enumerate_sweep_specs(
    task: Any,
    grid: Mapping[str, Sequence[Any]],
    trials: int,
    master_seed: int = 0,
    backend: Optional[str] = None,
) -> List[Any]:
    """The full ``grid`` × ``trials`` campaign as ordered trial specs.

    This is the sweep's seed-derivation contract in one place: point
    ``i`` seeds its trial stream from ``master_seed + i * 1_000_003``,
    and every spec carries the :func:`_trial_key` journal key.  Serial,
    parallel, resilient, and served campaigns all enumerate through
    here, which is what makes a cache entry computed by one mode valid
    for every other.
    """
    from ..parallel import TrialSpec

    if trials < 1:
        raise ValueError(f"trials must be >= 1, got {trials}")
    specs: List[TrialSpec] = []
    for combo_index, point in enumerate(grid_points(grid)):
        point_seed = master_seed + combo_index * 1_000_003
        for trial, seed in enumerate(seed_sequence(point_seed, trials)):
            specs.append(
                TrialSpec(
                    index=len(specs),
                    task=task,
                    seed=seed,
                    point=point,
                    key=_trial_key(combo_index, point, trial),
                    backend=backend,
                )
            )
    return specs


def resilient_sweep(
    task: Task,
    grid: Mapping[str, Sequence[Any]],
    trials: int = 1,
    master_seed: int = 0,
    *,
    executor: Optional["ResilientExecutor"] = None,
    journal_path: Optional[str] = None,
    resume: bool = False,
    timeout_seconds: Optional[float] = None,
    retries: int = 0,
    jobs: int = 1,
    progress: ProgressSpec = False,
    manifest: Optional[Manifest] = None,
    shutdown: Optional[Any] = None,
    backend: Optional[str] = None,
) -> ResilientSweepResult:
    """Cross ``grid`` like :func:`sweep`, but never die on a bad trial.

    Each trial runs under a :class:`~repro.exec.ResilientExecutor`; a
    trial that fails (or times out) after its retries is recorded in the
    result's ``failures`` and the sweep continues, so callers get partial
    rows with exact ``attempted/completed/failed`` counts.  With
    ``journal_path`` set, every outcome is checkpointed; ``resume=True``
    reloads the journal and skips trials that already completed — their
    journalled (serialised) values are returned in place of live results.

    Seed derivation matches :func:`sweep` exactly, so a resumed or
    retried-free resilient sweep is trial-for-trial identical to the
    plain one.

    ``jobs`` > 1 runs the timeout/retry net inside pool workers while
    the parent keeps sole ownership of resume, quarantine, and the
    journal file; outcomes are accounted in serial order.

    ``progress=True`` emits a stderr heartbeat (with retry/quarantine
    counts).  ``manifest`` (a :class:`~repro.obs.Manifest`) is embedded
    in the journal as a ``{"kind": "manifest"}`` record, so the journal
    file alone is enough for ``repro report``; on resume the new
    invocation's manifest is appended too, documenting every run that
    touched the journal.

    ``shutdown`` (a :class:`~repro.parallel.GracefulShutdown`) lets
    SIGINT/SIGTERM stop the campaign at the next trial boundary:
    :class:`~repro.errors.CampaignInterrupted` propagates with the
    journal flushed, so the same invocation with ``resume=True``
    continues from exactly where it stopped.  The parallel path runs
    under a :class:`~repro.parallel.PoolSupervisor` (worker kills, hung
    pools, and missed deadlines rebuild the pool and redispatch in-flight
    chunks); its counters land on the result's ``supervisor`` field.
    """
    from ..exec import Journal, ResilientExecutor, RetryPolicy
    from ..parallel import run_trials_resilient

    if not grid:
        raise ValueError("grid must contain at least one axis")
    if trials < 1:
        raise ValueError(f"trials must be >= 1, got {trials}")
    if executor is None:
        executor = ResilientExecutor(
            timeout_seconds=timeout_seconds,
            retry=RetryPolicy(retries=retries),
        )
    if journal_path is not None and executor.journal is None:
        executor.journal = Journal(journal_path)
    if resume:
        executor.load_completed()
    elif executor.journal is not None:
        executor.journal.clear()
    if manifest is not None:
        executor.write_manifest(manifest)

    points = grid_points(grid)
    specs = enumerate_sweep_specs(
        task, grid, trials, master_seed=master_seed, backend=backend
    )
    trial_outcomes = run_trials_resilient(
        specs, jobs=jobs, executor=executor, progress=progress, shutdown=shutdown
    )

    outcome = ResilientSweepResult(supervisor=executor.last_supervisor_stats)
    for combo_index, point in enumerate(points):
        sweep_point = SweepPoint(point=point)
        for trial_outcome in trial_outcomes[
            combo_index * trials : (combo_index + 1) * trials
        ]:
            sweep_point.attempted += 1
            if trial_outcome.ok:
                sweep_point.completed += 1
                sweep_point.results.append(trial_outcome.value)
            else:
                sweep_point.failed += 1
                outcome.failures.append(trial_outcome)
        outcome.points.append(sweep_point)
    return outcome


def collect(
    rows: Iterable[Tuple[Dict[str, Any], List[Any]]],
    reducer: Callable[[List[Any]], Any],
) -> List[Dict[str, Any]]:
    """Reduce each sweep point's results into one flat record."""
    flattened = []
    for point, results in rows:
        record = dict(point)
        reduced = reducer(results)
        if isinstance(reduced, dict):
            record.update(reduced)
        else:
            record["value"] = reduced
        flattened.append(record)
    return flattened
