"""Monte-Carlo and parameter-sweep drivers.

``monte_carlo`` repeats one configuration over derived trial seeds;
``sweep`` crosses a parameter grid, running a Monte-Carlo at each point.
Both return plain lists of results so callers can aggregate freely.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Dict, Iterable, List, Mapping, Sequence, Tuple

from ..rng import seed_sequence

#: A task maps (seed, **point) to an arbitrary result object.
Task = Callable[..., Any]


def monte_carlo(
    task: Task,
    trials: int,
    master_seed: int = 0,
    **point: Any,
) -> List[Any]:
    """Run ``task(seed=..., **point)`` for ``trials`` derived seeds."""
    if trials < 1:
        raise ValueError(f"trials must be >= 1, got {trials}")
    return [task(seed=seed, **point) for seed in seed_sequence(master_seed, trials)]


def sweep(
    task: Task,
    grid: Mapping[str, Sequence[Any]],
    trials: int = 1,
    master_seed: int = 0,
) -> List[Tuple[Dict[str, Any], List[Any]]]:
    """Cross the ``grid`` and Monte-Carlo each point.

    Returns ``[(point_dict, [result, ...]), ...]`` in grid order.  Each
    grid point gets its own deterministic seed stream, so adding points
    does not reshuffle the others.
    """
    if not grid:
        raise ValueError("grid must contain at least one axis")
    names = list(grid)
    rows: List[Tuple[Dict[str, Any], List[Any]]] = []
    for combo_index, combo in enumerate(itertools.product(*(grid[k] for k in names))):
        point = dict(zip(names, combo))
        results = monte_carlo(
            task,
            trials,
            master_seed=master_seed + combo_index * 1_000_003,
            **point,
        )
        rows.append((point, results))
    return rows


def collect(
    rows: Iterable[Tuple[Dict[str, Any], List[Any]]],
    reducer: Callable[[List[Any]], Any],
) -> List[Dict[str, Any]]:
    """Reduce each sweep point's results into one flat record."""
    flattened = []
    for point, results in rows:
        record = dict(point)
        reduced = reducer(results)
        if isinstance(reduced, dict):
            record.update(reduced)
        else:
            record["value"] = reduced
        flattened.append(record)
    return flattened
