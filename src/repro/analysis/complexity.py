"""Scaling fits for measured complexity curves.

The experiment harness checks *shape*, not constants: a measured message
curve matches ``Theta(n^b polylog)`` when its fitted log-log slope is close
to ``b`` (the polylog factor perturbs the slope slightly upward, so checks
use a tolerance band), and matches a bound ``f(n)`` exactly when the
normalised curve ``measured / f`` is flat.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, Sequence, Tuple


@dataclass(frozen=True)
class PowerLawFit:
    """Least-squares fit of ``y = a * x^b`` in log-log space."""

    exponent: float
    prefactor: float
    residual: float

    def predict(self, x: float) -> float:
        """Fitted value at ``x``."""
        return self.prefactor * x**self.exponent


def fit_power_law(xs: Sequence[float], ys: Sequence[float]) -> PowerLawFit:
    """Fit ``y = a x^b`` by least squares on ``(log x, log y)``."""
    if len(xs) != len(ys):
        raise ValueError("xs and ys must have equal length")
    if len(xs) < 2:
        raise ValueError("need at least two points to fit a slope")
    if any(x <= 0 for x in xs) or any(y <= 0 for y in ys):
        raise ValueError("power-law fit needs positive data")
    lx = [math.log(x) for x in xs]
    ly = [math.log(y) for y in ys]
    n = len(lx)
    mean_x = sum(lx) / n
    mean_y = sum(ly) / n
    sxx = sum((x - mean_x) ** 2 for x in lx)
    if sxx == 0:
        raise ValueError("xs are all equal; slope undefined")
    sxy = sum((x - mean_x) * (y - mean_y) for x, y in zip(lx, ly))
    slope = sxy / sxx
    intercept = mean_y - slope * mean_x
    residual = sum(
        (y - (slope * x + intercept)) ** 2 for x, y in zip(lx, ly)
    ) / n
    return PowerLawFit(exponent=slope, prefactor=math.exp(intercept), residual=residual)


def normalized_curve(
    xs: Sequence[float],
    ys: Sequence[float],
    bound: Callable[[float], float],
) -> Dict[float, float]:
    """``y / bound(x)`` per point — flat iff ``y = Theta(bound)``."""
    return {x: y / bound(x) for x, y in zip(xs, ys)}


def polylog_flatness(
    xs: Sequence[float],
    ys: Sequence[float],
    bound: Callable[[float], float],
) -> float:
    """Max/min ratio of the normalised curve (1.0 = perfectly flat).

    A measured curve is accepted as ``Theta(bound)`` when this stays below
    a small constant across a decade of ``x``.
    """
    norm = list(normalized_curve(xs, ys, bound).values())
    if not norm:
        raise ValueError("need at least one point")
    low, high = min(norm), max(norm)
    if low <= 0:
        raise ValueError("normalised curve must be positive")
    return high / low


def doubling_ratios(xs: Sequence[float], ys: Sequence[float]) -> Tuple[float, ...]:
    """``y_{i+1}/y_i`` for consecutive points (xs assumed increasing).

    For ``y = Theta(sqrt(x) polylog)`` with doubling xs, ratios hover
    around ``sqrt(2)``; for linear growth around 2.
    """
    if sorted(xs) != list(xs):
        raise ValueError("xs must be increasing")
    return tuple(b / a for a, b in zip(ys, ys[1:]))
