"""Plain-text table rendering for experiment output.

The benchmark harness prints the same rows a paper table would contain;
this module does the alignment.  No external dependencies.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence


#: Every character str.splitlines() treats as a line boundary (more than
#: just "\n"): CR, LF, VT, FF, FS, GS, RS, NEL, LS, PS.
_LINE_BOUNDARIES = frozenset(
    chr(code) for code in (0x0A, 0x0B, 0x0C, 0x0D, 0x1C, 0x1D, 0x1E, 0x85, 0x2028, 0x2029)
)


def _fmt(value: Any) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.3f}"
    text = str(value)
    # A cell must never break row alignment: collapse line boundaries.
    if any(ch in _LINE_BOUNDARIES for ch in text):
        text = "".join(" " if ch in _LINE_BOUNDARIES else ch for ch in text)
    return text


def format_table(
    rows: Sequence[Dict[str, Any]],
    columns: Optional[Sequence[str]] = None,
    title: Optional[str] = None,
) -> str:
    """Render dict-rows as an aligned text table.

    ``columns`` fixes the column order (default: keys of the first row).
    """
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    cols = list(columns) if columns else list(rows[0])
    cells: List[List[str]] = [[_fmt(row.get(c, "")) for c in cols] for row in rows]
    widths = [
        max(len(c), *(len(line[i]) for line in cells)) for i, c in enumerate(cols)
    ]
    header = "  ".join(c.ljust(w) for c, w in zip(cols, widths))
    rule = "-" * len(header)
    body = "\n".join(
        "  ".join(cell.ljust(w) for cell, w in zip(line, widths)) for line in cells
    )
    parts = []
    if title:
        parts.extend([title, "=" * len(title)])
    parts.extend([header, rule, body])
    return "\n".join(parts)
