"""Measurement tooling: Monte-Carlo sweeps, success-rate statistics,
scaling fits, and plain-text tables for the experiment harness."""

from .complexity import (
    doubling_ratios,
    fit_power_law,
    normalized_curve,
    polylog_flatness,
)
from .stats import (
    BernoulliSummary,
    chernoff_upper_tail,
    mean,
    median,
    summarize_trials,
    wilson_interval,
)
from .sweeps import (
    ResilientSweepResult,
    SweepPoint,
    collect,
    enumerate_sweep_specs,
    grid_points,
    monte_carlo,
    resilient_sweep,
    sweep,
)
from .tables import format_table

__all__ = [
    "BernoulliSummary",
    "ResilientSweepResult",
    "SweepPoint",
    "chernoff_upper_tail",
    "collect",
    "doubling_ratios",
    "enumerate_sweep_specs",
    "fit_power_law",
    "format_table",
    "grid_points",
    "mean",
    "median",
    "monte_carlo",
    "normalized_curve",
    "polylog_flatness",
    "resilient_sweep",
    "summarize_trials",
    "sweep",
    "wilson_interval",
]
