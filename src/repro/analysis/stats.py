"""Success-rate statistics for Monte-Carlo experiments.

The paper's guarantees are "with high probability"; empirically we test
them as *failure rate below a threshold with interval slack*, never as
determinism.  :func:`wilson_interval` provides the confidence interval
used throughout the test-suite and the experiment harness.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence, Tuple


def wilson_interval(
    successes: int, trials: int, z: float = 2.0
) -> Tuple[float, float]:
    """Wilson score interval for a binomial proportion.

    ``z = 2.0`` gives roughly a 95% interval; the Wilson form behaves
    sensibly at 0 and ``trials`` successes, unlike the normal
    approximation.
    """
    if trials <= 0:
        raise ValueError(f"trials must be positive, got {trials}")
    if not 0 <= successes <= trials:
        raise ValueError(f"successes {successes} out of range [0, {trials}]")
    p_hat = successes / trials
    denom = 1.0 + z * z / trials
    centre = (p_hat + z * z / (2 * trials)) / denom
    half = (
        z
        * math.sqrt(p_hat * (1 - p_hat) / trials + z * z / (4 * trials * trials))
        / denom
    )
    # Clamp against floating-point drift so the interval always contains
    # the point estimate.
    low = max(0.0, min(p_hat, centre - half))
    high = min(1.0, max(p_hat, centre + half))
    return low, high


def chernoff_upper_tail(mean: float, factor: float) -> float:
    """Chernoff bound ``P[X >= (1+d) mu] <= exp(-d^2 mu / 3)`` with
    ``factor = 1 + d >= 1`` (the form used in Lemma 1)."""
    if mean < 0:
        raise ValueError(f"mean must be non-negative, got {mean}")
    if factor < 1.0:
        raise ValueError(f"factor must be >= 1, got {factor}")
    delta = factor - 1.0
    return math.exp(-delta * delta * mean / 3.0)


@dataclass(frozen=True)
class BernoulliSummary:
    """Summary of a repeated-trial experiment."""

    successes: int
    trials: int

    @property
    def rate(self) -> float:
        """Empirical success proportion."""
        return self.successes / self.trials

    @property
    def interval(self) -> Tuple[float, float]:
        """Wilson 95% interval of the success probability."""
        return wilson_interval(self.successes, self.trials)

    def at_least(self, threshold: float) -> bool:
        """True iff the success probability is plausibly >= ``threshold``
        (the interval's upper end reaches it)."""
        return self.interval[1] >= threshold

    def clearly_below(self, threshold: float) -> bool:
        """True iff the success probability is confidently < ``threshold``."""
        return self.interval[1] < threshold

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        lo, hi = self.interval
        return f"{self.successes}/{self.trials} ({self.rate:.2%}, 95% [{lo:.2f}, {hi:.2f}])"


def summarize_trials(outcomes: Sequence[bool]) -> BernoulliSummary:
    """Fold a sequence of pass/fail outcomes into a summary."""
    outcomes = list(outcomes)
    if not outcomes:
        raise ValueError("need at least one trial")
    return BernoulliSummary(successes=sum(outcomes), trials=len(outcomes))


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean (no numpy dependency in the core path)."""
    values = list(values)
    if not values:
        raise ValueError("need at least one value")
    return sum(values) / len(values)


def median(values: Sequence[float]) -> float:
    """Median."""
    ordered = sorted(values)
    if not ordered:
        raise ValueError("need at least one value")
    k = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[k]
    return (ordered[k - 1] + ordered[k]) / 2.0
