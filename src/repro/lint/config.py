"""Lint configuration: ``.reprolint.toml`` loading and scoping.

The linter is configured by one repo-root ``.reprolint.toml``.  The
``[lint]`` table names the project layout (source roots, files never
linted, and the *deterministic packages* — the scope of the DET rules);
``[lint.rules.<ID>]`` tables scope or disable individual rules and carry
rule-specific options (hot modules for PERF001, the metrics/validate
files for ACC001, ...); ``[lint.baseline]`` grandfathers known findings
by ``"RULE:path-prefix"`` entries so a rule can be introduced without a
flag-day fix of every legacy hit.

Python 3.11+ parses the file with :mod:`tomllib`; older interpreters
fall back to a deliberately small built-in parser covering the subset
this file uses (tables, strings, booleans, integers, and string arrays)
— the repo supports 3.9 and takes no third-party dependencies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional

from ..errors import ConfigurationError

#: Conventional config file name, looked up from the lint root upwards.
CONFIG_FILENAME = ".reprolint.toml"


class LintConfigError(ConfigurationError):
    """Raised for unreadable or malformed lint configuration."""


# ----------------------------------------------------------------------
# TOML loading (tomllib when available, minimal fallback otherwise)
# ----------------------------------------------------------------------


def _parse_toml_value(text: str, where: str) -> Any:
    text = text.strip()
    if text in ("true", "false"):
        return text == "true"
    if text.startswith('"') and text.endswith('"') and len(text) >= 2:
        return text[1:-1]
    if text.startswith("[") and text.endswith("]"):
        inner = text[1:-1].strip()
        if not inner:
            return []
        return [
            _parse_toml_value(part.strip(), where)
            for part in _split_toml_array(inner)
        ]
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        raise LintConfigError(f"{where}: cannot parse TOML value {text!r}")


def _split_toml_array(inner: str) -> List[str]:
    """Split a flattened array body on commas outside string quotes."""
    parts: List[str] = []
    current: List[str] = []
    in_string = False
    for char in inner:
        if char == '"':
            in_string = not in_string
            current.append(char)
        elif char == "," and not in_string:
            part = "".join(current).strip()
            if part:
                parts.append(part)
            current = []
        else:
            current.append(char)
    tail = "".join(current).strip()
    if tail:
        parts.append(tail)
    return parts


def _strip_toml_comment(line: str) -> str:
    out: List[str] = []
    in_string = False
    for char in line:
        if char == '"':
            in_string = not in_string
        elif char == "#" and not in_string:
            break
        out.append(char)
    return "".join(out)


def _parse_toml_fallback(text: str, where: str) -> Dict[str, Any]:
    """Parse the TOML subset ``.reprolint.toml`` uses (pre-3.11 fallback)."""
    data: Dict[str, Any] = {}
    table = data
    # Join multi-line arrays first so every logical line is `key = value`
    # or a `[table]` header.
    logical: List[str] = []
    buffer = ""
    depth = 0
    for raw in text.splitlines():
        line = _strip_toml_comment(raw).strip()
        if not line:
            continue
        buffer = f"{buffer} {line}".strip() if buffer else line
        depth += line.count("[") - line.count("]")
        if depth <= 0:
            logical.append(buffer)
            buffer = ""
            depth = 0
    if buffer:
        logical.append(buffer)
    for line in logical:
        if line.startswith("[") and line.endswith("]"):
            table = data
            for part in line[1:-1].strip().split("."):
                part = part.strip()
                if not part:
                    raise LintConfigError(f"{where}: empty table name in {line!r}")
                table = table.setdefault(part, {})
                if not isinstance(table, dict):
                    raise LintConfigError(
                        f"{where}: table {line!r} collides with a value"
                    )
            continue
        if "=" not in line:
            raise LintConfigError(f"{where}: cannot parse line {line!r}")
        key, _, value = line.partition("=")
        table[key.strip()] = _parse_toml_value(value, where)
    return data


def _load_toml(path: Path) -> Dict[str, Any]:
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise LintConfigError(f"cannot read {path}: {exc}") from exc
    try:
        import tomllib
    except ImportError:
        return _parse_toml_fallback(text, str(path))
    try:
        return tomllib.loads(text)
    except tomllib.TOMLDecodeError as exc:
        raise LintConfigError(f"{path}: {exc}") from exc


# ----------------------------------------------------------------------
# The configuration model
# ----------------------------------------------------------------------


@dataclass
class RuleConfig:
    """Per-rule scoping and free-form options."""

    enabled: bool = True
    include: List[str] = field(default_factory=list)
    exclude: List[str] = field(default_factory=list)
    options: Dict[str, Any] = field(default_factory=dict)


@dataclass
class LintConfig:
    """Everything the engine needs to know about the project."""

    #: Directory all configured paths are relative to.
    root: Path = field(default_factory=Path.cwd)
    #: Where importable code lives (resolving ``"module:qualname"`` refs).
    source_roots: List[str] = field(default_factory=lambda: ["src"])
    #: Path prefixes never linted.
    exclude: List[str] = field(default_factory=list)
    #: The deterministic packages — default scope of the DET rules.
    deterministic: List[str] = field(default_factory=list)
    #: Grandfathered findings, as ``"RULE:path-prefix"`` entries.
    baseline: List[str] = field(default_factory=list)
    rules: Dict[str, RuleConfig] = field(default_factory=dict)

    # -- scoping helpers ------------------------------------------------

    def rule(self, rule_id: str) -> RuleConfig:
        """The rule's configuration (a default one when not configured)."""
        return self.rules.get(rule_id) or RuleConfig()

    def rule_scope(
        self, rule_id: str, relpath: str, default_include: Optional[List[str]]
    ) -> bool:
        """Is ``relpath`` in scope for ``rule_id``?

        ``default_include`` is the rule's own default scope (``None`` =
        everything linted); an explicit ``include`` in the config
        replaces it, ``exclude`` always wins.
        """
        rule = self.rule(rule_id)
        if not rule.enabled:
            return False
        if any(path_matches(relpath, prefix) for prefix in rule.exclude):
            return False
        include = rule.include or default_include
        if include is None:
            return True
        return any(path_matches(relpath, prefix) for prefix in include)

    def baselined(self, rule_id: str, relpath: str) -> bool:
        """Is this finding grandfathered by a baseline entry?"""
        for entry in self.baseline:
            entry_rule, _, prefix = entry.partition(":")
            if entry_rule == rule_id and path_matches(relpath, prefix):
                return True
        return False


def path_matches(relpath: str, prefix: str) -> bool:
    """Segment-wise prefix match on posix-style relative paths."""
    relpath = relpath.replace("\\", "/").strip("/")
    prefix = prefix.replace("\\", "/").strip("/")
    if not prefix or prefix == ".":
        return True
    return relpath == prefix or relpath.startswith(prefix + "/")


def _string_list(value: Any, where: str) -> List[str]:
    if value is None:
        return []
    if not isinstance(value, list) or not all(
        isinstance(item, str) for item in value
    ):
        raise LintConfigError(f"{where}: expected a list of strings, got {value!r}")
    return list(value)


def config_from_dict(data: Dict[str, Any], root: Path) -> LintConfig:
    """Build a :class:`LintConfig` from parsed TOML data."""
    lint = data.get("lint", {})
    if not isinstance(lint, dict):
        raise LintConfigError("[lint] must be a table")
    config = LintConfig(
        root=root,
        source_roots=_string_list(lint.get("source_roots"), "lint.source_roots")
        or ["src"],
        exclude=_string_list(lint.get("exclude"), "lint.exclude"),
        deterministic=_string_list(lint.get("deterministic"), "lint.deterministic"),
    )
    baseline = lint.get("baseline", {})
    if baseline:
        if not isinstance(baseline, dict):
            raise LintConfigError("[lint.baseline] must be a table")
        config.baseline = _string_list(
            baseline.get("entries"), "lint.baseline.entries"
        )
    rules = lint.get("rules", {})
    if rules and not isinstance(rules, dict):
        raise LintConfigError("[lint.rules] must be a table")
    for rule_id, table in rules.items():
        if not isinstance(table, dict):
            raise LintConfigError(f"[lint.rules.{rule_id}] must be a table")
        options = {
            key: value
            for key, value in table.items()
            if key not in ("enabled", "include", "exclude")
        }
        config.rules[rule_id] = RuleConfig(
            enabled=bool(table.get("enabled", True)),
            include=_string_list(table.get("include"), f"{rule_id}.include"),
            exclude=_string_list(table.get("exclude"), f"{rule_id}.exclude"),
            options=options,
        )
    return config


def load_config(path: Path) -> LintConfig:
    """Load a ``.reprolint.toml``; paths are relative to its directory."""
    return config_from_dict(_load_toml(path), root=path.parent.resolve())


def find_config(start: Path) -> Optional[Path]:
    """Find the nearest ``.reprolint.toml`` at or above ``start``."""
    current = start.resolve()
    if current.is_file():
        current = current.parent
    for directory in [current, *current.parents]:
        candidate = directory / CONFIG_FILENAME
        if candidate.is_file():
            return candidate
    return None
