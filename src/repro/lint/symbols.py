"""Project-wide symbol table for the interprocedural lint pass.

The per-file rules see one AST at a time; the interprocedural layer
(:mod:`repro.lint.callgraph` / :mod:`repro.lint.dataflow`) needs to know,
for the whole lint target, *which function a name refers to*.  This
module builds that map from the already-parsed files — no imports are
executed, everything is resolved statically from ``import`` statements
and top-level ``def``/``class`` nodes.

Identity scheme
---------------

Every function the analysis can talk about has a stable string id:

* ``"repro.sim.network:Network.run"`` — a project function or method
  (``module:qualname``, the same shape the parallel layer's task
  references use);
* ``"repro.analysis.sweeps:<module>"`` — the *module pseudo-function*:
  code that runs at import time (module body, class bodies, decorators,
  argument defaults);
* ``"time.time"`` — an external callable (dotted, no colon).

Construction is deterministic: modules are visited in sorted relpath
order and symbols in source order, so downstream graphs and reports are
byte-stable across runs.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Set, Tuple

from .config import LintConfig

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (engine imports us lazily)
    from .engine import ParsedFile

#: Qualname of the module pseudo-function (import-time code).
MODULE_BODY = "<module>"

#: Re-export chains longer than this are abandoned (cycle guard).
_MAX_REEXPORT_DEPTH = 16


@dataclass
class FunctionSymbol:
    """One project function, method, or module pseudo-function."""

    sid: str  #: ``module:qualname`` — the node id used everywhere.
    module: str
    qualname: str
    relpath: str
    lineno: int
    is_async: bool
    #: The statements the symbol *owns* (its body; for the module
    #: pseudo-function: import-time code).  Call extraction walks these.
    owned: List[ast.AST] = field(default_factory=list, repr=False)


@dataclass
class ModuleSymbols:
    """Everything name resolution needs to know about one module."""

    name: str  #: dotted module name (``repro.sim.network``)
    relpath: str
    #: qualname -> symbol, includes :data:`MODULE_BODY`.
    functions: Dict[str, FunctionSymbol] = field(default_factory=dict)
    #: local alias -> dotted module (``import numpy as np``).
    module_aliases: Dict[str, str] = field(default_factory=dict)
    #: local name -> (source module, original name) for ``from m import x``.
    imported_names: Dict[str, Tuple[str, str]] = field(default_factory=dict)
    #: top-level class name -> its method names.
    classes: Dict[str, Set[str]] = field(default_factory=dict)

    def symbol(self, qualname: str) -> Optional[FunctionSymbol]:
        return self.functions.get(qualname)


def module_name_for(relpath: str, config: LintConfig) -> Optional[str]:
    """The dotted module name of ``relpath`` under the source roots.

    ``src/repro/sim/network.py`` -> ``repro.sim.network``;
    ``src/repro/sim/__init__.py`` -> ``repro.sim``.  ``None`` when the
    file is outside every configured source root.
    """
    for root in config.source_roots:
        root = root.replace("\\", "/").strip("/")
        if root and root != ".":
            if not relpath.startswith(root + "/"):
                continue
            inner = relpath[len(root) + 1 :]
        else:
            inner = relpath
        if not inner.endswith(".py"):
            continue
        parts = inner[: -len(".py")].split("/")
        if parts and parts[-1] == "__init__":
            parts = parts[:-1]
        if not parts or not all(part.isidentifier() for part in parts):
            continue
        return ".".join(parts)
    return None


def _relative_module(base: str, level: int, module: Optional[str]) -> Optional[str]:
    """Resolve a ``from ...x import y`` relative import to a dotted name.

    ``base`` is the importing module's dotted name.  Packages
    (``__init__``) and plain modules share the resolution used by the
    interpreter: level 1 is the containing package.
    """
    parts = base.split(".")
    # The containing package of a module `a.b.c` is `a.b`; going one
    # level up from there per extra dot.
    if len(parts) < level:
        return None
    prefix = parts[: len(parts) - level]
    if module:
        prefix = prefix + module.split(".")
    return ".".join(prefix) if prefix else None


class SymbolTable:
    """All modules of one lint run, indexed by dotted name and relpath."""

    def __init__(self) -> None:
        self.modules: Dict[str, ModuleSymbols] = {}
        self.by_path: Dict[str, ModuleSymbols] = {}

    # -- construction ----------------------------------------------------

    @classmethod
    def build(cls, files: "Dict[str, ParsedFile]", config: LintConfig) -> "SymbolTable":
        table = cls()
        for relpath in sorted(files):
            file = files[relpath]
            if file.tree is None:
                continue
            name = module_name_for(relpath, config)
            if name is None:
                continue
            module = build_module_symbols(name, relpath, file.tree)
            table.modules[name] = module
            table.by_path[relpath] = module
        return table

    # -- lookups ---------------------------------------------------------

    def module(self, name: str) -> Optional[ModuleSymbols]:
        return self.modules.get(name)

    def function(self, sid: str) -> Optional[FunctionSymbol]:
        module, _, qualname = sid.partition(":")
        info = self.modules.get(module)
        return info.symbol(qualname) if info is not None else None

    def resolve_name(
        self, module: ModuleSymbols, name: str, _depth: int = 0
    ) -> Optional[str]:
        """Resolve a bare ``name`` used in ``module`` to a node id.

        Returns ``"mod:qualname"`` for a project function/class (classes
        resolve to their ``__init__`` when defined, else ``mod:Cls``),
        a dotted external id for names imported from outside the table,
        or ``None`` for locals/builtins the analysis cannot see.
        Re-export chains (``from .impl import run``) are followed.
        """
        if _depth > _MAX_REEXPORT_DEPTH:
            return None
        if name in module.functions:
            return module.functions[name].sid
        if name in module.classes:
            init = f"{name}.__init__"
            if init in module.functions:
                return module.functions[init].sid
            return f"{module.name}:{name}"
        if name in module.imported_names:
            source, original = module.imported_names[name]
            target = self.modules.get(source)
            if target is not None:
                resolved = self.resolve_name(target, original, _depth + 1)
                if resolved is not None:
                    return resolved
                # `from pkg import submodule` where pkg is a package.
                submodule = self.modules.get(f"{source}.{original}")
                if submodule is not None:
                    return f"<module>{submodule.name}"
                return None  # name exists in-project but is data, not code
            submodule = self.modules.get(f"{source}.{original}")
            if submodule is not None:
                return f"<module>{submodule.name}"
            return f"{source}.{original}"
        if name in module.module_aliases:
            return f"<module>{module.module_aliases[name]}"
        return None

    def resolve_dotted(
        self, module: ModuleSymbols, root: str, attrs: List[str]
    ) -> Optional[str]:
        """Resolve ``root.a.b(...)`` attribute-call chains to a node id.

        ``root`` is the base :class:`ast.Name`; ``attrs`` the attribute
        path.  Handles module aliases (``np.linalg.norm``), project
        modules (``sweeps.sweep`` after ``from repro.analysis import
        sweeps``), and classmethod access on project classes.
        """
        base = self.resolve_name(module, root)
        if base is None or not attrs:
            return None
        if base.startswith("<module>"):
            dotted = base[len("<module>") :]
            # Longest module prefix wins: `pkg.sub.fn` may be module
            # `pkg.sub` + function `fn` or module `pkg` + attr path.
            for split in range(len(attrs) - 1, -1, -1):
                candidate = ".".join([dotted] + attrs[:split])
                target = self.modules.get(candidate)
                if target is None:
                    continue
                rest = attrs[split:]
                if not rest:
                    return f"<module>{candidate}"
                if len(rest) == 1:
                    resolved = self.resolve_name(target, rest[0])
                    if resolved is not None:
                        return resolved
                    return f"{candidate}.{rest[0]}"
                if rest[0] in target.classes:
                    qualname = ".".join(rest)
                    symbol = target.symbol(qualname)
                    if symbol is not None:
                        return symbol.sid
                return None
            return ".".join([dotted] + attrs)  # external module attr chain
        if ":" in base:
            # Attribute on a project class: classmethod / static access.
            mod_name, _, qualname = base.partition(":")
            owner = self.modules.get(mod_name)
            if owner is None:
                return None
            cls = qualname.split(".")[0]
            if cls in owner.classes and len(attrs) == 1:
                symbol = owner.symbol(f"{cls}.{attrs[0]}")
                if symbol is not None:
                    return symbol.sid
            return None
        return f"{base}.{'.'.join(attrs)}"  # external symbol attr chain


def build_module_symbols(
    name: str, relpath: str, tree: ast.Module
) -> ModuleSymbols:
    """Extract one module's symbols (see module docstring for ownership)."""
    module = ModuleSymbols(name=name, relpath=relpath)

    def add_function(
        node: ast.AST, qualname: str, owned: List[ast.AST], is_async: bool
    ) -> None:
        module.functions[qualname] = FunctionSymbol(
            sid=f"{name}:{qualname}",
            module=name,
            qualname=qualname,
            relpath=relpath,
            lineno=getattr(node, "lineno", 1),
            is_async=is_async,
            owned=owned,
        )

    pseudo_owned: List[ast.AST] = []
    add_function(tree, MODULE_BODY, pseudo_owned, is_async=False)

    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname is not None:
                    module.module_aliases[alias.asname] = alias.name
                else:
                    # `import a.b.c` binds `a`; dotted chains rooted at
                    # `a` resolve through the longest-prefix search.
                    root = alias.name.split(".")[0]
                    module.module_aliases[root] = root
        elif isinstance(node, ast.ImportFrom):
            source = (
                _relative_module(name, node.level, node.module)
                if node.level > 0
                else node.module
            )
            if source is None:
                continue
            for alias in node.names:
                if alias.name == "*":
                    continue
                module.imported_names[alias.asname or alias.name] = (
                    source,
                    alias.name,
                )

    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            add_function(
                node,
                node.name,
                list(node.body),
                is_async=isinstance(node, ast.AsyncFunctionDef),
            )
            pseudo_owned.extend(node.decorator_list)
            pseudo_owned.extend(_argument_defaults(node))
        elif isinstance(node, ast.ClassDef):
            methods: Set[str] = set()
            pseudo_owned.extend(node.decorator_list)
            pseudo_owned.extend(node.bases)
            pseudo_owned.extend(kw.value for kw in node.keywords)
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    methods.add(item.name)
                    add_function(
                        item,
                        f"{node.name}.{item.name}",
                        list(item.body),
                        is_async=isinstance(item, ast.AsyncFunctionDef),
                    )
                    pseudo_owned.extend(item.decorator_list)
                    pseudo_owned.extend(_argument_defaults(item))
                else:
                    pseudo_owned.append(item)
            module.classes[node.name] = methods
        else:
            pseudo_owned.append(node)
    return module


def _argument_defaults(node: ast.AST) -> List[ast.AST]:
    """Default-value expressions evaluate at def time (import time)."""
    args = getattr(node, "args", None)
    if args is None:
        return []
    defaults: List[ast.AST] = list(args.defaults)
    defaults.extend(d for d in args.kw_defaults if d is not None)
    return defaults


def iter_owned_nodes(symbol: FunctionSymbol) -> "List[ast.AST]":
    """All AST nodes a symbol owns.

    The ``owned`` lists are disjoint by construction — top-level
    functions and class methods were split out into their own symbols,
    so walking from here never re-enters another symbol's body.  Nested
    functions and lambdas *are* descended: they execute (if at all) in
    the owner's dynamic extent and have no symbol of their own.
    """
    out: List[ast.AST] = []
    stack: List[ast.AST] = list(symbol.owned)
    while stack:
        node = stack.pop()
        out.append(node)
        stack.extend(ast.iter_child_nodes(node))
    return out
