"""``repro.lint`` — the project's AST-based determinism & invariant linter.

A zero-dependency static-analysis pass enforcing the source-level
discipline the reproduction's guarantees rest on: seeded RNG streams
only (DET001), no hash-order iteration (DET002), no *transitive*
escapes to ambient nondeterminism over the project call graph (DET003),
picklable task references (PAR001), ``Metrics``/``merge``/validator
counter agreement (ACC001), ``__slots__`` on engine hot paths
(PERF001), a clean stdout (IO001), and event-loop hygiene in async code
(ASYNC001–003).  The interprocedural layer (``symbols`` → ``callgraph``
→ ``dataflow``) is built statically from the same per-file ASTs.  See
``docs/LINT.md`` for the full rule catalogue and ``.reprolint.toml``
for project scoping.

Use it from the CLI (``repro lint src/ --format json``) or as a
library::

    from pathlib import Path
    from repro.lint import find_config, lint_paths, load_config

    config = load_config(find_config(Path.cwd()))
    report = lint_paths([Path("src")], config)
    assert report.clean, report.render_text()
"""

from .config import (
    CONFIG_FILENAME,
    LintConfig,
    LintConfigError,
    RuleConfig,
    config_from_dict,
    find_config,
    load_config,
    path_matches,
)
from .engine import (
    Finding,
    LintReport,
    ParsedFile,
    build_rules,
    collect_files,
    lint_paths,
)
from .pragmas import PRAGMA_RULE, STALE_PRAGMA_RULE, Suppressions
from .sarif import render_sarif, sarif_dict

__all__ = [
    "CONFIG_FILENAME",
    "Finding",
    "LintConfig",
    "LintConfigError",
    "LintReport",
    "ParsedFile",
    "PRAGMA_RULE",
    "RuleConfig",
    "STALE_PRAGMA_RULE",
    "Suppressions",
    "build_rules",
    "collect_files",
    "config_from_dict",
    "find_config",
    "lint_paths",
    "load_config",
    "path_matches",
    "render_sarif",
    "sarif_dict",
]
