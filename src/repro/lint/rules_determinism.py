"""Determinism rules: DET001 (ambient randomness) and DET002 (set order).

The reproduction's headline guarantees — byte-identical ``jobs=N`` vs
``jobs=1`` campaigns, replayable CrashScripts, seed-stable message
counts — all assume that code inside the *deterministic packages* draws
randomness only from explicitly seeded :class:`random.Random` streams
(``repro.rng``) and never iterates containers in hash order.  These two
rules catch the source patterns that silently break that assumption.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set

from .config import LintConfig
from .engine import FileRule, Finding, ParsedFile

#: Ambient-source modules and the attributes DET001 bans on them.
#: ``None`` bans every attribute of the module.
_BANNED_ATTRS: Dict[str, Optional[Set[str]]] = {
    "random": None,  # special-cased: seeded random.Random(...) is allowed
    "time": {"time", "time_ns"},
    "os": {"urandom", "getrandom"},
    "uuid": {"uuid1", "uuid4"},
    "secrets": None,
}

#: ``from <module> import <name>`` pairs DET001 bans outright.
_BANNED_FROM_IMPORTS: Dict[str, Optional[Set[str]]] = {
    "random": None,  # except Random, filtered below
    "time": {"time", "time_ns"},
    "os": {"urandom", "getrandom"},
    "uuid": {"uuid1", "uuid4"},
    "secrets": None,
}


def _module_aliases(tree: ast.Module) -> Dict[str, str]:
    """Map local names to the ambient modules they import."""
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name in _BANNED_ATTRS:
                    aliases[alias.asname or alias.name] = alias.name
    return aliases


class AmbientNondeterminismRule(FileRule):
    """DET001: unseeded/ambient nondeterminism in deterministic packages.

    Flags, inside the configured deterministic packages:

    * any call through the global ``random`` module (``random.random()``,
      ``random.shuffle(...)``, ...) — draws must come from an explicit
      ``rng: random.Random`` parameter or a ``repro.rng`` stream;
    * ``random.Random()`` constructed with *no* seed (OS entropy);
    * wall-clock and entropy reads that leak into behaviour:
      ``time.time()``/``time.time_ns()``, ``os.urandom()``,
      ``uuid.uuid1()``/``uuid.uuid4()``, and anything in ``secrets``;
    * ``from random import <fn>`` style imports of the same names.
    """

    rule_id = "DET001"
    default_scope = "deterministic"

    def check(self, file: ParsedFile, config: LintConfig) -> List[Finding]:
        assert file.tree is not None
        findings: List[Finding] = []
        aliases = _module_aliases(file.tree)

        def flag(node: ast.AST, message: str) -> None:
            findings.append(
                Finding(
                    rule=self.rule_id,
                    path=file.relpath,
                    line=getattr(node, "lineno", 1),
                    col=getattr(node, "col_offset", 0) + 1,
                    message=message,
                )
            )

        for node in ast.walk(file.tree):
            if isinstance(node, ast.ImportFrom) and node.level == 0:
                banned = _BANNED_FROM_IMPORTS.get(node.module or "")
                if node.module not in _BANNED_FROM_IMPORTS:
                    continue
                for alias in node.names:
                    if node.module == "random" and alias.name == "Random":
                        continue  # the class itself is fine (must be seeded)
                    if banned is not None and alias.name not in banned:
                        continue
                    flag(
                        node,
                        f"'from {node.module} import {alias.name}' pulls an "
                        "ambient nondeterminism source into a deterministic "
                        "package; draw from a seeded repro.rng stream or an "
                        "explicit rng parameter instead",
                    )
                continue
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
            ):
                continue
            module = aliases.get(func.value.id)
            if module is None:
                continue
            attr = func.attr
            if module == "random":
                if attr == "Random":
                    if not node.args and not node.keywords:
                        flag(
                            node,
                            "random.Random() with no seed draws OS entropy; "
                            "seed it (e.g. via repro.rng.derive_seed) so the "
                            "run is reproducible",
                        )
                    continue
                flag(
                    node,
                    f"random.{attr}() uses the shared module-level RNG; "
                    "deterministic code must draw from an explicit "
                    "rng: random.Random parameter or a repro.rng stream",
                )
                continue
            banned = _BANNED_ATTRS[module]
            if banned is None or attr in banned:
                flag(
                    node,
                    f"{module}.{attr}() is an ambient nondeterminism source "
                    "(wall clock / OS entropy); deterministic code must not "
                    "depend on it",
                )
        return findings


#: Wrappers DET002 looks through: iterating ``enumerate(set(...))`` is
#: still iterating the set.  ``sorted`` is deliberately absent — it is
#: the fix.
_TRANSPARENT_WRAPPERS = {"enumerate", "reversed", "list", "tuple", "iter"}

_SET_BINOPS = (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)


def _is_bare_set_expr(node: ast.AST) -> bool:
    """Is ``node`` statically recognisable as producing a set?"""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("set", "frozenset")
    ):
        return True
    if isinstance(node, ast.BinOp) and isinstance(node.op, _SET_BINOPS):
        return _is_bare_set_expr(node.left) or _is_bare_set_expr(node.right)
    return False


def _set_expr_in_iter(node: ast.AST) -> Optional[ast.AST]:
    """The bare set expression iterated by ``node``, if any."""
    if _is_bare_set_expr(node):
        return node
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in _TRANSPARENT_WRAPPERS
        and node.args
    ):
        return _set_expr_in_iter(node.args[0])
    return None


class SetIterationRule(FileRule):
    """DET002: iteration over a bare set expression without ``sorted``.

    ``for x in set(...)`` (and comprehensions doing the same) iterate in
    hash order, which varies across interpreters and ``PYTHONHASHSEED``
    values; inside the deterministic packages every such loop must go
    through ``sorted(...)`` — or avoid materialising the set at all.
    Only *statically visible* set expressions are flagged (literals,
    ``set()``/``frozenset()`` calls, set comprehensions, and unions/
    intersections/differences of those); iterating a variable that
    happens to hold a set is out of this rule's reach.
    """

    rule_id = "DET002"
    default_scope = "deterministic"

    def check(self, file: ParsedFile, config: LintConfig) -> List[Finding]:
        assert file.tree is not None
        findings: List[Finding] = []

        def flag(node: ast.AST) -> None:
            findings.append(
                Finding(
                    rule=self.rule_id,
                    path=file.relpath,
                    line=getattr(node, "lineno", 1),
                    col=getattr(node, "col_offset", 0) + 1,
                    message=(
                        "iteration over a bare set expression is hash-order "
                        "dependent; wrap it in sorted(...) (or iterate the "
                        "underlying sequence) to keep runs reproducible"
                    ),
                )
            )

        for node in ast.walk(file.tree):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                if _set_expr_in_iter(node.iter) is not None:
                    flag(node.iter)
            elif isinstance(
                node, (ast.GeneratorExp, ast.ListComp, ast.SetComp, ast.DictComp)
            ):
                for generator in node.generators:
                    if _set_expr_in_iter(generator.iter) is not None:
                        flag(generator.iter)
        return findings
