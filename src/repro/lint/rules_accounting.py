"""ACC001: counter drift between ``Metrics``, ``Metrics.merge``, and the
trace validator.

The conservation identity ``sent == delivered + dropped + expired``
(docs/MODEL.md) is only as good as the bookkeeping around it: a counter
added to ``Metrics`` but forgotten in :meth:`Metrics.merge` silently
vanishes from every parallel campaign, and a message counter the
validator never looks at is a counter nothing cross-checks.  This rule
keeps the three in sync *statically*:

* every field declared on the configured metrics class must be read or
  written somewhere in its ``merge`` method;
* every ``messages_*`` counter (plus the per-round attribution list)
  must appear in the configured validator module.

Configured via ``[lint.rules.ACC001]``: ``metrics`` (file),
``metrics_class``, ``merge_method``, ``validate`` (file), and
``message_prefix``.  Each half runs only when its file is part of the
lint target set, so ``repro lint src/repro/sim/metrics.py`` (e.g. from
a pre-commit hook) checks exactly what changed.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set

from .config import LintConfig
from .engine import Finding, ParsedFile, ProjectRule


def _class_def(tree: ast.Module, name: str) -> Optional[ast.ClassDef]:
    for node in tree.body:
        if isinstance(node, ast.ClassDef) and node.name == name:
            return node
    return None


def _declared_fields(class_def: ast.ClassDef) -> Dict[str, int]:
    """Field name -> declaration line, from class-body (Ann)Assigns."""
    fields: Dict[str, int] = {}
    for node in class_def.body:
        if isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            if not node.target.id.startswith("_"):
                fields[node.target.id] = node.lineno
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) and not target.id.startswith("_"):
                    fields[target.id] = node.lineno
    return fields


def _referenced_names(node: ast.AST) -> Set[str]:
    names: Set[str] = set()
    for child in ast.walk(node):
        if isinstance(child, ast.Attribute):
            names.add(child.attr)
        elif isinstance(child, ast.Name):
            names.add(child.id)
        elif isinstance(child, ast.Constant) and isinstance(child.value, str):
            names.add(child.value)
    return names


class MergeDriftRule(ProjectRule):
    """ACC001 — see the module docstring."""

    rule_id = "ACC001"

    def check_project(
        self,
        files: Dict[str, ParsedFile],
        config: LintConfig,
        context: object = None,
    ) -> List[Finding]:
        options = config.rule(self.rule_id).options
        metrics_path = str(options.get("metrics", ""))
        class_name = str(options.get("metrics_class", "Metrics"))
        merge_name = str(options.get("merge_method", "merge"))
        validate_path = str(options.get("validate", ""))
        prefix = str(options.get("message_prefix", "messages_"))

        findings: List[Finding] = []
        metrics_file = files.get(metrics_path)
        fields: Dict[str, int] = {}
        class_line = 1

        # Parse the metrics class even when only the validator is being
        # linted (the validator half needs the field list).
        metrics_tree: Optional[ast.Module] = None
        if metrics_file is not None:
            metrics_tree = metrics_file.tree
        elif metrics_path and validate_path in files:
            abspath = config.root / metrics_path
            try:
                metrics_tree = ast.parse(
                    abspath.read_text(encoding="utf-8"), filename=str(abspath)
                )
            except (OSError, SyntaxError):
                metrics_tree = None

        if metrics_tree is not None:
            class_def = _class_def(metrics_tree, class_name)
            if class_def is None:
                if metrics_file is not None:
                    findings.append(
                        Finding(
                            rule=self.rule_id,
                            path=metrics_path,
                            line=1,
                            col=1,
                            message=(
                                f"configured metrics class {class_name!r} "
                                f"not found in {metrics_path}"
                            ),
                        )
                    )
                return findings
            fields = _declared_fields(class_def)
            class_line = class_def.lineno

        # Half 1: every declared field must appear in merge().
        if metrics_file is not None and metrics_tree is not None and fields:
            class_def = _class_def(metrics_tree, class_name)
            assert class_def is not None
            merge_def = next(
                (
                    node
                    for node in class_def.body
                    if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                    and node.name == merge_name
                ),
                None,
            )
            if merge_def is None:
                findings.append(
                    Finding(
                        rule=self.rule_id,
                        path=metrics_path,
                        line=class_line,
                        col=1,
                        message=(
                            f"{class_name} declares counters but has no "
                            f"{merge_name}() method to fold them "
                            "campaign-wide"
                        ),
                    )
                )
            else:
                merged = _referenced_names(merge_def)
                for name, line in sorted(fields.items()):
                    if name not in merged:
                        findings.append(
                            Finding(
                                rule=self.rule_id,
                                path=metrics_path,
                                line=line,
                                col=1,
                                message=(
                                    f"counter {class_name}.{name} is never "
                                    f"touched by {class_name}.{merge_name}()"
                                    "; parallel campaigns would silently "
                                    "drop it when folding per-trial metrics"
                                ),
                            )
                        )

        # Half 2: message counters must be cross-checked by the validator.
        validate_file = files.get(validate_path)
        if validate_file is not None and validate_file.tree is not None and fields:
            checked = _referenced_names(validate_file.tree)
            watched = [
                name
                for name in sorted(fields)
                if name.startswith(prefix) or name == "per_round_messages"
            ]
            for name in watched:
                if name not in checked:
                    findings.append(
                        Finding(
                            rule=self.rule_id,
                            path=validate_path,
                            line=1,
                            col=1,
                            message=(
                                f"message counter {class_name}.{name} is "
                                f"never referenced in {validate_path}; the "
                                "conservation identity no longer covers it"
                            ),
                        )
                    )
        return findings
