"""The lint engine: file collection, rule dispatch, reports.

Rules come in two shapes:

* **file rules** visit one module's AST at a time (DET001/DET002,
  PAR001's in-file checks, PERF001, IO001);
* **project rules** correlate several files (ACC001's ``Metrics`` ↔
  ``merge`` ↔ validator drift check, PAR001's registry check) and run
  once per lint invocation.

Findings flow through pragma suppression (:mod:`repro.lint.pragmas`)
and the configured baseline before being reported.  Output is stable:
files are walked in sorted order and findings sorted by (path, line,
col, rule), so two runs over the same tree are byte-identical — the
linter holds itself to the determinism bar it enforces.
"""

from __future__ import annotations

import ast
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Sequence

from .config import LintConfig, LintConfigError, path_matches
from .pragmas import PRAGMA_RULE, STALE_PRAGMA_RULE, Suppressions

if TYPE_CHECKING:  # pragma: no cover - cycle guard (callgraph imports us)
    from .callgraph import ProjectContext

SEVERITY_ERROR = "error"
SEVERITY_WARNING = "warning"

#: Rule id used for files that do not parse.
PARSE_RULE = "PARSE"

#: Schema version of the JSON report.
JSON_VERSION = 1


@dataclass(frozen=True)
class Finding:
    """One lint finding, pointing at a source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str
    severity: str = SEVERITY_ERROR

    def to_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }

    def render(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule} {self.severity}: {self.message}"
        )


@dataclass
class ParsedFile:
    """One collected source file, parsed once and shared by every rule."""

    relpath: str
    abspath: Path
    source: str
    tree: Optional[ast.Module]
    suppressions: Suppressions


class FileRule:
    """Base class of per-file rules."""

    rule_id: str = ""
    #: Default scope: ``None`` = every linted file, ``"deterministic"`` =
    #: the configured deterministic packages, or an options key holding a
    #: path list (e.g. PERF001's ``hot_modules``).
    default_scope: Optional[str] = None

    def applies(self, relpath: str, config: LintConfig) -> bool:
        default_include: Optional[List[str]]
        if self.default_scope is None:
            default_include = None
        elif self.default_scope == "deterministic":
            default_include = config.deterministic
        else:
            scope = config.rule(self.rule_id).options.get(self.default_scope, [])
            default_include = [str(item) for item in scope]
        return config.rule_scope(self.rule_id, relpath, default_include)

    def check(self, file: ParsedFile, config: LintConfig) -> List[Finding]:
        raise NotImplementedError


class ProjectRule:
    """Base class of cross-file rules.

    ``context`` is the run's shared :class:`~repro.lint.callgraph.\
ProjectContext` — symbol table and call graph, built lazily and at most
    once per invocation no matter how many rules consume them.
    """

    rule_id: str = ""

    def check_project(
        self,
        files: Dict[str, ParsedFile],
        config: LintConfig,
        context: "Optional[ProjectContext]" = None,
    ) -> List[Finding]:
        raise NotImplementedError


@dataclass
class LintReport:
    """Everything one lint run produced."""

    root: Path
    files: List[str] = field(default_factory=list)
    findings: List[Finding] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.findings

    @property
    def exit_code(self) -> int:
        return 0 if self.clean else 1

    def by_rule(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for finding in self.findings:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return dict(sorted(counts.items()))

    def to_dict(self) -> Dict[str, object]:
        return {
            "version": JSON_VERSION,
            "root": str(self.root),
            "files_checked": len(self.files),
            "findings": [finding.to_dict() for finding in self.findings],
            "summary": {
                "total": len(self.findings),
                "by_rule": self.by_rule(),
            },
        }

    def render_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=False)

    def render_text(self) -> str:
        lines = [finding.render() for finding in self.findings]
        if self.findings:
            per_rule = ", ".join(
                f"{rule}={count}" for rule, count in self.by_rule().items()
            )
            lines.append(
                f"{len(self.findings)} finding(s) in "
                f"{len(self.files)} file(s) ({per_rule})"
            )
        else:
            lines.append(f"clean: {len(self.files)} file(s), 0 findings")
        return "\n".join(lines)


def _iter_python_files(path: Path) -> Iterable[Path]:
    if path.is_file():
        yield path
        return
    for candidate in sorted(path.rglob("*.py")):
        if "__pycache__" in candidate.parts:
            continue
        yield candidate


def _relpath(path: Path, root: Path) -> str:
    try:
        return path.resolve().relative_to(root).as_posix()
    except ValueError:
        return path.as_posix()


def collect_files(
    paths: Sequence[Path], config: LintConfig
) -> Dict[str, ParsedFile]:
    """Collect, read, and parse the lint targets (sorted, deduplicated)."""
    root = config.root.resolve()
    files: Dict[str, ParsedFile] = {}
    for target in paths:
        target = Path(target)
        if not target.is_absolute():
            target = root / target
        if not target.exists():
            # A typo'd path must not silently gate nothing (exit 0 with
            # zero files would look green in CI).
            raise LintConfigError(f"no such lint target: {target}")
        for path in _iter_python_files(target):
            relpath = _relpath(path, root)
            if relpath in files:
                continue
            if any(path_matches(relpath, prefix) for prefix in config.exclude):
                continue
            source = path.read_text(encoding="utf-8")
            try:
                tree: Optional[ast.Module] = ast.parse(source, filename=str(path))
            except SyntaxError:
                tree = None
            files[relpath] = ParsedFile(
                relpath=relpath,
                abspath=path.resolve(),
                source=source,
                tree=tree,
                suppressions=Suppressions.from_source(source),
            )
    return dict(sorted(files.items()))


def build_rules() -> List[object]:
    """Fresh rule instances (rules may cache parsed modules per run)."""
    from .dataflow import NondeterminismFlowRule
    from .rules_accounting import MergeDriftRule
    from .rules_async import (
        BlockingCallRule,
        LockAcrossAwaitRule,
        LostCoroutineRule,
    )
    from .rules_determinism import AmbientNondeterminismRule, SetIterationRule
    from .rules_exceptions import SwallowedExceptionRule
    from .rules_parallel import TaskRefRule
    from .rules_style import BarePrintRule, SlotsRule
    from .rules_vec import NumpyIterationRule

    return [
        AmbientNondeterminismRule(),
        SetIterationRule(),
        NondeterminismFlowRule(),
        TaskRefRule(),
        MergeDriftRule(),
        SlotsRule(),
        BarePrintRule(),
        SwallowedExceptionRule(),
        NumpyIterationRule(),
        BlockingCallRule(),
        LockAcrossAwaitRule(),
        LostCoroutineRule(),
    ]


def lint_paths(
    paths: Sequence[Path],
    config: LintConfig,
    rules: Optional[Sequence[object]] = None,
) -> LintReport:
    """Lint ``paths`` (files or directories) under ``config``."""
    from .callgraph import ProjectContext  # lazy: callgraph imports us

    files = collect_files(paths, config)
    rules = list(rules) if rules is not None else build_rules()
    report = LintReport(root=config.root, files=list(files))
    context = ProjectContext(files, config)

    raw: List[Finding] = []
    for file in files.values():
        if file.tree is None:
            raw.append(
                Finding(
                    rule=PARSE_RULE,
                    path=file.relpath,
                    line=1,
                    col=1,
                    message="file does not parse as Python",
                )
            )
            continue
        for bad in file.suppressions.bad:
            raw.append(
                Finding(
                    rule=PRAGMA_RULE,
                    path=file.relpath,
                    line=bad.line,
                    col=bad.col,
                    message=bad.message,
                )
            )
        for rule in rules:
            if isinstance(rule, FileRule) and rule.applies(file.relpath, config):
                raw.extend(rule.check(file, config))
    for rule in rules:
        if isinstance(rule, ProjectRule) and config.rule(rule.rule_id).enabled:
            raw.extend(rule.check_project(files, config, context))

    for finding in raw:
        file = files.get(finding.path)
        if file is not None and file.suppressions.suppressed(
            finding.rule, finding.line
        ):
            continue
        if config.baselined(finding.rule, finding.path):
            continue
        report.findings.append(finding)

    # LINT002: pragmas that suppressed nothing this run.  Must come after
    # the filter loop above — that is what populates the ``used`` sets.
    if config.rule(STALE_PRAGMA_RULE).enabled:
        for file in files.values():
            for declared, unused in file.suppressions.stale():
                if config.baselined(STALE_PRAGMA_RULE, file.relpath):
                    continue
                rules_text = ", ".join(unused)
                where = (
                    "the whole file"
                    if declared.target == 0
                    else f"line {declared.target}"
                )
                report.findings.append(
                    Finding(
                        rule=STALE_PRAGMA_RULE,
                        path=file.relpath,
                        line=declared.line,
                        col=declared.col,
                        message=(
                            f"stale suppression: pragma for {rules_text} "
                            f"covers {where} but suppressed no finding; "
                            "delete it (or narrow it) so dead exceptions "
                            "don't accumulate"
                        ),
                        severity=SEVERITY_WARNING,
                    )
                )
    report.findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return report
