"""Nondeterminism taint flow over the project call graph (DET003).

DET001/DET002 are *syntactic and file-local*: they catch `time.time()`
written inside a deterministic package.  They are blind to the flow
that actually breaks campaigns in a growing codebase — a function in
``analysis/`` calling through three frames into a helper in ``obs/``
that reads the wall clock.  This module closes that hole with a
taint-style reachability analysis:

* **sources** — calls to ambient-nondeterminism callables
  (``time.time``/``time_ns``, ``os.urandom``/``getrandom``,
  ``uuid.uuid1``/``uuid4``, anything in ``secrets``, module-level
  ``random.*``, ``random.Random()`` with no seed) *plus* bare-set
  hash-order iteration (the DET002 pattern) — seeded only **outside**
  the deterministic packages, where DET001/DET002 cannot see them;
* **sanitizers** — modules of the seeded-RNG façade (``repro.rng`` by
  default): taint never propagates through their functions, because
  deriving a seeded stream is the *sanctioned* way to consume a seed;
* **propagation** — reverse reachability over call edges (including
  ``"module:qualname"`` task-ref edges, so the pool/serve dispatch seam
  does not launder taint), cut at any call site carrying a justified
  ``# repro: lint-ignore[DET003]`` pragma.

**DET003** then reports every *boundary edge*: a call site inside a
deterministic package whose callee is a tainted function outside them.
Each finding renders the full evidence chain
(``a -> b -> c -> time.time``, with file:line per hop) so the fix —
re-route through ``repro.rng``, hoist the clock read out, or justify a
pragma — is obvious from the report alone.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from .callgraph import CallGraph, CallSite, ProjectContext
from .config import LintConfig, path_matches
from .engine import Finding, ParsedFile, ProjectRule

#: External callables whose *call* injects ambient nondeterminism.
DEFAULT_SOURCES: Set[str] = {
    "time.time",
    "time.time_ns",
    "os.urandom",
    "os.getrandom",
    "uuid.uuid1",
    "uuid.uuid4",
}

#: Prefixes treated as source families (any attribute of the module).
DEFAULT_SOURCE_PREFIXES: Tuple[str, ...] = ("secrets.", "random.")

#: Modules whose functions are taint barriers by default: the seeded-RNG
#: façade.  ``derive_seed``/``RngFactory`` exist to turn a seed into a
#: stream — flows through them are the sanctioned design.
DEFAULT_SANITIZERS: Tuple[str, ...] = ("repro.rng",)

#: Pseudo-callee id for the intrinsic hash-order-iteration source.
SET_ITERATION_SOURCE = "<hash-order set iteration>"

#: Rules whose pragma cuts a taint edge or seed.  A DET002 pragma on a
#: helper's set iteration is accepted too: the author already justified
#: that exact hazard at that exact line.
_CUTTING_RULES = ("DET003", "DET002", "DET001")


@dataclass(frozen=True)
class TaintStep:
    """One hop of an evidence chain."""

    node: str  #: the callee reached by this hop
    relpath: str
    line: int


class TaintAnalysis:
    """Reverse reachability from nondeterminism sources.

    ``tainted`` maps every function id that can reach a source to the
    :class:`CallSite` (or intrinsic pseudo-site) of its first hop toward
    that source; chains are reconstructed by following first hops until
    an external callee.  Results are deterministic: seeds and reverse
    edges are processed in sorted order, so the recorded hop is stable.
    """

    def __init__(
        self,
        graph: CallGraph,
        files: Dict[str, ParsedFile],
        config: LintConfig,
        deterministic: Sequence[str],
        sanitizers: Sequence[str],
        extra_sources: Sequence[str] = (),
    ) -> None:
        self.graph = graph
        self.files = files
        self.config = config
        self.deterministic = list(deterministic)
        self.sanitizers = list(sanitizers)
        self.sources = set(DEFAULT_SOURCES) | set(extra_sources)
        self.tainted: Dict[str, CallSite] = {}
        self._run()

    # -- classification --------------------------------------------------

    def is_source_call(self, site: CallSite) -> bool:
        """Is this edge a direct call into an ambient source?"""
        callee = site.callee
        if ":" in callee:
            return False  # project function, never an external source
        if callee == "random.Random":
            return not site.has_args  # unseeded constructor = OS entropy
        if callee in self.sources:
            return True
        return any(callee.startswith(p) for p in DEFAULT_SOURCE_PREFIXES)

    def in_deterministic(self, relpath: str) -> bool:
        return any(path_matches(relpath, p) for p in self.deterministic)

    def _sanitized(self, sid: str) -> bool:
        module = sid.partition(":")[0]
        return any(
            module == s or module.startswith(s + ".") for s in self.sanitizers
        )

    def _cut(self, relpath: str, line: int) -> bool:
        """Does a justified pragma sever flows at this location?"""
        file = self.files.get(relpath)
        if file is None:
            return False
        return any(
            file.suppressions.suppressed(rule, line) for rule in _CUTTING_RULES
        )

    # -- the analysis ----------------------------------------------------

    def _run(self) -> None:
        queue: List[str] = []
        for symbol in self.graph.functions():
            sid = symbol.sid
            if self.in_deterministic(symbol.relpath) or self._sanitized(sid):
                # Direct sources inside deterministic packages are
                # DET001/DET002 findings (or carry pragmas); sanitizer
                # modules are trusted by construction.
                continue
            seed = self._seed_site(sid, symbol.relpath)
            if seed is not None:
                self.tainted[sid] = seed
                queue.append(sid)
        index = 0
        while index < len(queue):
            current = queue[index]
            index += 1
            for site in self.graph.callers_of(current):
                caller = site.caller
                if caller in self.tainted or self._sanitized(caller):
                    continue
                if self._cut(site.relpath, site.line):
                    continue
                self.tainted[caller] = site
                queue.append(caller)

    def _seed_site(self, sid: str, relpath: str) -> Optional[CallSite]:
        """The function's first unsuppressed intrinsic source, if any."""
        candidates: List[CallSite] = []
        for site in self.graph.calls_from(sid):
            if self.is_source_call(site) and not self._cut(
                site.relpath, site.line
            ):
                candidates.append(site)
        for line, col in self.graph.set_iteration.get(sid, []):
            if not self._cut(relpath, line):
                candidates.append(
                    CallSite(
                        caller=sid,
                        callee=SET_ITERATION_SOURCE,
                        relpath=relpath,
                        line=line,
                        col=col,
                    )
                )
        if not candidates:
            return None
        return min(candidates, key=lambda s: (s.line, s.col, s.callee))

    # -- evidence --------------------------------------------------------

    def chain_from(self, site: CallSite) -> List[TaintStep]:
        """Follow first hops from ``site`` down to the external source."""
        steps: List[TaintStep] = []
        current = site
        for _ in range(len(self.tainted) + 2):  # bounded: hops strictly
            # descend toward seeds discovered earlier in the BFS.
            steps.append(
                TaintStep(
                    node=current.callee,
                    relpath=current.relpath,
                    line=current.line,
                )
            )
            if ":" not in current.callee:  # external / intrinsic source
                return steps
            nxt = self.tainted.get(current.callee)
            if nxt is None:
                return steps
            current = nxt
        return steps

    @staticmethod
    def render_chain(start: str, steps: Sequence[TaintStep]) -> str:
        parts = [start]
        for step in steps:
            parts.append(f"{step.node} ({step.relpath}:{step.line})")
        return " -> ".join(parts)


class NondeterminismFlowRule(ProjectRule):
    """DET003: deterministic code reaching an ambient source transitively.

    Reports every call site in a deterministic package whose callee —
    a helper outside those packages, possibly through a chain of further
    calls or a ``module:qualname`` task reference — can reach an
    ambient-nondeterminism source without passing through the seeded-RNG
    façade.  The message carries the full call chain so the finding is
    actionable without re-running the analysis.
    """

    rule_id = "DET003"

    def check_project(
        self,
        files: Dict[str, ParsedFile],
        config: LintConfig,
        context: Optional[ProjectContext] = None,
    ) -> List[Finding]:
        options = config.rule(self.rule_id).options
        sanitizers = [
            str(s) for s in options.get("sanitizers", list(DEFAULT_SANITIZERS))
        ]
        extra_sources = [str(s) for s in options.get("sources", [])]
        deterministic = config.deterministic
        if not deterministic:
            return []
        if context is None:
            context = ProjectContext(files, config)
        graph = context.graph
        analysis = TaintAnalysis(
            graph,
            files,
            config,
            deterministic=deterministic,
            sanitizers=sanitizers,
            extra_sources=extra_sources,
        )

        findings: List[Finding] = []
        seen: Set[Tuple[str, int, int, str]] = set()
        for symbol in graph.functions():
            if not analysis.in_deterministic(symbol.relpath):
                continue
            if not config.rule_scope(
                self.rule_id, symbol.relpath, deterministic
            ):
                continue
            for site in graph.calls_from(symbol.sid):
                target = site.callee
                if ":" not in target or target not in analysis.tainted:
                    continue
                target_symbol = graph.symbols.function(target)
                if target_symbol is None or analysis.in_deterministic(
                    target_symbol.relpath
                ):
                    # Deterministic-to-deterministic edges are covered by
                    # the finding at the eventual boundary crossing.
                    continue
                key = (site.relpath, site.line, site.col, target)
                if key in seen:
                    continue
                seen.add(key)
                chain = analysis.chain_from(analysis.tainted[target])
                source = chain[-1].node if chain else "?"
                rendered = analysis.render_chain(
                    target, [TaintStep(s.node, s.relpath, s.line) for s in chain]
                )
                via = " via task reference" if site.kind == "taskref" else ""
                findings.append(
                    Finding(
                        rule=self.rule_id,
                        path=site.relpath,
                        line=site.line,
                        col=site.col,
                        message=(
                            f"call{via} into {target!r} reaches the ambient "
                            f"nondeterminism source {source} without passing "
                            "through the seeded-RNG facade: "
                            f"{symbol.sid} -> {rendered}; route randomness "
                            "through repro.rng / hoist the ambient read out, "
                            "or justify with "
                            "'# repro: lint-ignore[DET003] <why>'"
                        ),
                    )
                )
        findings.sort(key=lambda f: (f.path, f.line, f.col, f.message))
        return findings
