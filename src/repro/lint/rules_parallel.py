"""PAR001: task references must survive a process boundary.

The parallel scheduler ships trials to workers as picklable
:class:`~repro.parallel.spec.TrialSpec` objects whose task is either a
module-level callable or a ``"module:qualname"`` string resolved inside
the worker.  A lambda, closure, or dangling string reference works
serially and explodes only under ``--jobs N`` — exactly the kind of
latent break this rule catches at lint time.

Checks:

* **in-file** — a ``task=`` argument bound to a ``lambda`` (pickling
  will fail in any parallel campaign), and every string literal shaped
  like ``"repro...:name"`` must resolve, *statically*, to a top-level
  ``def`` in the named module under the configured source roots;
* **project** — the experiment registry's ``_ALL`` list only contains
  names actually imported from modules that define them at top level,
  and every public task in the configured task modules accepts the
  scheduler's ``seed=`` keyword.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import Dict, List, Optional, Set, Tuple

from .config import LintConfig
from .engine import FileRule, Finding, ParsedFile, ProjectRule

_REF_RE = re.compile(
    r"^(?P<module>[A-Za-z_][A-Za-z0-9_]*(?:\.[A-Za-z_][A-Za-z0-9_]*)*)"
    r":(?P<qualname>[A-Za-z_][A-Za-z0-9_.]*)$"
)


def _finding(rule_id: str, file_relpath: str, node: ast.AST, message: str) -> Finding:
    return Finding(
        rule=rule_id,
        path=file_relpath,
        line=getattr(node, "lineno", 1),
        col=getattr(node, "col_offset", 0) + 1,
        message=message,
    )


class _ModuleIndex:
    """Per-run cache of parsed module files keyed by resolved path."""

    def __init__(self) -> None:
        self._cache: Dict[Path, Optional[ast.Module]] = {}

    def parse(self, path: Path) -> Optional[ast.Module]:
        path = path.resolve()
        if path not in self._cache:
            try:
                source = path.read_text(encoding="utf-8")
                self._cache[path] = ast.parse(source, filename=str(path))
            except (OSError, SyntaxError):
                self._cache[path] = None
        return self._cache[path]

    def module_file(self, module: str, config: LintConfig) -> Optional[Path]:
        """Locate ``module`` under the configured source roots."""
        parts = module.split(".")
        for root in config.source_roots:
            base = config.root / root
            as_module = base.joinpath(*parts).with_suffix(".py")
            if as_module.is_file():
                return as_module
            as_package = base.joinpath(*parts) / "__init__.py"
            if as_package.is_file():
                return as_package
        return None

    def top_level_names(self, tree: ast.Module) -> Set[str]:
        names: Set[str] = set()
        for node in tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                names.add(node.name)
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
            elif isinstance(node, ast.AnnAssign):
                if isinstance(node.target, ast.Name):
                    names.add(node.target.id)
        return names

    def top_level_functions(self, tree: ast.Module) -> Set[str]:
        return {
            node.name
            for node in tree.body
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        }


class TaskRefRule(FileRule, ProjectRule):
    """PAR001 — both the per-file and the cross-file checks."""

    rule_id = "PAR001"
    default_scope = None  # every linted file (string refs can hide anywhere)

    def __init__(self) -> None:
        self._index = _ModuleIndex()

    # ------------------------------------------------------------------
    # Per-file: lambda tasks and string reference resolution
    # ------------------------------------------------------------------

    def check(self, file: ParsedFile, config: LintConfig) -> List[Finding]:
        assert file.tree is not None
        options = config.rule(self.rule_id).options
        prefixes = [str(p) for p in options.get("ref_prefixes", ["repro"])]
        findings: List[Finding] = []
        for node in ast.walk(file.tree):
            if isinstance(node, ast.Call):
                for keyword in node.keywords:
                    if keyword.arg == "task" and isinstance(
                        keyword.value, ast.Lambda
                    ):
                        findings.append(
                            _finding(
                                self.rule_id,
                                file.relpath,
                                keyword.value,
                                "lambda passed as task= cannot cross a "
                                "process boundary (not picklable); use a "
                                "module-level function or a "
                                "'module:qualname' reference",
                            )
                        )
            elif isinstance(node, ast.Constant) and isinstance(node.value, str):
                match = _REF_RE.match(node.value)
                if match is None:
                    continue
                module = match.group("module")
                if not any(
                    module == prefix or module.startswith(prefix + ".")
                    for prefix in prefixes
                ):
                    continue
                problem = self._check_ref(
                    module, match.group("qualname"), config
                )
                if problem is not None:
                    findings.append(
                        _finding(
                            self.rule_id,
                            file.relpath,
                            node,
                            f"task reference {node.value!r} {problem}",
                        )
                    )
        return findings

    def _check_ref(
        self, module: str, qualname: str, config: LintConfig
    ) -> Optional[str]:
        """Why the reference is broken, or ``None`` when it resolves."""
        path = self._index.module_file(module, config)
        if path is None:
            return (
                f"names module {module!r}, which does not exist under the "
                f"configured source roots {config.source_roots}"
            )
        tree = self._index.parse(path)
        if tree is None:
            return f"names module {module!r}, which does not parse"
        if "." in qualname:
            return (
                "does not name a top-level function (nested or method "
                "qualnames cannot be resolved by pool workers)"
            )
        if qualname not in self._index.top_level_functions(tree):
            return (
                f"does not resolve: {module!r} has no top-level function "
                f"{qualname!r}"
            )
        return None

    # ------------------------------------------------------------------
    # Project: registry entries and task-module signatures
    # ------------------------------------------------------------------

    def check_project(
        self,
        files: Dict[str, ParsedFile],
        config: LintConfig,
        context: object = None,
    ) -> List[Finding]:
        options = config.rule(self.rule_id).options
        findings: List[Finding] = []
        for registry in options.get("registries", []):
            file = files.get(str(registry))
            if file is not None and file.tree is not None:
                findings.extend(self._check_registry(file, config, options))
        for task_module in options.get("task_modules", []):
            file = files.get(str(task_module))
            if file is not None and file.tree is not None:
                findings.extend(self._check_task_module(file))
        return findings

    def _check_registry(
        self, file: ParsedFile, config: LintConfig, options: Dict[str, object]
    ) -> List[Finding]:
        """Every name in the registry list must be imported from a module
        that really defines it at top level."""
        assert file.tree is not None
        list_name = str(options.get("registry_list_name", "_ALL"))
        findings: List[Finding] = []
        imported: Dict[str, Tuple[ast.ImportFrom, Optional[Path]]] = {}
        for node in file.tree.body:
            if not isinstance(node, ast.ImportFrom):
                continue
            source = self._import_source(node, file, config)
            for alias in node.names:
                imported[alias.asname or alias.name] = (node, source)
        local = self._index.top_level_names(file.tree)
        for node in file.tree.body:
            if not isinstance(node, ast.Assign):
                continue
            if not any(
                isinstance(t, ast.Name) and t.id == list_name
                for t in node.targets
            ):
                continue
            if not isinstance(node.value, (ast.List, ast.Tuple)):
                continue
            for element in node.value.elts:
                if not isinstance(element, ast.Name):
                    findings.append(
                        _finding(
                            self.rule_id,
                            file.relpath,
                            element,
                            f"registry list {list_name} entries must be "
                            "plain imported names",
                        )
                    )
                    continue
                name = element.id
                if name in imported:
                    import_node, source = imported[name]
                    if source is None:
                        continue  # unresolvable module: out of our tree
                    tree = self._index.parse(source)
                    if tree is None:
                        continue
                    # The imported name may itself be an alias.
                    original = next(
                        (
                            alias.name
                            for alias in import_node.names
                            if (alias.asname or alias.name) == name
                        ),
                        name,
                    )
                    if original not in self._index.top_level_names(tree):
                        findings.append(
                            _finding(
                                self.rule_id,
                                file.relpath,
                                element,
                                f"registry entry {name!r} is imported from "
                                f"{source.name!r}, which does not define it "
                                "at top level",
                            )
                        )
                elif name not in local:
                    findings.append(
                        _finding(
                            self.rule_id,
                            file.relpath,
                            element,
                            f"registry entry {name!r} is neither imported "
                            "nor defined in this module",
                        )
                    )
        return findings

    def _import_source(
        self, node: ast.ImportFrom, file: ParsedFile, config: LintConfig
    ) -> Optional[Path]:
        """The file an ``from ... import`` pulls from, when locatable."""
        if node.level > 0:
            base = file.abspath.parent
            for _ in range(node.level - 1):
                base = base.parent
            if node.module:
                candidate = base.joinpath(*node.module.split(".")).with_suffix(
                    ".py"
                )
                if candidate.is_file():
                    return candidate
                package = base.joinpath(*node.module.split(".")) / "__init__.py"
                if package.is_file():
                    return package
            return None
        if node.module:
            return self._index.module_file(node.module, config)
        return None

    def _check_task_module(self, file: ParsedFile) -> List[Finding]:
        """Public top-level tasks must accept the scheduler's ``seed=``."""
        assert file.tree is not None
        findings: List[Finding] = []
        for node in file.tree.body:
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if node.name.startswith("_"):
                continue
            args = node.args
            names = {a.arg for a in args.args + args.kwonlyargs}
            if "seed" in names or args.kwarg is not None:
                continue
            findings.append(
                _finding(
                    self.rule_id,
                    file.relpath,
                    node,
                    f"task {node.name}() does not accept the scheduler's "
                    "seed= keyword (tasks are called as task(seed=..., "
                    "**point))",
                )
            )
        return findings
