"""Hot-path and IO discipline rules: PERF001 and IO001.

PERF001 guards the engine's per-message allocation path: classes in the
configured hot modules (``sim/message.py``, ``sim/trace.py``) were
deliberately converted to ``__slots__`` classes (docs/PERF.md); a new
class added there without slots quietly reintroduces a per-instance
``__dict__`` on a path exercised millions of times per campaign.

IO001 keeps stdout clean: CLI table/report output is the *product* of a
run (and is diffed byte-for-byte in parity tests), so engine and worker
code must never ``print()`` to stdout — diagnostics go through
:mod:`repro.obs.progress` or an explicit ``file=sys.stderr``.
"""

from __future__ import annotations

import ast
from typing import List

from .config import LintConfig
from .engine import FileRule, Finding, ParsedFile

#: Base-class names that exempt a class from PERF001: exception types
#: (raised, not allocated per message) and helper metaclasses.
_SLOTS_EXEMPT_BASES = ("Enum", "IntEnum", "Flag", "NamedTuple", "TypedDict", "Protocol")


def _base_name(node: ast.expr) -> str:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return ""


def _is_dataclass_decorator(node: ast.expr) -> bool:
    if isinstance(node, ast.Call):
        node = node.func
    return _base_name(node) == "dataclass"


class SlotsRule(FileRule):
    """PERF001: hot-path classes must declare ``__slots__``.

    Applies to the modules configured as ``hot_modules``.  Dataclasses
    are exempt (pre-3.10 dataclasses cannot take ``slots=True``, and the
    ones kept in hot modules are deliberate, e.g. the per-run ``Trace``
    container), as are exception and enum types.
    """

    rule_id = "PERF001"
    default_scope = "hot_modules"

    def check(self, file: ParsedFile, config: LintConfig) -> List[Finding]:
        assert file.tree is not None
        findings: List[Finding] = []
        for node in ast.walk(file.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if any(_is_dataclass_decorator(d) for d in node.decorator_list):
                continue
            if any(
                _base_name(base).endswith(("Error", "Exception"))
                or _base_name(base) in _SLOTS_EXEMPT_BASES
                for base in node.bases
            ):
                continue
            has_slots = any(
                (
                    isinstance(stmt, ast.Assign)
                    and any(
                        isinstance(t, ast.Name) and t.id == "__slots__"
                        for t in stmt.targets
                    )
                )
                or (
                    isinstance(stmt, ast.AnnAssign)
                    and isinstance(stmt.target, ast.Name)
                    and stmt.target.id == "__slots__"
                )
                for stmt in node.body
            )
            if not has_slots:
                findings.append(
                    Finding(
                        rule=self.rule_id,
                        path=file.relpath,
                        line=node.lineno,
                        col=node.col_offset + 1,
                        message=(
                            f"class {node.name} lives in an engine hot-path "
                            "module but declares no __slots__; per-instance "
                            "__dict__ allocation here costs every single "
                            "message (see docs/PERF.md)"
                        ),
                    )
                )
        return findings


class BarePrintRule(FileRule):
    """IO001: no bare ``print()`` outside the CLI.

    A ``print`` without ``file=`` (or with ``file=sys.stdout``) writes
    to stdout, which is reserved for CLI product output; library,
    engine, and worker code must route diagnostics through
    ``repro.obs.progress`` or ``file=sys.stderr``.
    """

    rule_id = "IO001"
    default_scope = None  # everything linted, minus configured excludes

    def check(self, file: ParsedFile, config: LintConfig) -> List[Finding]:
        assert file.tree is not None
        findings: List[Finding] = []
        for node in ast.walk(file.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "print"
            ):
                continue
            file_kw = next(
                (kw for kw in node.keywords if kw.arg == "file"), None
            )
            if file_kw is not None:
                value = file_kw.value
                to_stdout = (
                    isinstance(value, ast.Attribute)
                    and value.attr == "stdout"
                    and isinstance(value.value, ast.Name)
                    and value.value.id == "sys"
                )
                if not to_stdout:
                    continue  # explicit non-stdout destination is fine
            findings.append(
                Finding(
                    rule=self.rule_id,
                    path=file.relpath,
                    line=node.lineno,
                    col=node.col_offset + 1,
                    message=(
                        "bare print() writes to stdout, which is reserved "
                        "for CLI output; use repro.obs.progress or "
                        "print(..., file=sys.stderr) for diagnostics"
                    ),
                )
            )
        return findings
