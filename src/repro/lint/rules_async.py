"""Async-safety rules for the serving layer (ASYNC001/002/003).

``repro serve`` runs its HTTP front on an asyncio event loop, and the
planned real-network backend will multiply the async surface.  The
event-loop contract is invisible to the runtime until production: a
blocking call in a coroutine does not crash anything, it just freezes
every other connection for its duration.  These rules machine-check the
three failure modes that matter:

* **ASYNC001** — a blocking call executed directly on the event loop:
  ``time.sleep``, synchronous ``subprocess``/``os.system``/socket/
  ``urllib`` calls, builtin ``open``, ``queue.Queue.get/put/join``, and
  ``threading`` primitive ``acquire``/``wait`` inside an ``async def``
  body.  The sanctioned escapes — ``await asyncio.sleep(...)``,
  ``loop.run_in_executor(...)``, ``asyncio.to_thread(...)`` — pass the
  callable *uncalled* and therefore never trip the rule.
* **ASYNC002** — a lost coroutine: a statement-level call of an
  ``async def`` whose result is neither awaited, gathered, nor stored.
  The coroutine object is created and silently garbage-collected; the
  code it was supposed to run never executes.  Bare
  ``asyncio.create_task(...)`` / ``ensure_future(...)`` statements are
  flagged too — a task without a reference can be collected mid-flight.
* **ASYNC003** — a ``threading`` primitive held across an ``await``:
  ``with self._lock: ... await ...`` parks the coroutine while holding
  an OS lock, deadlocking any thread (or the loop itself, via
  ``run_in_executor``) that needs it.  Use ``asyncio`` primitives or
  release before awaiting.

ASYNC001/003 are file-local (an ``async def`` and its body are visible
in one module); ASYNC002 resolves callees through the project symbol
table so imported coroutines are recognised.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from .callgraph import ProjectContext, resolve_call
from .config import LintConfig
from .engine import FileRule, Finding, ParsedFile, ProjectRule
from .symbols import ModuleSymbols, build_module_symbols, iter_owned_nodes

#: External callables that block the calling thread.
BLOCKING_CALLS: Set[str] = {
    "time.sleep",
    "os.system",
    "os.wait",
    "os.waitpid",
    "socket.create_connection",
    "socket.getaddrinfo",
    "urllib.request.urlopen",
    "subprocess.run",
    "subprocess.call",
    "subprocess.check_call",
    "subprocess.check_output",
    "subprocess.getoutput",
    "requests.get",
    "requests.post",
    "requests.put",
    "requests.patch",
    "requests.delete",
    "requests.head",
    "requests.request",
    "builtins.open",
}

#: Constructors producing blocking queue objects.
_QUEUE_TYPES = {
    "queue.Queue",
    "queue.LifoQueue",
    "queue.PriorityQueue",
    "queue.SimpleQueue",
    "multiprocessing.Queue",
    "multiprocessing.JoinableQueue",
}

#: Blocking methods on queue objects.
_QUEUE_METHODS = {"get", "put", "join"}

#: Constructors producing OS-level synchronisation primitives.
_LOCK_TYPES = {
    "threading.Lock",
    "threading.RLock",
    "threading.Condition",
    "threading.Semaphore",
    "threading.BoundedSemaphore",
    "threading.Event",
    "threading.Barrier",
}

#: Blocking methods on threading primitives.
_LOCK_METHODS = {"acquire", "wait", "wait_for"}


def _finding(rule_id: str, relpath: str, node: ast.AST, message: str) -> Finding:
    return Finding(
        rule=rule_id,
        path=relpath,
        line=getattr(node, "lineno", 1),
        col=getattr(node, "col_offset", 0) + 1,
        message=message,
    )


def _dotted_callee(call: ast.Call, module: ModuleSymbols) -> Optional[str]:
    """Best-effort dotted name of a call's target (file-local aliases)."""
    func = call.func
    if isinstance(func, ast.Name):
        if func.id in module.imported_names:
            source, original = module.imported_names[func.id]
            return f"{source}.{original}"
        if func.id == "open":
            return "builtins.open"
        return None
    if isinstance(func, ast.Attribute):
        chain: List[str] = []
        base: ast.AST = func
        while isinstance(base, ast.Attribute):
            chain.append(base.attr)
            base = base.value
        if not isinstance(base, ast.Name):
            return None
        chain.reverse()
        if base.id in module.module_aliases:
            return ".".join([module.module_aliases[base.id]] + chain)
        if base.id in module.imported_names:
            source, original = module.imported_names[base.id]
            return ".".join([f"{source}.{original}"] + chain)
        return None
    return None


@dataclass
class _FileFacts:
    """Per-file facts shared by the ASYNC rules (computed once)."""

    module: ModuleSymbols
    #: local variable names bound to blocking queue objects.
    queue_names: Set[str] = field(default_factory=set)
    #: ``self.<attr>`` names bound to blocking queue objects.
    queue_attrs: Set[str] = field(default_factory=set)
    #: local variable names bound to threading primitives.
    lock_names: Set[str] = field(default_factory=set)
    #: ``self.<attr>`` names bound to threading primitives.
    lock_attrs: Set[str] = field(default_factory=set)

    @classmethod
    def build(cls, file: ParsedFile) -> "_FileFacts":
        assert file.tree is not None
        module = build_module_symbols("<file>", file.relpath, file.tree)
        facts = cls(module=module)
        for node in ast.walk(file.tree):
            targets: List[ast.AST] = []
            value: Optional[ast.AST] = None
            if isinstance(node, ast.Assign):
                targets, value = node.targets, node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets, value = [node.target], node.value
            if value is None or not isinstance(value, ast.Call):
                continue
            dotted = _dotted_callee(value, module)
            if dotted is None:
                continue
            if dotted in _QUEUE_TYPES:
                names, attrs = facts.queue_names, facts.queue_attrs
            elif dotted in _LOCK_TYPES:
                names, attrs = facts.lock_names, facts.lock_attrs
            else:
                continue
            for target in targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
                elif isinstance(target, ast.Attribute):
                    attrs.add(target.attr)
        return facts

    def is_queue(self, expr: ast.AST) -> bool:
        return self._matches(expr, self.queue_names, self.queue_attrs)

    def is_lock(self, expr: ast.AST) -> bool:
        return self._matches(expr, self.lock_names, self.lock_attrs)

    @staticmethod
    def _matches(expr: ast.AST, names: Set[str], attrs: Set[str]) -> bool:
        if isinstance(expr, ast.Name):
            return expr.id in names
        if isinstance(expr, ast.Attribute):
            return expr.attr in attrs
        return False


def _async_defs(tree: ast.Module) -> List[ast.AsyncFunctionDef]:
    return [
        node for node in ast.walk(tree) if isinstance(node, ast.AsyncFunctionDef)
    ]


def _iter_loop_body(func: ast.AsyncFunctionDef) -> List[ast.AST]:
    """Nodes executed *on the event loop* inside this coroutine.

    Nested ``def``/``lambda`` bodies are excluded: a callable passed to
    ``run_in_executor``/``to_thread`` runs on a worker thread, and a
    nested ``async def`` is scanned as its own coroutine.
    """
    out: List[ast.AST] = []
    stack: List[ast.AST] = list(func.body)
    while stack:
        node = stack.pop()
        out.append(node)
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        ):
            continue  # never descend into a nested callable's body
        stack.extend(ast.iter_child_nodes(node))
    return out


class BlockingCallRule(FileRule):
    """ASYNC001 — blocking calls executed directly on the event loop."""

    rule_id = "ASYNC001"
    default_scope = None  # async code can appear anywhere

    def check(self, file: ParsedFile, config: LintConfig) -> List[Finding]:
        assert file.tree is not None
        coroutines = _async_defs(file.tree)
        if not coroutines:
            return []
        facts = _FileFacts.build(file)
        findings: List[Finding] = []
        for func in coroutines:
            for node in _iter_loop_body(func):
                if not isinstance(node, ast.Call):
                    continue
                dotted = _dotted_callee(node, facts.module)
                if dotted in BLOCKING_CALLS:
                    findings.append(
                        _finding(
                            self.rule_id,
                            file.relpath,
                            node,
                            f"{dotted}() blocks the event loop inside "
                            f"'async def {func.name}'; await an async "
                            "equivalent (e.g. asyncio.sleep) or move it off "
                            "the loop with loop.run_in_executor(...) / "
                            "asyncio.to_thread(...)",
                        )
                    )
                    continue
                func_expr = node.func
                if not isinstance(func_expr, ast.Attribute):
                    continue
                owner = func_expr.value
                if (
                    func_expr.attr in _QUEUE_METHODS
                    and facts.is_queue(owner)
                ):
                    findings.append(
                        _finding(
                            self.rule_id,
                            file.relpath,
                            node,
                            f"queue.{func_expr.attr}() blocks the event loop "
                            f"inside 'async def {func.name}'; run it in an "
                            "executor (loop.run_in_executor / "
                            "asyncio.to_thread) or use an asyncio.Queue",
                        )
                    )
                elif (
                    func_expr.attr in _LOCK_METHODS
                    and facts.is_lock(owner)
                ):
                    findings.append(
                        _finding(
                            self.rule_id,
                            file.relpath,
                            node,
                            f"threading-primitive .{func_expr.attr}() blocks "
                            f"the event loop inside 'async def {func.name}'; "
                            "use an asyncio primitive or move the wait to an "
                            "executor thread",
                        )
                    )
        findings.sort(key=lambda f: (f.line, f.col))
        return findings


class LockAcrossAwaitRule(FileRule):
    """ASYNC003 — threading primitives held across an ``await``."""

    rule_id = "ASYNC003"
    default_scope = None

    def check(self, file: ParsedFile, config: LintConfig) -> List[Finding]:
        assert file.tree is not None
        coroutines = _async_defs(file.tree)
        if not coroutines:
            return []
        facts = _FileFacts.build(file)
        if not facts.lock_names and not facts.lock_attrs:
            return []
        findings: List[Finding] = []
        for func in coroutines:
            for node in _iter_loop_body(func):
                if not isinstance(node, (ast.With, ast.AsyncWith)):
                    continue
                held = [
                    item.context_expr
                    for item in node.items
                    if facts.is_lock(item.context_expr)
                ]
                if not held or not _contains_await(node.body):
                    continue
                label = _expr_label(held[0])
                findings.append(
                    _finding(
                        self.rule_id,
                        file.relpath,
                        node,
                        f"threading primitive {label} is held across an "
                        f"'await' in 'async def {func.name}': the coroutine "
                        "parks while holding an OS lock, deadlocking any "
                        "thread that needs it; release before awaiting or "
                        "use an asyncio primitive",
                    )
                )
        findings.sort(key=lambda f: (f.line, f.col))
        return findings


def _contains_await(body: List[ast.stmt]) -> bool:
    stack: List[ast.AST] = list(body)
    while stack:
        node = stack.pop()
        if isinstance(node, ast.Await):
            return True
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        ):
            continue  # a nested callable's await is its own concern
        stack.extend(ast.iter_child_nodes(node))
    return False


def _expr_label(expr: ast.AST) -> str:
    if isinstance(expr, ast.Name):
        return repr(expr.id)
    if isinstance(expr, ast.Attribute):
        return repr(expr.attr)
    return "<lock>"


class LostCoroutineRule(ProjectRule):
    """ASYNC002 — coroutine calls whose result silently disappears."""

    rule_id = "ASYNC002"

    def check_project(
        self,
        files: Dict[str, ParsedFile],
        config: LintConfig,
        context: Optional[ProjectContext] = None,
    ) -> List[Finding]:
        if context is None or not isinstance(context, ProjectContext):
            context = ProjectContext(files, config)
        symbols = context.symbols
        findings: List[Finding] = []
        for relpath in sorted(symbols.by_path):
            if not config.rule_scope(self.rule_id, relpath, None):
                continue
            module = symbols.by_path[relpath]
            for qualname in sorted(module.functions):
                symbol = module.functions[qualname]
                own_class = (
                    qualname.split(".")[0] if "." in qualname else None
                )
                for node in iter_owned_nodes(symbol):
                    if not isinstance(node, ast.Expr) or not isinstance(
                        node.value, ast.Call
                    ):
                        continue
                    call = node.value
                    callee = resolve_call(call, module, symbols, own_class)
                    if callee is None:
                        continue
                    if callee in (
                        "asyncio.create_task",
                        "asyncio.ensure_future",
                    ):
                        findings.append(
                            _finding(
                                self.rule_id,
                                relpath,
                                call,
                                f"{callee}() result is discarded: a task "
                                "without a live reference can be garbage-"
                                "collected mid-flight; store the task (and "
                                "await or gather it) so completion and "
                                "exceptions are observed",
                            )
                        )
                        continue
                    target = symbols.function(callee)
                    if target is not None and target.is_async:
                        findings.append(
                            _finding(
                                self.rule_id,
                                relpath,
                                call,
                                f"coroutine {target.sid!r} is called but its "
                                "result is neither awaited, gathered, nor "
                                "stored — the body never runs; add 'await' "
                                "(or schedule it with asyncio.create_task "
                                "and keep the handle)",
                            )
                        )
        findings.sort(key=lambda f: (f.path, f.line, f.col))
        return findings
