"""The project call graph: who calls whom, with call-site evidence.

Built statically on top of :mod:`repro.lint.symbols` from the ASTs the
engine already parsed.  Nodes are symbol ids (``module:qualname`` for
project functions, dotted names for external callables); edges are
:class:`CallSite` records carrying the exact file/line/column, so any
analysis over the graph can render actionable evidence chains.

Edge sources
------------

* plain calls — ``f(...)`` resolved through the symbol table (local
  defs, ``from x import y`` re-export chains, module aliases);
* attribute calls — ``module.attr(...)``, ``self.method(...)``,
  ``Cls.classmethod(...)``;
* **task references** — string literals shaped like
  ``"module:qualname"`` (the parallel/serve dispatch seam).  The pool
  and the campaign service call through these strings at runtime, so
  they are graph edges (``kind="taskref"``), keeping the interprocedural
  rules honest across the process boundary.

What is *not* an edge: callables passed as arguments without being
called (``run_in_executor(None, fn)``), dynamic ``getattr`` dispatch,
and method calls on values of unknown type.  The graph is an
under-approximation — standard for lint-grade analysis and documented
in ``docs/LINT.md``.

Construction is deterministic: modules, symbols, and edges are visited
and stored in sorted order.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from .config import LintConfig
from .symbols import (
    FunctionSymbol,
    ModuleSymbols,
    SymbolTable,
    iter_owned_nodes,
)

if TYPE_CHECKING:  # pragma: no cover - type-only import (cycle guard)
    from .engine import ParsedFile

from .rules_parallel import _REF_RE  # the one task-ref grammar

#: Edge kinds.
CALL = "call"
TASKREF = "taskref"


@dataclass(frozen=True)
class CallSite:
    """One resolved call edge, anchored at its source location."""

    caller: str  #: symbol id of the calling function
    callee: str  #: symbol id (project ``mod:qual`` or external dotted)
    relpath: str
    line: int
    col: int
    kind: str = CALL
    #: Did the call pass any arguments?  (``random.Random()`` with no
    #: seed is an entropy source; ``random.Random(seed)`` is not.)
    has_args: bool = False


class CallGraph:
    """The assembled graph plus per-function auxiliary facts."""

    def __init__(self, symbols: SymbolTable) -> None:
        self.symbols = symbols
        #: caller sid -> sorted, deduplicated outgoing call sites.
        self.out: Dict[str, List[CallSite]] = {}
        #: callee id -> sorted incoming call sites (reverse edges).
        self.into: Dict[str, List[CallSite]] = {}
        #: sid -> (line, col) of bare-set iterations in that function
        #: (the DET002 pattern, exported here as a taint source).
        self.set_iteration: Dict[str, List[Tuple[int, int]]] = {}

    def functions(self) -> List[FunctionSymbol]:
        """Every project function symbol, sorted by id."""
        out = []
        for name in sorted(self.symbols.modules):
            module = self.symbols.modules[name]
            for qualname in sorted(module.functions):
                out.append(module.functions[qualname])
        return out

    def callers_of(self, node_id: str) -> List[CallSite]:
        return self.into.get(node_id, [])

    def calls_from(self, node_id: str) -> List[CallSite]:
        return self.out.get(node_id, [])


def build_call_graph(
    files: "Dict[str, ParsedFile]", config: LintConfig
) -> CallGraph:
    """Build the project call graph over the collected ``files``."""
    symbols = SymbolTable.build(files, config)
    graph = CallGraph(symbols)
    prefixes = [
        str(p)
        for p in config.rule("PAR001").options.get("ref_prefixes", ["repro"])
    ]

    edges: Dict[str, List[CallSite]] = {}
    for relpath in sorted(symbols.by_path):
        module = symbols.by_path[relpath]
        for qualname in sorted(module.functions):
            symbol = module.functions[qualname]
            sites = _extract_edges(symbol, module, symbols, prefixes)
            if sites:
                edges[symbol.sid] = sites
            set_sites = _set_iteration_sites(symbol)
            if set_sites:
                graph.set_iteration[symbol.sid] = set_sites

    for caller in sorted(edges):
        sites = sorted(
            set(edges[caller]),
            key=lambda s: (s.relpath, s.line, s.col, s.callee, s.kind),
        )
        graph.out[caller] = sites
        for site in sites:
            graph.into.setdefault(site.callee, []).append(site)
    for callee in graph.into:
        graph.into[callee].sort(
            key=lambda s: (s.caller, s.relpath, s.line, s.col, s.kind)
        )
    return graph


def _extract_edges(
    symbol: FunctionSymbol,
    module: "ModuleSymbols",
    symbols: SymbolTable,
    ref_prefixes: List[str],
) -> List[CallSite]:
    sites: List[CallSite] = []
    own_class = (
        symbol.qualname.split(".")[0] if "." in symbol.qualname else None
    )
    for node in iter_owned_nodes(symbol):
        if isinstance(node, ast.Call):
            callee = resolve_call(node, module, symbols, own_class)
            if callee is not None:
                sites.append(
                    CallSite(
                        caller=symbol.sid,
                        callee=callee,
                        relpath=symbol.relpath,
                        line=getattr(node, "lineno", symbol.lineno),
                        col=getattr(node, "col_offset", 0) + 1,
                        has_args=bool(node.args or node.keywords),
                    )
                )
        elif isinstance(node, ast.Constant) and isinstance(node.value, str):
            match = _REF_RE.match(node.value)
            if match is None:
                continue
            target_module = match.group("module")
            if not any(
                target_module == prefix or target_module.startswith(prefix + ".")
                for prefix in ref_prefixes
            ):
                continue
            target = symbols.function(node.value)
            if target is None:
                continue  # dangling refs are PAR001's finding, not an edge
            sites.append(
                CallSite(
                    caller=symbol.sid,
                    callee=target.sid,
                    relpath=symbol.relpath,
                    line=getattr(node, "lineno", symbol.lineno),
                    col=getattr(node, "col_offset", 0) + 1,
                    kind=TASKREF,
                    has_args=True,  # task refs are always called with args
                )
            )
    return sites


def resolve_call(
    node: ast.Call,
    module: "ModuleSymbols",
    symbols: SymbolTable,
    own_class: Optional[str] = None,
) -> Optional[str]:
    """Resolve one call expression to a callee node id (or ``None``)."""
    func = node.func
    if isinstance(func, ast.Name):
        resolved = symbols.resolve_name(module, func.id)
        if resolved is None or resolved.startswith("<module>"):
            return None
        return resolved
    if isinstance(func, ast.Attribute):
        chain: List[str] = []
        base: ast.AST = func
        while isinstance(base, ast.Attribute):
            chain.append(base.attr)
            base = base.value
        if not isinstance(base, ast.Name):
            return None
        chain.reverse()
        if base.id in ("self", "cls") and own_class is not None:
            if len(chain) == 1 and chain[0] in module.classes.get(
                own_class, set()
            ):
                return f"{module.name}:{own_class}.{chain[0]}"
            return None
        resolved = symbols.resolve_dotted(module, base.id, chain)
        if resolved is None or resolved.startswith("<module>"):
            return None
        return resolved
    return None


def _set_iteration_sites(symbol: FunctionSymbol) -> List[Tuple[int, int]]:
    """Bare-set iterations in the symbol's body (DET002's pattern)."""
    from .rules_determinism import _set_expr_in_iter

    sites: List[Tuple[int, int]] = []
    for node in iter_owned_nodes(symbol):
        iters: List[ast.AST] = []
        if isinstance(node, (ast.For, ast.AsyncFor)):
            iters.append(node.iter)
        elif isinstance(
            node, (ast.GeneratorExp, ast.ListComp, ast.SetComp, ast.DictComp)
        ):
            iters.extend(gen.iter for gen in node.generators)
        for candidate in iters:
            if _set_expr_in_iter(candidate) is not None:
                sites.append(
                    (
                        getattr(candidate, "lineno", symbol.lineno),
                        getattr(candidate, "col_offset", 0) + 1,
                    )
                )
    return sorted(set(sites))


class ProjectContext:
    """Shared, lazily-built interprocedural analyses for one lint run.

    The engine constructs one per invocation and hands it to every
    :class:`~repro.lint.engine.ProjectRule`, so the symbol table and
    call graph are built at most once no matter how many rules consume
    them.
    """

    def __init__(
        self, files: "Dict[str, ParsedFile]", config: LintConfig
    ) -> None:
        self.files = files
        self.config = config
        self._symbols: Optional[SymbolTable] = None
        self._graph: Optional[CallGraph] = None

    @property
    def symbols(self) -> SymbolTable:
        if self._symbols is None:
            if self._graph is not None:
                self._symbols = self._graph.symbols
            else:
                self._symbols = SymbolTable.build(self.files, self.config)
        return self._symbols

    @property
    def graph(self) -> CallGraph:
        if self._graph is None:
            self._graph = build_call_graph(self.files, self.config)
            self._symbols = self._graph.symbols
        return self._graph
